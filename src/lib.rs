//! End-to-end low-power logic synthesis flow.
//!
//! This umbrella crate re-exports the workspace crates and provides the
//! high-level [`flow`] API tying them together: BLIF in → technology
//! independent optimization → power-efficient NAND decomposition →
//! power-efficient technology mapping → power/area/delay report.

pub use activity;
pub use bdd;
pub use benchgen;
pub use genlib;
pub use lint;
pub use logicopt;
pub use lowpower_core as core;
pub use netlist;
pub use obs;
pub use qor;
pub use verify;

pub mod flow;
