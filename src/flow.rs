//! The end-to-end synthesis flow of the paper's experiments.
//!
//! `BLIF → rugged-like optimization → power-efficient NAND decomposition →
//! power-efficient technology mapping → area/delay/power report`.
//!
//! The six method combinations of Tables 2 and 3 are the cross product of
//! three [`DecompStyle`]s and two
//! `MapObjective`s; [`run_method`] runs
//! one of them end to end on an already-optimized network so that all six
//! share the identical starting point, exactly as in the paper.

use activity::{analyze, PowerEnv, TransitionModel};
use genlib::Library;
use lint::{lint_activity, lint_decomposed, lint_library, lint_mapped, lint_network};
use lint::{LintConfig, LintLevel, LintReport};
use lowpower_core::decomp::{DecompOptions, DecompStyle};
use lowpower_core::map::{map_network, MapObjective, MapOptions, SubjectAig};
use lowpower_core::power::{evaluate, MappedReport};
use netlist::Network;
use std::fmt;
use verify::{check_equiv, OutputPolicy, Verdict, VerifyLevel, VerifyOptions};

/// One of the paper's six synthesis method combinations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Area-delay mapping, conventional (balanced) decomposition.
    I,
    /// Area-delay mapping, MINPOWER decomposition.
    II,
    /// Area-delay mapping, bounded-height MINPOWER decomposition.
    III,
    /// Power-delay mapping, conventional decomposition.
    IV,
    /// Power-delay mapping, MINPOWER decomposition.
    V,
    /// Power-delay mapping, bounded-height MINPOWER decomposition.
    VI,
}

impl Method {
    /// All six methods in table order.
    pub const ALL: [Method; 6] = [
        Method::I,
        Method::II,
        Method::III,
        Method::IV,
        Method::V,
        Method::VI,
    ];

    /// The decomposition style of this method.
    pub fn decomp_style(self) -> DecompStyle {
        match self {
            Method::I | Method::IV => DecompStyle::Conventional,
            Method::II | Method::V => DecompStyle::MinPower,
            Method::III | Method::VI => DecompStyle::BoundedMinPower,
        }
    }

    /// The mapping objective of this method.
    pub fn map_objective(self) -> MapObjective {
        match self {
            Method::I | Method::II | Method::III => MapObjective::Area,
            Method::IV | Method::V | Method::VI => MapObjective::Power,
        }
    }
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Method::I => "I",
            Method::II => "II",
            Method::III => "III",
            Method::IV => "IV",
            Method::V => "V",
            Method::VI => "VI",
        };
        write!(f, "{s}")
    }
}

/// Flow configuration shared by all methods.
#[derive(Debug, Clone)]
pub struct FlowConfig {
    /// `P(pi = 1)` per input; `None` = 0.5 everywhere (the paper's
    /// independent-input default).
    pub pi_probs: Option<Vec<f64>>,
    /// Transition model.
    pub model: TransitionModel,
    /// Electrical environment (5 V / 20 MHz by default).
    pub env: PowerEnv,
    /// Capacitive load on each primary output, in load units.
    pub po_load: f64,
    /// ε for curve pruning.
    pub epsilon: f64,
    /// Required time at every primary output (estimated-arrival space);
    /// `None` targets each run's fastest achievable arrival.
    pub required_time: Option<f64>,
    /// Use exact pairwise correlations (eqs. 7–9) during decomposition.
    pub use_correlations: bool,
    /// Vectors for the glitch-aware power simulation (the Ghosh-estimator
    /// stand-in used for the reported power numbers).
    pub sim_vectors: usize,
    /// Seed for the glitch simulation.
    pub sim_seed: u64,
    /// Worker threads for the glitch simulation (1 = serial). The result
    /// is identical at every thread count; outer drivers that already
    /// parallelize across circuits or methods should leave this at 1.
    pub sim_threads: usize,
    /// Post-pass equivalence checking: every transforming stage
    /// (optimize, decompose, map) is checked against its input at this
    /// level. [`VerifyLevel::Off`] skips the checks entirely.
    pub verify: VerifyLevel,
    /// Structural lint checkpoints at every stage (library, optimize,
    /// decompose, activity, map), mirroring `verify`. At
    /// [`LintLevel::Check`] findings accumulate in
    /// [`MethodResult::lint_findings`]; at [`LintLevel::Deny`] any
    /// `Error`-severity finding aborts the flow with [`FlowError::Lint`].
    pub lint: LintLevel,
    /// Observability mode. Any value other than [`obs::ObsMode::Off`]
    /// records spans and metrics for the run: [`run_method`] /
    /// [`run_flow`] start a recording session (unless the caller already
    /// has one live on this thread, in which case events flow into it)
    /// and attach the finished [`obs::Report`] to
    /// [`MethodResult::obs`]. The mode value itself selects the sink used
    /// by CLI drivers; the flow records identically for all three.
    pub obs: obs::ObsMode,
    /// Record a QoR ledger for the run: [`run_flow`] / [`run_method`]
    /// start a [`qor::Session`] (unless the caller already has one live on
    /// this thread) and every stage — each rugged-script pass, the
    /// decomposition, and the mapping — appends a deterministic snapshot.
    /// The finished [`qor::LedgerReport`] lands in [`MethodResult::qor`]
    /// when the flow owned the session.
    pub qor: bool,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            pi_probs: None,
            model: TransitionModel::StaticCmos,
            env: PowerEnv::new(),
            po_load: 1.0,
            epsilon: 0.05,
            required_time: None,
            use_correlations: false,
            sim_vectors: 600,
            sim_seed: 0xC0FFEE,
            sim_threads: 1,
            verify: VerifyLevel::Off,
            lint: LintLevel::Off,
            obs: obs::ObsMode::Off,
            qor: false,
        }
    }
}

/// The QoR measurement context matching this flow configuration, so
/// ledger numbers agree exactly with the flow's own evaluation.
fn qor_ctx(cfg: &FlowConfig) -> qor::Ctx {
    qor::Ctx {
        pi_probs: cfg.pi_probs.clone(),
        model: cfg.model,
        env: cfg.env,
        po_load: cfg.po_load,
    }
}

/// Error from the end-to-end flow.
#[derive(Debug)]
pub enum FlowError {
    /// Mapping failed.
    Map(lowpower_core::map::MapError),
    /// A verification checkpoint found a functional difference.
    Verify {
        /// Stage that broke the function (`"optimize"`, `"decompose"`,
        /// `"map"`).
        stage: &'static str,
        /// The minimized witness.
        counterexample: Box<verify::Counterexample>,
    },
    /// A verification checkpoint could not compare the networks at all
    /// (e.g. mismatched outputs) — itself a sign of a broken pass.
    VerifySetup {
        /// Stage at which comparison failed.
        stage: &'static str,
        /// The structural problem.
        error: verify::VerifyError,
    },
    /// A lint checkpoint found `Error`-severity findings while
    /// [`FlowConfig::lint`] is [`LintLevel::Deny`].
    Lint {
        /// Stage whose result failed the lint (`"library"`, `"optimize"`,
        /// `"decompose"`, `"activity"`, `"map"`).
        stage: &'static str,
        /// The full report, including any non-error findings.
        report: Box<LintReport>,
    },
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Map(e) => write!(f, "mapping failed: {e}"),
            FlowError::Verify {
                stage,
                counterexample,
            } => {
                write!(f, "{stage} is not function-preserving: {counterexample}")
            }
            FlowError::VerifySetup { stage, error } => {
                write!(f, "{stage} verification impossible: {error}")
            }
            FlowError::Lint { stage, report } => {
                write!(
                    f,
                    "{stage} failed lint with {} error(s):\n{}",
                    report.error_count(),
                    report.render_text()
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

impl From<lowpower_core::map::MapError> for FlowError {
    fn from(e: lowpower_core::map::MapError) -> Self {
        FlowError::Map(e)
    }
}

/// Run one verification checkpoint: compare `before` and `after` at
/// `cfg.verify` level, turning any disagreement into a [`FlowError`].
fn checkpoint(
    stage: &'static str,
    before: &Network,
    after: &Network,
    outputs: OutputPolicy,
    cfg: &FlowConfig,
) -> Result<(), FlowError> {
    let _span = obs::span!("verify", "{stage}");
    let opts = VerifyOptions::at_level(cfg.verify).with_outputs(outputs);
    match check_equiv(before, after, &opts) {
        Ok(Verdict::NotEquivalent(counterexample)) => Err(FlowError::Verify {
            stage,
            counterexample,
        }),
        Ok(_) => Ok(()),
        Err(error) => Err(FlowError::VerifySetup { stage, error }),
    }
}

/// Lint findings of one flow stage.
#[derive(Debug, Clone)]
pub struct StageLint {
    /// Stage the report belongs to (`"library"`, `"optimize"`,
    /// `"decompose"`, `"activity"`, `"map"`).
    pub stage: &'static str,
    /// The findings.
    pub report: LintReport,
}

/// Run one lint checkpoint: at [`LintLevel::Deny`], `Error`-severity
/// findings abort the flow; otherwise non-empty reports accumulate in
/// `findings`. The caller guards on `cfg.lint != Off` so reports are never
/// computed when linting is disabled.
fn lint_checkpoint(
    stage: &'static str,
    report: LintReport,
    cfg: &FlowConfig,
    findings: &mut Vec<StageLint>,
) -> Result<(), FlowError> {
    if cfg.lint == LintLevel::Deny && report.has_errors() {
        return Err(FlowError::Lint {
            stage,
            report: Box::new(report),
        });
    }
    if !report.is_clean() {
        findings.push(StageLint { stage, report });
    }
    Ok(())
}

/// Optimize a network with the rugged-like script (shared starting point of
/// all methods, as in the paper's Section 4). In debug builds the script
/// runs under the lint certifier and panics if it corrupts a structural
/// invariant.
pub fn optimize(net: &Network) -> Network {
    let _span = obs::span!("optimize");
    let mut n = net.clone();
    lint::certify::rugged_like(&mut n);
    n
}

/// Split constant-driven primary outputs from a decomposed network: the
/// mapper has no tie cells, and a constant net dissipates no dynamic power
/// anyway. Returns the mappable network and the `(name, value)` constant
/// outputs.
///
/// # Panics
/// Panics if a constant node still has logic fanouts (run the optimizer's
/// sweep first — it folds internal constants).
pub fn strip_constant_outputs(net: &Network) -> (Network, Vec<(String, bool)>) {
    let is_const = |id: netlist::NodeId| {
        net.node(id)
            .sop()
            .map(|s| s.is_zero() || s.has_tautology_cube())
            .unwrap_or(false)
    };
    let const_outputs: Vec<(String, bool)> = net
        .outputs()
        .iter()
        .filter(|(_, o)| is_const(*o))
        .map(|(n, o)| {
            (
                n.clone(),
                net.node(*o).sop().expect("logic").has_tautology_cube(),
            )
        })
        .collect();
    if const_outputs.is_empty() {
        return (net.clone(), Vec::new());
    }
    let mut out = Network::new(net.name().to_string());
    let mut map = std::collections::HashMap::new();
    for &pi in net.inputs() {
        map.insert(
            pi,
            out.add_input(net.node(pi).name().to_string())
                .expect("fresh"),
        );
    }
    for id in net.topo_order().expect("acyclic") {
        let node = net.node(id);
        let Some(sop) = node.sop() else { continue };
        if is_const(id) {
            assert!(
                node.fanouts().is_empty(),
                "constant node `{}` feeds logic; sweep the network first",
                node.name()
            );
            continue;
        }
        let fanins = node.fanins().iter().map(|f| map[f]).collect();
        let nid = out
            .add_logic(node.name().to_string(), fanins, sop.clone())
            .expect("names stay unique");
        map.insert(id, nid);
    }
    for (name, o) in net.outputs() {
        if !is_const(*o) {
            out.add_output(name.clone(), map[o]);
        }
    }
    (out, const_outputs)
}

/// Result of one method run.
#[derive(Debug)]
pub struct MethodResult {
    /// Mapped-netlist evaluation (area / delay / zero-delay power).
    pub report: MappedReport,
    /// Glitch-aware average power in µW (event-driven simulation with the
    /// library delay model — the measurement the paper's tables report).
    pub glitch_power_uw: f64,
    /// Depth (unit-delay levels) of the decomposed network.
    pub decomp_depth: i64,
    /// Total switching activity of the decomposed network's logic nodes
    /// (the MINPOWER objective value).
    pub decomp_switching: f64,
    /// The mapped netlist.
    pub mapped: lowpower_core::map::MappedNetwork,
    /// Lint findings per stage, when [`FlowConfig::lint`] is not
    /// [`LintLevel::Off`]. Stages with no findings are omitted; with
    /// [`LintLevel::Deny`] this can only hold `Warn`/`Info` findings
    /// (errors abort the flow instead).
    pub lint_findings: Vec<StageLint>,
    /// Observability report of the run, when [`FlowConfig::obs`] is not
    /// [`obs::ObsMode::Off`] **and** the flow owned the recording session.
    /// `None` when a caller-owned session was already live (the caller
    /// finishes it and holds the report) or when observability is off.
    pub obs: Option<obs::Report>,
    /// QoR ledger of the run, when [`FlowConfig::qor`] is set **and** the
    /// flow owned the ledger session (same ownership rule as `obs`).
    pub qor: Option<qor::LedgerReport>,
    /// Provenance of the decomposition: resolves every mapped gate's
    /// source node back to the optimized network
    /// ([`qor::Provenance::resolve`]). Always populated — provenance
    /// recording is free.
    pub provenance: qor::Provenance,
}

/// Run one method on an **already optimized** network.
///
/// # Errors
/// Returns [`FlowError`] when the network cannot be mapped (e.g. constant
/// outputs survive optimization).
pub fn run_method(
    optimized: &Network,
    lib: &Library,
    method: Method,
    cfg: &FlowConfig,
) -> Result<MethodResult, FlowError> {
    if cfg.obs != obs::ObsMode::Off && !obs::active() {
        let session = obs::Session::start();
        let result = run_method_qor(optimized, lib, method, cfg);
        let report = session.finish();
        return result.map(|mut r| {
            r.obs = Some(report);
            r
        });
    }
    run_method_qor(optimized, lib, method, cfg)
}

/// QoR-session ownership layer of [`run_method`]: starts a ledger session
/// (initial snapshot = the optimized input) unless the caller already has
/// one live on this thread.
fn run_method_qor(
    optimized: &Network,
    lib: &Library,
    method: Method,
    cfg: &FlowConfig,
) -> Result<MethodResult, FlowError> {
    if cfg.qor && !qor::active() {
        let session = qor::Session::start(optimized.name(), &method.to_string(), qor_ctx(cfg));
        qor::snapshot_network("optimized", optimized);
        let result = run_method_inner(optimized, lib, method, cfg);
        let report = session.finish();
        return result.map(|mut r| {
            r.qor = Some(report);
            r
        });
    }
    run_method_inner(optimized, lib, method, cfg)
}

fn run_method_inner(
    optimized: &Network,
    lib: &Library,
    method: Method,
    cfg: &FlowConfig,
) -> Result<MethodResult, FlowError> {
    let _method_span = obs::span!("method", "{method}");
    obs::counter!("flow.methods");
    let pi_probs = cfg
        .pi_probs
        .clone()
        .unwrap_or_else(|| vec![0.5; optimized.inputs().len()]);
    let mut lint_findings = Vec::new();
    let lint_cfg = LintConfig::new();
    if cfg.lint != LintLevel::Off {
        let report = {
            let _s = obs::span!("lint", "library");
            lint_library(lib, &lint_cfg)
        };
        lint_checkpoint("library", report, cfg, &mut lint_findings)?;
    }
    let dopts = DecompOptions {
        style: method.decomp_style(),
        model: cfg.model,
        pi_probs: Some(pi_probs.clone()),
        required_time: None,
        use_correlations: cfg.use_correlations,
    };
    let decomposed = lint::certify::decompose_network(optimized, &dopts);
    checkpoint(
        "decompose",
        optimized,
        &decomposed.network,
        OutputPolicy::Exact,
        cfg,
    )?;
    if cfg.lint != LintLevel::Off {
        let report = {
            let _s = obs::span!("lint", "decompose");
            lint_decomposed(&decomposed, &lint_cfg)
        };
        lint_checkpoint("decompose", report, cfg, &mut lint_findings)?;
    }
    let provenance = qor::Provenance::from_decomposed(&decomposed);
    let (mappable, _const_outputs) = strip_constant_outputs(&decomposed.network);
    qor::snapshot_network("strip_const", &mappable);
    let act = {
        let _s = obs::span!("activity");
        analyze(&mappable, &pi_probs, cfg.model)
    };
    if cfg.lint != LintLevel::Off {
        let report = {
            let _s = obs::span!("lint", "activity");
            lint_activity(&mappable, &act, &lint_cfg)
        };
        lint_checkpoint("activity", report, cfg, &mut lint_findings)?;
    }
    let decomp_switching = act.total_switching(mappable.logic_ids());
    let aig = SubjectAig::from_network(&mappable, &act)?;
    let mopts = MapOptions {
        objective: method.map_objective(),
        epsilon: cfg.epsilon,
        model: cfg.model,
        env: cfg.env,
        po_load: cfg.po_load,
        required_time: cfg.required_time,
        ..MapOptions::power()
    };
    let mapped = {
        let _s = obs::span!("map");
        map_network(&aig, lib, &mopts)?
    };
    qor::snapshot_mapped("map", &mapped, lib);
    if cfg.verify != VerifyLevel::Off {
        let view = mapped.to_network(lib, mappable.name());
        checkpoint("map", &mappable, &view, OutputPolicy::Exact, cfg)?;
    }
    if cfg.lint != LintLevel::Off {
        let report = {
            let _s = obs::span!("lint", "map");
            lint_mapped(&mapped, lib, cfg.po_load, &lint_cfg)
        };
        lint_checkpoint("map", report, cfg, &mut lint_findings)?;
    }
    let report = {
        let _s = obs::span!("evaluate");
        evaluate(&mapped, lib, &cfg.env, cfg.model, cfg.po_load)
    };
    let glitch = {
        let _s = obs::span!("glitch_sim");
        lowpower_core::power::simulate_glitch_power(
            &mapped,
            lib,
            &cfg.env,
            &pi_probs,
            cfg.sim_vectors,
            cfg.sim_seed,
            cfg.po_load,
            cfg.sim_threads,
        )
    };
    Ok(MethodResult {
        report,
        glitch_power_uw: glitch.power_uw,
        decomp_depth: decomposed.depth,
        decomp_switching,
        mapped,
        lint_findings,
        obs: None,
        qor: None,
        provenance,
    })
}

/// Convenience: optimize then run a single method from raw BLIF-level input.
///
/// # Errors
/// See [`run_method`].
pub fn run_flow(
    net: &Network,
    lib: &Library,
    method: Method,
    cfg: &FlowConfig,
) -> Result<MethodResult, FlowError> {
    if cfg.obs != obs::ObsMode::Off && !obs::active() {
        let session = obs::Session::start();
        let result = run_flow_qor(net, lib, method, cfg);
        let report = session.finish();
        return result.map(|mut r| {
            r.obs = Some(report);
            r
        });
    }
    run_flow_qor(net, lib, method, cfg)
}

/// QoR-session ownership layer of [`run_flow`]: the ledger opens on the
/// raw input network (`"initial"` snapshot), so the optimization passes'
/// deltas are attributed too.
fn run_flow_qor(
    net: &Network,
    lib: &Library,
    method: Method,
    cfg: &FlowConfig,
) -> Result<MethodResult, FlowError> {
    if cfg.qor && !qor::active() {
        let session = qor::Session::start(net.name(), &method.to_string(), qor_ctx(cfg));
        qor::snapshot_network("initial", net);
        let result = run_flow_inner(net, lib, method, cfg);
        let report = session.finish();
        return result.map(|mut r| {
            r.qor = Some(report);
            r
        });
    }
    run_flow_inner(net, lib, method, cfg)
}

fn run_flow_inner(
    net: &Network,
    lib: &Library,
    method: Method,
    cfg: &FlowConfig,
) -> Result<MethodResult, FlowError> {
    let optimized = optimize(net);
    checkpoint("optimize", net, &optimized, OutputPolicy::Exact, cfg)?;
    let mut pre_findings = Vec::new();
    if cfg.lint != LintLevel::Off {
        let report = {
            let _s = obs::span!("lint", "optimize");
            lint_network(&optimized, &LintConfig::new())
        };
        lint_checkpoint("optimize", report, cfg, &mut pre_findings)?;
    }
    let mut result = run_method(&optimized, lib, method, cfg)?;
    pre_findings.append(&mut result.lint_findings);
    result.lint_findings = pre_findings;
    Ok(result)
}
