//! `lowpower` — command-line front end for the synthesis flow.
//!
//! ```text
//! lowpower synth  --blif CIRCUIT.blif [--lib LIB.genlib] [--method VI]
//!                 [--required NS] [--out MAPPED.blif] [--correlations]
//!                 [--verify[=sim|full]] [--lint[=check|deny|off]]
//! lowpower report --blif CIRCUIT.blif [--lib LIB.genlib] [--verify[=sim|full]]
//!                 [--lint[=check|deny|off]]
//! lowpower decomp --blif CIRCUIT.blif [--style minpower|conventional|bounded]
//! lowpower lint   --blif CIRCUIT.blif [--lib LIB.genlib] [--method VI]
//!                 [--style …] [--lint=deny] [--json]
//! lowpower obs-check [--file TRACE] [--chrome] [--strip]
//! lowpower explain --blif CIRCUIT.blif --node NAME [--method VI] [--lib LIB.genlib]
//! lowpower qor-baseline --blif A.blif [--blif B.blif ...] [--out FILE]
//! lowpower qor-diff --baseline FILE --against FILE [--tol REL]
//! lowpower qor-check [--file LEDGER.jsonl]
//! ```
//!
//! `synth` runs optimize → decompose → map → evaluate for one method and
//! prints area / delay / power (zero-delay and glitch-aware); with `--out`
//! it writes the mapped netlist as structural BLIF. `report` runs all six
//! paper methods and prints a comparison table. `decomp` stops after
//! technology decomposition and prints network statistics.
//!
//! `--verify` adds an equivalence checkpoint after every transforming
//! stage (optimize, decompose, map): `--verify` / `--verify=full` proves
//! equivalence with BDDs (falling back to simulation over a node budget),
//! `--verify=sim` uses bit-parallel random simulation only. A failing
//! checkpoint aborts with a minimized counterexample.
//!
//! `--lint` adds structural rule checkpoints at every stage (library,
//! optimize, decompose, activity annotations, mapped netlist); findings
//! print to stderr. `--lint=deny` turns any `Error`-severity finding into
//! a flow failure. The `lint` subcommand runs the same pipeline purely for
//! its diagnostics — it lints the raw input, the library, and every stage
//! result, prints all findings (`--json` for machine-readable output), and
//! with `--lint=deny` exits non-zero when errors were found.
//!
//! `--obs[=summary|json|chrome]` records the run: hierarchical spans with
//! wall times plus deterministic counters/gauges/histograms. `summary`
//! prints a human digest to stderr, `json` streams one event per line
//! ending in a metrics snapshot, `chrome` writes a Chrome trace-event
//! file for `chrome://tracing` / Perfetto. `--obs-out FILE` redirects the
//! sink to a file (`-` forces stdout). When a machine sink (json, chrome)
//! owns stdout, the ordinary result lines move to stderr so the stream
//! stays clean. `obs-check` validates a recorded stream (`--chrome` for
//! traces) and with `--strip` prints the timing-stripped snapshot used
//! for determinism diffs.
//!
//! `--qor[=text|json|gate]` records a QoR ledger for `synth`: one
//! deterministic snapshot after every optimization pass, the
//! decomposition, and the mapping, each stage's power/area/delay delta
//! attributed by name. `text` prints the waterfall, `json` emits strict
//! JSONL (validated by `qor-check`), and `gate` additionally compares the
//! final QoR against the committed baseline (`--qor-baseline FILE`,
//! default `results/qor_baseline.json`) with relative tolerance `--tol`
//! (default 0) and fails on drift. `--qor-out FILE` redirects the ledger.
//! `qor-baseline` runs all six methods on each `--blif` and writes the
//! canonical baseline JSON; `qor-diff` compares two baseline files.
//! `explain` resolves one optimized-network node: its slack, its
//! decomposition choice (height, applied bound, emitted nodes), and the
//! mapped gates — with power shares — that trace back to it.

use genlib::{builtin::lib2_like, Library};
use lowpower::flow::{optimize, run_method, FlowConfig, Method, StageLint};
use lowpower::lint::LintLevel;
use lowpower::obs::ObsMode;
use lowpower::verify::VerifyLevel;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  lowpower synth  --blif FILE [--lib FILE] [--method I..VI] [--required NS] [--out FILE] [--correlations] [--verify[=sim|full]] [--lint[=check|deny|off]] [--obs[=summary|json|chrome]] [--obs-out FILE]");
            eprintln!("  lowpower report --blif FILE [--lib FILE] [--verify[=sim|full]] [--lint[=check|deny|off]] [--obs[=...]] [--obs-out FILE]");
            eprintln!("  lowpower decomp --blif FILE [--style conventional|minpower|bounded]");
            eprintln!("  lowpower lint   --blif FILE [--lib FILE] [--method I..VI] [--style ...] [--lint=deny] [--json] [--obs[=...]] [--obs-out FILE]");
            eprintln!("  lowpower obs-check [--file TRACE] [--chrome] [--strip]");
            eprintln!("  lowpower explain --blif FILE --node NAME [--method I..VI] [--lib FILE]");
            eprintln!("  lowpower qor-baseline --blif FILE [--blif FILE ...] [--out FILE]");
            eprintln!("  lowpower qor-diff --baseline FILE --against FILE [--tol REL]");
            eprintln!("  lowpower qor-check [--file LEDGER.jsonl]");
            eprintln!("  synth also accepts: --qor[=text|json|gate] [--qor-out FILE] [--qor-baseline FILE] [--tol REL]");
            ExitCode::from(2)
        }
    }
}

/// QoR ledger mode of the `synth` subcommand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QorMode {
    Off,
    /// Print the per-stage waterfall.
    Text,
    /// Emit the ledger as strict JSONL (`qor-check` validates it).
    Json,
    /// `Text`, plus fail the run when the final QoR drifts from the
    /// committed baseline.
    Gate,
}

struct Opts {
    blif: Option<String>,
    /// Every `--blif` in order (the subcommands that take one use the
    /// first; `qor-baseline` uses all).
    blifs: Vec<String>,
    lib: Option<String>,
    method: Method,
    required: Option<f64>,
    out: Option<String>,
    style: String,
    correlations: bool,
    verify: VerifyLevel,
    lint: LintLevel,
    json: bool,
    obs: ObsMode,
    obs_out: Option<String>,
    file: Option<String>,
    chrome: bool,
    strip: bool,
    qor: QorMode,
    qor_out: Option<String>,
    baseline: Option<String>,
    against: Option<String>,
    tol: Option<f64>,
    node: Option<String>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        blif: None,
        blifs: Vec::new(),
        lib: None,
        method: Method::VI,
        required: None,
        out: None,
        style: "minpower".to_string(),
        correlations: false,
        verify: VerifyLevel::Off,
        lint: LintLevel::Off,
        json: false,
        obs: ObsMode::Off,
        obs_out: None,
        file: None,
        chrome: false,
        strip: false,
        qor: QorMode::Off,
        qor_out: None,
        baseline: None,
        against: None,
        tol: None,
        node: None,
    };
    let mut i = 0;
    while i < args.len() {
        let need = |i: usize| -> Result<&String, String> {
            args.get(i + 1)
                .ok_or_else(|| format!("`{}` needs a value", args[i]))
        };
        match args[i].as_str() {
            "--blif" => {
                let v = need(i)?.clone();
                o.blif.get_or_insert_with(|| v.clone());
                o.blifs.push(v);
                i += 1;
            }
            "--lib" => {
                o.lib = Some(need(i)?.clone());
                i += 1;
            }
            "--method" => {
                o.method = match need(i)?.as_str() {
                    "I" | "1" => Method::I,
                    "II" | "2" => Method::II,
                    "III" | "3" => Method::III,
                    "IV" | "4" => Method::IV,
                    "V" | "5" => Method::V,
                    "VI" | "6" => Method::VI,
                    other => return Err(format!("unknown method `{other}`")),
                };
                i += 1;
            }
            "--required" => {
                o.required = Some(
                    need(i)?
                        .parse()
                        .map_err(|_| "bad --required value".to_string())?,
                );
                i += 1;
            }
            "--out" => {
                o.out = Some(need(i)?.clone());
                i += 1;
            }
            "--style" => {
                o.style = need(i)?.clone();
                i += 1;
            }
            "--correlations" => o.correlations = true,
            "--verify" => o.verify = VerifyLevel::Full,
            "--lint" => o.lint = LintLevel::Check,
            "--json" => o.json = true,
            "--obs" => o.obs = ObsMode::Summary,
            "--obs-out" => {
                o.obs_out = Some(need(i)?.clone());
                i += 1;
            }
            "--file" => {
                o.file = Some(need(i)?.clone());
                i += 1;
            }
            "--chrome" => o.chrome = true,
            "--strip" => o.strip = true,
            "--qor" => o.qor = QorMode::Text,
            "--qor-out" => {
                o.qor_out = Some(need(i)?.clone());
                i += 1;
            }
            "--qor-baseline" | "--baseline" => {
                o.baseline = Some(need(i)?.clone());
                i += 1;
            }
            "--against" => {
                o.against = Some(need(i)?.clone());
                i += 1;
            }
            "--tol" => {
                o.tol = Some(
                    need(i)?
                        .parse()
                        .map_err(|_| "bad --tol value".to_string())?,
                );
                i += 1;
            }
            "--node" => {
                o.node = Some(need(i)?.clone());
                i += 1;
            }
            other => {
                if let Some(level) = other.strip_prefix("--verify=") {
                    o.verify = level.parse()?;
                } else if let Some(level) = other.strip_prefix("--lint=") {
                    o.lint = level.parse()?;
                } else if let Some(mode) = other.strip_prefix("--obs=") {
                    o.obs = mode.parse()?;
                } else if let Some(mode) = other.strip_prefix("--qor=") {
                    o.qor = match mode {
                        "text" => QorMode::Text,
                        "json" => QorMode::Json,
                        "gate" => QorMode::Gate,
                        "off" => QorMode::Off,
                        other => return Err(format!("unknown qor mode `{other}`")),
                    };
                } else {
                    return Err(format!("unknown option `{other}`"));
                }
            }
        }
        i += 1;
    }
    Ok(o)
}

fn load_lib(o: &Opts) -> Result<Library, String> {
    match &o.lib {
        Some(lp) => {
            let lt = std::fs::read_to_string(lp).map_err(|e| format!("reading {lp}: {e}"))?;
            Library::parse(&lt).map_err(|e| format!("{lp}: {e}"))
        }
        None => Ok(lib2_like()),
    }
}

fn load_blif(path: &str) -> Result<netlist::Network, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    Ok(netlist::parse_blif(&text)
        .map_err(|e| format!("{path}: {e}"))?
        .network)
}

fn load_inputs(o: &Opts) -> Result<(netlist::Network, Library), String> {
    let path = o.blif.as_ref().ok_or("--blif is required")?;
    Ok((load_blif(path)?, load_lib(o)?))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some(cmd) = args.first() else {
        return Err("missing subcommand".to_string());
    };
    let o = parse_opts(&args[1..])?;
    if cmd == "obs-check" {
        return obs_check(&o);
    }
    if cmd == "qor-check" {
        return qor_check(&o);
    }
    if cmd == "qor-diff" {
        return qor_diff(&o);
    }
    // The CLI owns the obs session so one recording covers the whole
    // subcommand (including the multi-method `report` loop); `flow` sees
    // it active and does not start its own.
    let session = (o.obs != ObsMode::Off).then(lowpower::obs::Session::start);
    let outcome = match cmd.as_str() {
        "synth" => synth(&o),
        "report" => report(&o),
        "decomp" => decomp(&o),
        "lint" => lint_cmd(&o),
        "explain" => explain(&o),
        "qor-baseline" => qor_baseline(&o),
        other => Err(format!("unknown subcommand `{other}`")),
    };
    if let Some(session) = session {
        write_obs_report(&o, &session.finish())?;
    }
    outcome
}

/// `true` when the obs sink is a machine format writing to stdout, so
/// ordinary result output must move to stderr to keep the stream clean.
fn stdout_owned_by_obs(o: &Opts) -> bool {
    matches!(o.obs, ObsMode::Json | ObsMode::Chrome)
        && matches!(o.obs_out.as_deref(), None | Some("-"))
}

/// Render the finished session per `--obs` and write it per `--obs-out`:
/// summaries default to stderr, machine sinks (JSONL, Chrome) to stdout;
/// `--obs-out -` forces stdout and any other value names a file.
fn write_obs_report(o: &Opts, report: &lowpower::obs::Report) -> Result<(), String> {
    let text = match o.obs {
        ObsMode::Off => return Ok(()),
        ObsMode::Summary => report.render_summary(),
        ObsMode::Json => report.render_jsonl(),
        ObsMode::Chrome => report.render_chrome(),
    };
    match o.obs_out.as_deref() {
        Some("-") => print!("{text}"),
        Some(path) => std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?,
        None if o.obs == ObsMode::Summary => eprint!("{text}"),
        None => print!("{text}"),
    }
    Ok(())
}

/// `obs-check`: strictly validate an obs JSONL stream (default) or a
/// Chrome trace (`--chrome`) read from `--file` (default: stdin).
/// `--strip` prints the timing-stripped snapshot used for determinism
/// diffs instead of the ok line.
fn obs_check(o: &Opts) -> Result<(), String> {
    use lowpower::obs::check;
    let text = match o.file.as_deref() {
        None | Some("-") => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
    };
    if o.chrome {
        check::check_chrome(&text)?;
        eprintln!("chrome trace ok");
        return Ok(());
    }
    let snapshot = check::check_jsonl(&text)?;
    if o.strip {
        println!("{}", check::strip_timing(&snapshot));
    } else {
        eprintln!("obs stream ok");
    }
    Ok(())
}

/// Print accumulated per-stage lint findings to stderr (text) or stdout
/// (JSON; stderr when an obs machine sink owns stdout).
fn print_findings(findings: &[StageLint], json: bool, obs_owns_stdout: bool) {
    for f in findings {
        if json {
            let line = format!(
                "{{\"stage\":\"{}\",\"report\":{}}}",
                f.stage,
                f.report.render_json()
            );
            if obs_owns_stdout {
                eprintln!("{line}");
            } else {
                println!("{line}");
            }
        } else {
            eprintln!("[lint:{}] {}", f.stage, f.report.render_text().trim_end());
        }
    }
}

/// Check the stand-alone optimize step (the in-flow checkpoints cover
/// decompose and map) at the requested level.
fn check_optimize(
    net: &netlist::Network,
    optimized: &netlist::Network,
    level: VerifyLevel,
) -> Result<(), String> {
    use lowpower::verify::{check_equiv, Verdict, VerifyOptions};
    match check_equiv(net, optimized, &VerifyOptions::at_level(level))
        .map_err(|e| format!("optimize verification impossible: {e}"))?
    {
        Verdict::NotEquivalent(cex) => Err(format!("optimize is not function-preserving: {cex}")),
        _ => Ok(()),
    }
}

fn synth(o: &Opts) -> Result<(), String> {
    let say = |line: String| {
        if stdout_owned_by_obs(o) {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let (net, lib) = load_inputs(o)?;
    let cfg = FlowConfig {
        required_time: o.required,
        use_correlations: o.correlations,
        verify: o.verify,
        lint: o.lint,
        obs: o.obs,
        qor: o.qor != QorMode::Off,
        ..FlowConfig::default()
    };
    // The CLI owns the qor session (like the obs one) so the ledger opens
    // on the raw input network and covers the stand-alone optimize step
    // below; `run_method` sees it active and rides along.
    let qsession = (o.qor != QorMode::Off).then(|| {
        lowpower::qor::Session::start(net.name(), &o.method.to_string(), qor_cli_ctx(&cfg))
    });
    if qsession.is_some() {
        lowpower::qor::snapshot_network("initial", &net);
    }
    let optimized = optimize(&net);
    check_optimize(&net, &optimized, o.verify)?;
    let r = run_method(&optimized, &lib, o.method, &cfg).map_err(|e| e.to_string())?;
    if let Some(session) = qsession {
        let ledger = session.finish();
        write_qor_ledger(o, &ledger)?;
        if o.qor == QorMode::Gate {
            qor_gate(o, &ledger)?;
        }
    }
    print_findings(&r.lint_findings, false, stdout_owned_by_obs(o));
    say(format!(
        "circuit   : {} ({} PIs, {} POs)",
        net.name(),
        net.inputs().len(),
        net.outputs().len()
    ));
    say(format!(
        "method    : {} ({:?} decomposition, {:?} mapping)",
        o.method,
        o.method.decomp_style(),
        o.method.map_objective()
    ));
    say(format!("gates     : {}", r.report.gate_count));
    say(format!("area      : {:.1}", r.report.area));
    say(format!("delay     : {:.2} ns", r.report.delay));
    say(format!(
        "power     : {:.1} µW (zero-delay), {:.1} µW (glitch-aware)",
        r.report.power_uw, r.glitch_power_uw
    ));
    if let Some(out) = &o.out {
        let text = r.mapped.to_blif(&lib, &format!("{}_mapped", net.name()));
        std::fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
        say(format!("wrote mapped netlist to {out}"));
    }
    Ok(())
}

fn report(o: &Opts) -> Result<(), String> {
    let say = |line: String| {
        if stdout_owned_by_obs(o) {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let (net, lib) = load_inputs(o)?;
    let optimized = optimize(&net);
    check_optimize(&net, &optimized, o.verify)?;
    // Shared timing target as in the paper harness.
    let probe = run_method(&optimized, &lib, Method::I, &FlowConfig::default())
        .map_err(|e| e.to_string())?;
    let cfg = FlowConfig {
        required_time: Some(o.required.unwrap_or(probe.mapped.estimated_fastest * 1.10)),
        use_correlations: o.correlations,
        verify: o.verify,
        lint: o.lint,
        obs: o.obs,
        ..FlowConfig::default()
    };
    say(format!(
        "{:<7} {:>8} {:>9} {:>12} {:>12}",
        "method", "area", "delay", "power µW", "glitch µW"
    ));
    for m in Method::ALL {
        let r = run_method(&optimized, &lib, m, &cfg).map_err(|e| e.to_string())?;
        print_findings(&r.lint_findings, false, stdout_owned_by_obs(o));
        say(format!(
            "{:<7} {:>8.1} {:>9.2} {:>12.1} {:>12.1}",
            m.to_string(),
            r.report.area,
            r.report.delay,
            r.report.power_uw,
            r.glitch_power_uw
        ));
    }
    Ok(())
}

fn decomp(o: &Opts) -> Result<(), String> {
    use lowpower::core::decomp::{decompose_network, DecompOptions, DecompStyle};
    let (net, _lib) = load_inputs(o)?;
    let style = match o.style.as_str() {
        "conventional" => DecompStyle::Conventional,
        "minpower" => DecompStyle::MinPower,
        "bounded" => DecompStyle::BoundedMinPower,
        other => return Err(format!("unknown style `{other}`")),
    };
    let optimized = optimize(&net);
    let d = decompose_network(
        &optimized,
        &DecompOptions {
            use_correlations: o.correlations,
            ..DecompOptions::new(style)
        },
    );
    let probs = vec![0.5; optimized.inputs().len()];
    let act = lowpower::activity::analyze(
        &d.network,
        &probs,
        lowpower::activity::TransitionModel::StaticCmos,
    );
    println!("style            : {style:?}");
    println!("nodes            : {}", d.network.logic_count());
    println!("depth            : {} levels", d.depth);
    println!(
        "total switching  : {:.3} transitions/cycle",
        act.total_switching(d.network.logic_ids())
    );
    if !d.applied_bounds.is_empty() {
        println!("height bounds applied to {} nodes", d.applied_bounds.len());
    }
    println!("{}", netlist::write_blif(&d.network));
    Ok(())
}

/// The `lint` subcommand: run the whole pipeline purely for diagnostics.
///
/// Lints the raw input network, the library, the optimized network, the
/// decomposition (per `--style` via `--method`'s decomposition when
/// given), the activity annotations, and the mapped netlist. Findings are
/// printed as text (default) or JSON (`--json`). Exit is non-zero when
/// `--lint=deny` (the default for this subcommand is `check`) and an
/// `Error`-severity finding exists.
fn lint_cmd(o: &Opts) -> Result<(), String> {
    use lowpower::lint::{
        lint_activity, lint_decomposed, lint_library, lint_mapped, lint_network, LintConfig,
    };
    let (net, lib) = load_inputs(o)?;
    let lint_cfg = LintConfig::new();
    let mut findings: Vec<StageLint> = Vec::new();
    let mut stages = 0usize;
    let mut keep = |stage: &'static str, report: lowpower::lint::LintReport| {
        stages += 1;
        if !report.is_clean() {
            findings.push(StageLint { stage, report });
        }
    };

    keep("input", lint_network(&net, &lint_cfg));
    keep("library", lint_library(&lib, &lint_cfg));

    let optimized = optimize(&net);
    keep("optimize", lint_network(&optimized, &lint_cfg));

    let dopts = lowpower::core::decomp::DecompOptions {
        use_correlations: o.correlations,
        ..lowpower::core::decomp::DecompOptions::new(o.method.decomp_style())
    };
    let decomposed = lowpower::core::decomp::decompose_network(&optimized, &dopts);
    keep("decompose", lint_decomposed(&decomposed, &lint_cfg));

    let (mappable, _) = lowpower::flow::strip_constant_outputs(&decomposed.network);
    let probs = vec![0.5; mappable.inputs().len()];
    let act = lowpower::activity::analyze(
        &mappable,
        &probs,
        lowpower::activity::TransitionModel::StaticCmos,
    );
    keep("activity", lint_activity(&mappable, &act, &lint_cfg));

    let cfg = FlowConfig::default();
    let aig = lowpower::core::map::SubjectAig::from_network(&mappable, &act)
        .map_err(|e| format!("building subject graph: {e}"))?;
    let mopts = lowpower::core::map::MapOptions {
        objective: o.method.map_objective(),
        ..lowpower::core::map::MapOptions::power()
    };
    let mapped = lowpower::core::map::map_network(&aig, &lib, &mopts)
        .map_err(|e| format!("mapping: {e}"))?;
    keep("map", lint_mapped(&mapped, &lib, cfg.po_load, &lint_cfg));

    print_findings(&findings, o.json, stdout_owned_by_obs(o));
    let errors: usize = findings.iter().map(|f| f.report.error_count()).sum();
    let warnings: usize = findings.iter().map(|f| f.report.warn_count()).sum();
    if !o.json {
        let line =
            format!("lint: {stages} stage(s) checked, {errors} error(s), {warnings} warning(s)");
        if stdout_owned_by_obs(o) {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    }
    if o.lint == LintLevel::Deny && errors > 0 {
        return Err(format!("lint found {errors} error-severity finding(s)"));
    }
    Ok(())
}

/// The QoR measurement context matching a flow configuration.
fn qor_cli_ctx(cfg: &FlowConfig) -> lowpower::qor::Ctx {
    lowpower::qor::Ctx {
        pi_probs: cfg.pi_probs.clone(),
        model: cfg.model,
        env: cfg.env,
        po_load: cfg.po_load,
    }
}

/// Write the finished ledger per `--qor` / `--qor-out`: the text waterfall
/// defaults to stderr (it is diagnostics, like the obs summary), JSONL to
/// stdout unless an obs machine sink owns it; `--qor-out -` forces stdout
/// and any other value names a file.
fn write_qor_ledger(o: &Opts, ledger: &lowpower::qor::LedgerReport) -> Result<(), String> {
    let text = match o.qor {
        QorMode::Off => return Ok(()),
        QorMode::Json => ledger.render_jsonl(),
        QorMode::Text | QorMode::Gate => ledger.render_text(),
    };
    match o.qor_out.as_deref() {
        Some("-") => print!("{text}"),
        Some(path) => std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?,
        None if o.qor == QorMode::Json && !stdout_owned_by_obs(o) => print!("{text}"),
        None => eprint!("{text}"),
    }
    Ok(())
}

/// The `--qor=gate` check of `synth`: compare the run's final QoR against
/// the committed baseline entry for this `circuit × method` with relative
/// tolerance `--tol` (default 0, exact) and fail on drift.
fn qor_gate(o: &Opts, ledger: &lowpower::qor::LedgerReport) -> Result<(), String> {
    use lowpower::qor::{baseline, Baseline, Tolerance};
    let path = o.baseline.as_deref().unwrap_or("results/qor_baseline.json");
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let base = Baseline::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let metrics = ledger
        .final_metrics()
        .ok_or("qor gate: the ledger recorded no snapshots")?;
    let entry = base.get(&ledger.circuit, &ledger.method).ok_or_else(|| {
        format!(
            "qor gate: no baseline entry for {} × {} in {path} (regenerate with `lowpower qor-baseline`)",
            ledger.circuit, ledger.method
        )
    })?;
    let mut want = Baseline::new();
    want.insert(&ledger.circuit, &ledger.method, *entry);
    let mut got = Baseline::new();
    got.insert(&ledger.circuit, &ledger.method, metrics);
    let d = baseline::diff(&want, &got, &Tolerance::uniform(o.tol.unwrap_or(0.0)));
    if !d.passed() {
        return Err(format!("qor gate failed vs {path}:\n{}", d.render_text()));
    }
    eprintln!(
        "qor gate ok: {} × {} matches {path}",
        ledger.circuit, ledger.method
    );
    Ok(())
}

/// `qor-baseline`: run all six methods on every `--blif` and write the
/// canonical baseline JSON (final mapped QoR per `circuit × method`).
fn qor_baseline(o: &Opts) -> Result<(), String> {
    use lowpower::flow::run_flow;
    use lowpower::qor::Baseline;
    if o.blifs.is_empty() {
        return Err("--blif is required (repeat it for several circuits)".to_string());
    }
    let lib = load_lib(o)?;
    let cfg = FlowConfig {
        required_time: o.required,
        use_correlations: o.correlations,
        ..FlowConfig::default()
    };
    let ctx = qor_cli_ctx(&cfg);
    let mut baseline = Baseline::new();
    for path in &o.blifs {
        let net = load_blif(path)?;
        for m in Method::ALL {
            let r = run_flow(&net, &lib, m, &cfg)
                .map_err(|e| format!("{}: method {m}: {e}", net.name()))?;
            let metrics = lowpower::qor::measure_mapped(&r.mapped, &lib, &ctx);
            baseline.insert(net.name(), &m.to_string(), metrics);
        }
        eprintln!("measured {} (6 methods)", net.name());
    }
    let out = o.out.as_deref().unwrap_or("results/qor_baseline.json");
    std::fs::write(out, baseline.render_json()).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {} entries to {out}", baseline.entries.len());
    Ok(())
}

/// `qor-diff`: compare two baseline files with a relative tolerance.
fn qor_diff(o: &Opts) -> Result<(), String> {
    use lowpower::qor::{baseline, Baseline, Tolerance};
    let bpath = o.baseline.as_deref().ok_or("--baseline is required")?;
    let apath = o.against.as_deref().ok_or("--against is required")?;
    let read = |p: &str| -> Result<Baseline, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
        Baseline::parse(&text).map_err(|e| format!("{p}: {e}"))
    };
    let base = read(bpath)?;
    let against = read(apath)?;
    let d = baseline::diff(&base, &against, &Tolerance::uniform(o.tol.unwrap_or(0.0)));
    eprint!("{}", d.render_text());
    if !d.passed() {
        return Err(format!("qor drift detected ({} problem(s))", d.failures()));
    }
    Ok(())
}

/// `qor-check`: strictly validate a QoR ledger JSONL stream from `--file`
/// (default: stdin), including the telescoping identity of every summary.
fn qor_check(o: &Opts) -> Result<(), String> {
    let text = match o.file.as_deref() {
        None | Some("-") => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?,
    };
    let stats = lowpower::qor::check::check_jsonl(&text)?;
    eprintln!(
        "qor ledger ok: {} line(s), {} snapshot(s), {} run(s)",
        stats.lines, stats.snapshot_lines, stats.runs
    );
    Ok(())
}

/// `explain`: resolve one optimized-network node — slack, decomposition
/// choice, and the mapped gates (with power shares) that trace back to it.
fn explain(o: &Opts) -> Result<(), String> {
    let node = o.node.as_deref().ok_or("--node is required")?;
    let (net, lib) = load_inputs(o)?;
    let cfg = FlowConfig {
        required_time: o.required,
        use_correlations: o.correlations,
        ..FlowConfig::default()
    };
    let optimized = optimize(&net);
    let Some(id) = optimized.find(node) else {
        return Err(format!(
            "node `{node}` not found in the optimized network of `{}` \
             (it may have been swept or collapsed by the rugged script)",
            net.name()
        ));
    };
    let is_pi = optimized.node(id).is_input();
    let depth = netlist::traversal::depth(&optimized);
    let pi_arrival = vec![0i64; optimized.inputs().len()];
    let po_required = vec![depth; optimized.outputs().len()];
    let arrivals = netlist::traversal::unit_arrival_times(&optimized, &pi_arrival);
    let slacks = netlist::traversal::unit_slacks(&optimized, &pi_arrival, &po_required);

    let r = run_method(&optimized, &lib, o.method, &cfg).map_err(|e| e.to_string())?;
    let prov = &r.provenance;
    let shares = prov.gate_shares(&r.mapped, &lib, &qor_cli_ctx(&cfg));
    let total_power: f64 = shares.iter().map(|s| s.power_uw).sum();
    let mine: Vec<_> = shares.iter().filter(|s| s.origin == node).collect();
    let mine_power: f64 = mine.iter().map(|s| s.power_uw).sum();

    println!(
        "node      : {node} ({})",
        if is_pi { "primary input" } else { "logic" }
    );
    println!(
        "method    : {} ({:?} decomposition, {:?} mapping)",
        o.method,
        o.method.decomp_style(),
        o.method.map_objective()
    );
    let slack = slacks[id.index()];
    if slack == i64::MAX {
        println!(
            "timing    : arrival level {}, unconstrained (reaches no output)",
            arrivals[id.index()]
        );
    } else {
        println!(
            "timing    : arrival level {} of {depth}, slack {slack}",
            arrivals[id.index()]
        );
    }
    if let Some((root, balanced)) = prov.height(node) {
        println!(
            "decomp    : root arrival {root}, balanced height {balanced}, surplus {}",
            root.saturating_sub(balanced)
        );
    } else if !is_pi {
        println!("decomp    : passed through undecomposed");
    }
    if let Some(bound) = prov.bound(node) {
        println!("bound     : root arrival bounded to {bound} levels");
    }
    let emitted = prov.subject_count(node);
    if emitted > 0 {
        println!("emitted   : {emitted} subject node(s) in the decomposed network");
    }
    if mine.is_empty() {
        println!("gates     : none (absorbed into neighbouring gates' covers)");
    } else {
        println!("gates     : {}", mine.len());
        for s in &mine {
            println!(
                "  {:<16} {:<10} covers {:<16} {:>9.3} µW",
                s.instance, s.gate, s.subject, s.power_uw
            );
        }
    }
    let pct = if total_power > 0.0 {
        100.0 * mine_power / total_power
    } else {
        0.0
    };
    println!("power     : {mine_power:.3} µW of {total_power:.3} µW total ({pct:.1}%)");
    Ok(())
}
