//! Flow-level verification: every method of the paper's experiment, on
//! every circuit of the benchmark suite, must pass the `verify` crate's
//! equivalence checkpoints at [`VerifyLevel::Full`] — the optimize,
//! decompose, and map stages are each proved (BDD, with simulation
//! fallback) function-preserving.

use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_method, FlowConfig, Method};
use lowpower::verify::{check_equiv, VerifyLevel, VerifyOptions};

fn verify_all_methods(net: &netlist::Network) {
    let lib = lib2_like();
    let cfg = FlowConfig {
        sim_vectors: 50,
        verify: VerifyLevel::Full,
        ..FlowConfig::default()
    };
    let optimized = optimize(net);
    let v = check_equiv(net, &optimized, &VerifyOptions::default())
        .unwrap_or_else(|e| panic!("{}: optimize not comparable: {e}", net.name()));
    assert!(
        v.is_ok(),
        "{}: optimize broke the function: {v:?}",
        net.name()
    );
    for m in Method::ALL {
        run_method(&optimized, &lib, m, &cfg)
            .unwrap_or_else(|e| panic!("{} method {m}: {e}", net.name()));
    }
}

macro_rules! suite_verified {
    ($($test:ident => $circuit:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                verify_all_methods(&benchgen::suite_circuit($circuit));
            }
        )+
    };
}

suite_verified! {
    s208_all_methods_verified => "s208",
    s344_all_methods_verified => "s344",
    s382_all_methods_verified => "s382",
    s444_all_methods_verified => "s444",
    s510_all_methods_verified => "s510",
    s526_all_methods_verified => "s526",
    s641_all_methods_verified => "s641",
    s713_all_methods_verified => "s713",
    s820_all_methods_verified => "s820",
    cm42a_all_methods_verified => "cm42a",
    x1_all_methods_verified => "x1",
    x2_all_methods_verified => "x2",
    x3_all_methods_verified => "x3",
    ttt2_all_methods_verified => "ttt2",
    apex7_all_methods_verified => "apex7",
    alu2_all_methods_verified => "alu2",
    ex2_all_methods_verified => "ex2",
}
