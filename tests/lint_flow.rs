//! Flow-level lint gate: every method of the paper's experiment, on every
//! circuit of the benchmark suite, must come through the flow's lint
//! checkpoints with zero Error-severity findings at [`LintLevel::Deny`].
//! (Deny turns any Error finding into a hard `FlowError::Lint`, so merely
//! completing `run_method` proves the gate; we additionally assert that the
//! surviving warn-level findings really carry no errors.)

use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_method, FlowConfig, Method};
use lowpower::lint::{lint_network, LintConfig, LintLevel};

fn lint_all_methods(net: &netlist::Network) {
    let lib = lib2_like();
    let cfg = FlowConfig {
        sim_vectors: 20,
        lint: LintLevel::Deny,
        ..FlowConfig::default()
    };
    let lint_cfg = LintConfig::new();
    let raw = lint_network(net, &lint_cfg);
    assert!(
        !raw.has_errors(),
        "{}: parsed network fails lint:\n{}",
        net.name(),
        raw.render_text()
    );
    let optimized = optimize(net);
    let opt = lint_network(&optimized, &lint_cfg);
    assert!(
        !opt.has_errors(),
        "{}: optimized network fails lint:\n{}",
        net.name(),
        opt.render_text()
    );
    for m in Method::ALL {
        let r = run_method(&optimized, &lib, m, &cfg)
            .unwrap_or_else(|e| panic!("{} method {m}: {e}", net.name()));
        for f in &r.lint_findings {
            assert_eq!(
                f.report.error_count(),
                0,
                "{} method {m} stage {}: errors slipped past deny:\n{}",
                net.name(),
                f.stage,
                f.report.render_text()
            );
        }
    }
}

macro_rules! suite_lint_clean {
    ($($test:ident => $circuit:literal),+ $(,)?) => {
        $(
            #[test]
            fn $test() {
                lint_all_methods(&benchgen::suite_circuit($circuit));
            }
        )+
    };
}

suite_lint_clean! {
    s208_all_methods_lint_clean => "s208",
    s344_all_methods_lint_clean => "s344",
    s382_all_methods_lint_clean => "s382",
    s444_all_methods_lint_clean => "s444",
    s510_all_methods_lint_clean => "s510",
    s526_all_methods_lint_clean => "s526",
    s641_all_methods_lint_clean => "s641",
    s713_all_methods_lint_clean => "s713",
    s820_all_methods_lint_clean => "s820",
    cm42a_all_methods_lint_clean => "cm42a",
    x1_all_methods_lint_clean => "x1",
    x2_all_methods_lint_clean => "x2",
    x3_all_methods_lint_clean => "x3",
    ttt2_all_methods_lint_clean => "ttt2",
    apex7_all_methods_lint_clean => "apex7",
    alu2_all_methods_lint_clean => "alu2",
    ex2_all_methods_lint_clean => "ex2",
}
