//! Property-based tests of the full decompose→map pipeline: functional
//! equivalence on randomized networks under every style/objective, BLIF
//! roundtrips of mapped netlists, and timing-model consistency.

use activity::{analyze, TransitionModel};
use benchgen::{random_network, RandomNetConfig};
use genlib::builtin::lib2_like;
use lowpower::core::decomp::{decompose_network, DecompOptions, DecompStyle};
use lowpower::core::map::SubjectAig;
use lowpower::core::map::{map_network, MapOptions};
use lowpower::flow::strip_constant_outputs;
use proptest::prelude::*;

fn pipeline_equivalence(seed: u64, style: DecompStyle, power: bool) -> Result<(), TestCaseError> {
    let net = random_network(&RandomNetConfig {
        inputs: 7,
        outputs: 3,
        nodes: 18,
        max_fanin: 3,
        seed,
    });
    let d = decompose_network(&net, &DecompOptions::new(style));
    let (mappable, consts) = strip_constant_outputs(&d.network);
    if mappable.outputs().is_empty() {
        return Ok(()); // everything constant — nothing to map
    }
    let probs = vec![0.5; mappable.inputs().len()];
    let act = analyze(&mappable, &probs, TransitionModel::StaticCmos);
    let aig = SubjectAig::from_network(&mappable, &act).expect("mappable network");
    let lib = lib2_like();
    let opts = if power {
        MapOptions::power()
    } else {
        MapOptions::area()
    };
    let mapped = map_network(&aig, &lib, &opts).expect("maps");

    // Exhaustive functional check against the ORIGINAL network.
    let const_names: Vec<&str> = consts.iter().map(|(n, _)| n.as_str()).collect();
    for bits in 0..(1u64 << 7) {
        let pis: Vec<bool> = (0..7).map(|i| bits >> i & 1 == 1).collect();
        let expect = net.eval_outputs(&pis);
        let got = mapped.eval_outputs(&lib, &pis);
        for (gi, (name, _)) in mapped.outputs.iter().enumerate() {
            prop_assert!(!const_names.contains(&name.as_str()));
            let oi = net
                .outputs()
                .iter()
                .position(|(on, _)| on == name)
                .expect("output exists in original");
            prop_assert_eq!(got[gi], expect[oi], "output {} at {:?}", name, pis);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn conventional_area_pipeline_equivalent(seed in 0u64..1000) {
        pipeline_equivalence(seed, DecompStyle::Conventional, false)?;
    }

    #[test]
    fn minpower_power_pipeline_equivalent(seed in 0u64..1000) {
        pipeline_equivalence(seed, DecompStyle::MinPower, true)?;
    }

    #[test]
    fn bounded_power_pipeline_equivalent(seed in 0u64..1000) {
        pipeline_equivalence(seed, DecompStyle::BoundedMinPower, true)?;
    }

    #[test]
    fn mapped_blif_roundtrips(seed in 0u64..1000) {
        let net = random_network(&RandomNetConfig {
            inputs: 6, outputs: 2, nodes: 12, max_fanin: 3, seed,
        });
        let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
        let (mappable, _) = strip_constant_outputs(&d.network);
        if mappable.outputs().is_empty() {
            return Ok(());
        }
        let probs = vec![0.5; mappable.inputs().len()];
        let act = analyze(&mappable, &probs, TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&mappable, &act).expect("mappable");
        let lib = lib2_like();
        let mapped = map_network(&aig, &lib, &MapOptions::power()).expect("maps");
        let text = mapped.to_blif(&lib, "roundtrip");
        let back = netlist::parse_blif(&text).expect("valid blif").network;
        for bits in 0..(1u64 << 6) {
            let pis: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            prop_assert_eq!(back.eval_outputs(&pis), mapped.eval_outputs(&lib, &pis));
        }
    }
}

#[test]
fn estimated_timing_tracks_evaluated_timing() {
    // The mapper's estimated arrivals (default load) must correlate with
    // the evaluated STA delay: over a set of seeds, evaluated ≥ estimated
    // fastest (actual loads are never lighter than the default on the
    // critical path) and within a sane factor.
    let lib = lib2_like();
    for seed in [1u64, 2, 3, 4, 5] {
        let net = random_network(&RandomNetConfig {
            inputs: 8,
            outputs: 4,
            nodes: 25,
            max_fanin: 3,
            seed,
        });
        let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
        let (mappable, _) = strip_constant_outputs(&d.network);
        let probs = vec![0.5; mappable.inputs().len()];
        let act = analyze(&mappable, &probs, TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&mappable, &act).expect("mappable");
        let mapped = map_network(&aig, &lib, &MapOptions::area()).expect("maps");
        let rep = lowpower::core::power::evaluate(
            &mapped,
            &lib,
            &activity::PowerEnv::new(),
            TransitionModel::StaticCmos,
            1.0,
        );
        assert!(
            rep.delay >= mapped.estimated_fastest * 0.5,
            "seed {seed}: evaluated {} vs estimated {}",
            rep.delay,
            mapped.estimated_fastest
        );
        assert!(
            rep.delay <= mapped.estimated_fastest * 6.0,
            "seed {seed}: evaluated {} wildly above estimate {}",
            rep.delay,
            mapped.estimated_fastest
        );
    }
}
