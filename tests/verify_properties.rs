//! Self-tests of the verification subsystem itself.
//!
//! * BLIF round-trip property: serializing any generated network and
//!   parsing it back must be BDD-provably equivalent to the original.
//! * Mutation test: a deliberately injected bug (one AND node of a
//!   decomposed tree turned into an OR) must be caught by BOTH backends,
//!   with a concrete, minimized, replayable counterexample.

use lowpower::core::decomp::{decompose_network, DecompOptions, DecompStyle};
use lowpower::verify::{check_equiv, Backend, Verdict, VerifyLevel, VerifyOptions};
use netlist::{parse_blif, write_blif, Cube, Lit, Network, Sop};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn blif_roundtrip_is_equivalent(
        inputs in 2usize..8,
        outputs in 1usize..5,
        nodes in 1usize..25,
        max_fanin in 2usize..5,
        seed in 0u64..1_000_000,
    ) {
        let net = benchgen::random_network(&benchgen::RandomNetConfig {
            inputs,
            outputs,
            nodes,
            max_fanin,
            seed,
        });
        let text = write_blif(&net);
        let back = parse_blif(&text)
            .unwrap_or_else(|e| panic!("round-trip parse failed: {e}\n{text}"))
            .network;
        let verdict = check_equiv(&net, &back, &VerifyOptions::default()).unwrap();
        prop_assert!(verdict.is_ok(), "round-trip changed function: {verdict:?}");
    }
}

#[test]
fn suite_circuits_roundtrip_through_blif() {
    for spec in benchgen::paper_suite() {
        let net = benchgen::suite_circuit(spec.name);
        let back = parse_blif(&write_blif(&net)).unwrap().network;
        let verdict = check_equiv(&net, &back, &VerifyOptions::default()).unwrap();
        assert!(verdict.is_ok(), "{}: {verdict:?}", spec.name);
    }
}

/// Flip the first pure-AND node (single cube, ≥ 2 literals) of `net` into
/// the OR of the same literals; returns the mutated node's name.
fn inject_and_to_or_bug(net: &mut Network) -> String {
    let victim = net
        .logic_ids()
        .find(|&id| {
            let sop = net.node(id).sop().expect("logic node");
            sop.cube_count() == 1 && sop.cubes()[0].literal_count() >= 2
        })
        .expect("no AND node to mutate");
    let name = net.node(victim).name().to_string();
    let sop = net.node(victim).sop().unwrap().clone();
    let width = sop.width();
    let or_cubes: Vec<Cube> = sop.cubes()[0]
        .bound_lits()
        .map(|(pos, lit)| Cube::literal(width, pos, lit == Lit::Pos))
        .collect();
    let fanins = net.node(victim).fanins().to_vec();
    net.replace_function(victim, fanins, Sop::from_cubes(width, or_cubes));
    name
}

#[test]
fn injected_bug_is_caught_by_both_backends() {
    let source = benchgen::suite_circuit("cm42a");
    let decomposed = decompose_network(&source, &DecompOptions::new(DecompStyle::MinPower)).network;
    let mut mutated = decomposed.clone();
    let victim = inject_and_to_or_bug(&mut mutated);

    for level in [VerifyLevel::Sim, VerifyLevel::Full] {
        let verdict = check_equiv(&decomposed, &mutated, &VerifyOptions::at_level(level)).unwrap();
        let Verdict::NotEquivalent(cex) = verdict else {
            panic!("{level:?} backend missed the injected bug");
        };

        // The witness is concrete and replayable: both networks share the
        // same inputs, and re-evaluating them on the reported vector must
        // reproduce the divergence on the reported output.
        let pis: Vec<bool> = decomposed
            .input_names()
            .iter()
            .map(|n| cex.input_value(n).expect("assignment covers every input"))
            .collect();
        let good = decomposed.eval_outputs(&pis);
        let bad = mutated.eval_outputs(&pis);
        let oi = decomposed
            .outputs()
            .iter()
            .position(|(n, _)| *n == cex.output)
            .expect("diverging output exists");
        assert_ne!(good[oi], bad[oi], "{level:?}: witness does not replay");
        assert_eq!(
            cex.values,
            (good[oi], bad[oi]),
            "{level:?}: reported values wrong"
        );

        // Minimization: every reported care input must be essential —
        // flipping it alone repairs the reported output.
        assert!(!cex.care.is_empty(), "{level:?}: empty care set");
        for care_input in &cex.care {
            let mut flipped = pis.clone();
            let i = decomposed
                .input_names()
                .iter()
                .position(|n| n == care_input)
                .expect("care input exists");
            flipped[i] = !flipped[i];
            assert_eq!(
                decomposed.eval_outputs(&flipped),
                mutated.eval_outputs(&flipped),
                "{level:?}: care input `{care_input}` is not essential"
            );
        }

        // Cone diagnosis points at the mutated node (names survive the
        // mutation, so the first divergent named node is the victim).
        assert_eq!(
            cex.divergent_node.as_deref(),
            Some(victim.as_str()),
            "{level:?}: cone diagnosis missed the mutation"
        );
    }
}

/// The sim backend must also catch the bug when the BDD budget forces the
/// full level to fall back.
#[test]
fn injected_bug_caught_even_under_bdd_fallback() {
    let source = benchgen::suite_circuit("x2");
    let decomposed =
        decompose_network(&source, &DecompOptions::new(DecompStyle::Conventional)).network;
    let mut mutated = decomposed.clone();
    inject_and_to_or_bug(&mut mutated);
    let opts = VerifyOptions {
        bdd_node_budget: 1,
        ..Default::default()
    };
    let verdict = check_equiv(&decomposed, &mutated, &opts).unwrap();
    assert!(!verdict.is_ok(), "fallback path missed the injected bug");
}

#[test]
fn equivalent_decomposition_proved_by_bdd_backend() {
    let source = benchgen::suite_circuit("cm42a");
    let decomposed = decompose_network(&source, &DecompOptions::new(DecompStyle::MinPower)).network;
    let verdict = check_equiv(&source, &decomposed, &VerifyOptions::default()).unwrap();
    match verdict {
        Verdict::Equivalent(report) => {
            assert_eq!(report.backend, Backend::Bdd, "expected a BDD proof");
            assert!(!report.bdd_fallback);
        }
        other => panic!("decomposition not equivalent: {other:?}"),
    }
}
