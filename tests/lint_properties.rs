//! Property-based self-tests of the lint subsystem (proptest).
//!
//! * Every certified logicopt pass, run on any generated network, must
//!   leave it lint-clean (the debug-build certifier would panic first, but
//!   these assertions also hold in release).
//! * Decomposition of any generated network must be lint-clean, including
//!   the DEC arity/depth rules.
//! * The full flow at [`LintLevel::Deny`] must complete for every method
//!   on any generated network — i.e. no stage ever produces an
//!   Error-severity finding.

use genlib::builtin::lib2_like;
use lowpower::core::decomp::{DecompOptions, DecompStyle};
use lowpower::flow::{optimize, run_method, FlowConfig, Method};
use lowpower::lint::{lint_decomposed, lint_network, LintConfig, LintLevel};
use proptest::prelude::*;

fn gen_net(
    inputs: usize,
    outputs: usize,
    nodes: usize,
    max_fanin: usize,
    seed: u64,
) -> netlist::Network {
    benchgen::random_network(&benchgen::RandomNetConfig {
        inputs,
        outputs,
        nodes,
        max_fanin,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Certified passes preserve structural invariants: the network is
    /// lint-clean after each pass, in any order of application.
    #[test]
    fn certified_passes_leave_networks_lint_clean(
        inputs in 3usize..8,
        outputs in 1usize..5,
        nodes in 4usize..30,
        seed in 0u64..1_000_000,
    ) {
        let cfg = LintConfig::new();
        let mut net = gen_net(inputs, outputs, nodes, 3, seed);
        prop_assert!(!lint_network(&net, &cfg).has_errors());

        lint::certify::sweep(&mut net);
        prop_assert!(!lint_network(&net, &cfg).has_errors(), "sweep broke invariants");
        lint::certify::simplify_network(&mut net);
        prop_assert!(!lint_network(&net, &cfg).has_errors(), "simplify broke invariants");
        lint::certify::eliminate(&mut net, 0);
        prop_assert!(!lint_network(&net, &cfg).has_errors(), "eliminate broke invariants");
        lint::certify::extract(&mut net, 4);
        prop_assert!(!lint_network(&net, &cfg).has_errors(), "extract broke invariants");
        lint::certify::rugged_like(&mut net);
        prop_assert!(!lint_network(&net, &cfg).has_errors(), "rugged broke invariants");
    }

    /// Decomposition output is lint-clean for every style: all-2-input
    /// arity (DEC001), consistent depth bookkeeping (DEC003), and the
    /// underlying network invariants.
    #[test]
    fn decomposition_is_lint_clean(
        inputs in 3usize..8,
        outputs in 1usize..4,
        nodes in 4usize..25,
        seed in 0u64..1_000_000,
        style_ix in 0usize..3,
    ) {
        let style = [
            DecompStyle::Conventional,
            DecompStyle::MinPower,
            DecompStyle::BoundedMinPower,
        ][style_ix];
        let net = gen_net(inputs, outputs, nodes, 4, seed);
        let decomposed = lint::certify::decompose_network(&net, &DecompOptions::new(style));
        let report = lint_decomposed(&decomposed, &LintConfig::new());
        prop_assert!(
            !report.has_errors(),
            "{style:?} decomposition fails lint:\n{}",
            report.render_text()
        );
    }
}

proptest! {
    // The full flow is expensive (6 methods x decompose + BDD activity +
    // curve mapping per case), so fewer cases here.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// All six flow methods complete at `LintLevel::Deny` on generated
    /// networks: no stage checkpoint ever reports an Error finding.
    #[test]
    fn all_methods_lint_clean_under_deny(
        inputs in 4usize..8,
        outputs in 2usize..5,
        nodes in 8usize..30,
        seed in 0u64..1_000_000,
    ) {
        let net = gen_net(inputs, outputs, nodes, 3, seed);
        let lib = lib2_like();
        let cfg = FlowConfig {
            sim_vectors: 10,
            lint: LintLevel::Deny,
            ..FlowConfig::default()
        };
        let optimized = optimize(&net);
        for m in Method::ALL {
            let r = run_method(&optimized, &lib, m, &cfg)
                .unwrap_or_else(|e| panic!("seed {seed} method {m}: {e}"));
            for f in &r.lint_findings {
                prop_assert_eq!(f.report.error_count(), 0);
            }
        }
    }
}
