//! Thread-count invariance of the parallel execution layer.
//!
//! The contract of `crates/par` and the chunked kernels built on it is
//! that results depend **only on inputs** — never on the thread count or
//! the scheduling of chunks. These tests pin that contract end to end:
//!
//! * full six-method flow runs on suite circuits render byte-identical
//!   reports at `sim_threads = 1` and `sim_threads = 4`;
//! * the chunked seeded activity simulation matches an independently
//!   written serial reference exactly, for arbitrary vector counts
//!   (including non-multiples of 64) at any thread count;
//! * the verify crate's parallel random-sim backend reports the same
//!   verdict — and the same counterexample — at any thread count.

use activity::sim::bernoulli_word;
use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_method, FlowConfig, Method, MethodResult};
use lowpower::verify::{check_equiv, Verdict, VerifyLevel, VerifyOptions};
use netlist::{parse_blif, Network};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Render everything observable about a method run. `{:?}` on the floats
/// prints the shortest exact round-trip representation, so string equality
/// is bit equality.
fn render(r: &MethodResult, lib: &genlib::Library) -> String {
    format!(
        "report={:?}\nglitch={:?}\ndepth={}\nswitching={:?}\nblif:\n{}",
        r.report,
        r.glitch_power_uw,
        r.decomp_depth,
        r.decomp_switching,
        r.mapped.to_blif(lib, "m")
    )
}

#[test]
fn six_methods_thread_invariant_on_suite_circuits() {
    let lib = lib2_like();
    for name in ["s208", "cm42a", "x2"] {
        let net = benchgen::suite_circuit(name);
        let optimized = optimize(&net);
        for m in Method::ALL {
            let serial = FlowConfig {
                sim_vectors: 256,
                sim_threads: 1,
                ..FlowConfig::default()
            };
            let parallel = FlowConfig {
                sim_threads: 4,
                ..serial.clone()
            };
            let a = run_method(&optimized, &lib, m, &serial)
                .unwrap_or_else(|e| panic!("method {m} failed on {name}: {e}"));
            let b = run_method(&optimized, &lib, m, &parallel)
                .unwrap_or_else(|e| panic!("method {m} failed on {name}: {e}"));
            assert_eq!(
                render(&a, &lib),
                render(&b, &lib),
                "{name} method {m}: 1-thread and 4-thread runs diverged"
            );
        }
    }
}

/// Repeated in-process runs exercise fresh hash seeds for every std
/// `HashMap` the passes create (the per-thread `RandomState` counter
/// advances each time), so this catches results that leak hash iteration
/// order — the exact failure mode once found in `fast_extract`'s candidate
/// scoring, where a hash-ordered tie-break picked different divisors in
/// different processes.
#[test]
fn optimize_is_hash_seed_invariant() {
    for name in ["cm42a", "x2", "s208"] {
        let net = benchgen::suite_circuit(name);
        let runs: Vec<String> = (0..3)
            .map(|_| netlist::write_blif(&optimize(&net)))
            .collect();
        assert!(
            runs.windows(2).all(|w| w[0] == w[1]),
            "{name}: optimize produced different networks across repeated runs"
        );
    }
}

/// Independent serial reference for the seeded activity simulation: one
/// plain loop over words, drawing word `w` from a generator seeded with
/// `par::split_seed(master_seed, w)` — the same stream contract as the
/// chunked kernel, without any chunking.
fn reference_seeded_sim(
    net: &Network,
    pi_probs: &[f64],
    vectors: usize,
    master_seed: u64,
) -> (Vec<f64>, Vec<f64>) {
    let arena = net.arena_len();
    let words = vectors.div_ceil(64);
    let mut ones = vec![0u64; arena];
    let mut transitions = vec![0u64; arena];
    let mut last_bits = vec![0u64; arena];
    let mut pi_words = vec![0u64; pi_probs.len()];
    for w in 0..words {
        let mut rng = SmallRng::seed_from_u64(par::split_seed(master_seed, w as u64));
        for (word, &p) in pi_words.iter_mut().zip(pi_probs) {
            *word = bernoulli_word(&mut rng, p.clamp(0.0, 1.0));
        }
        let values = net.eval_words(&pi_words);
        let lanes = if w + 1 == words { vectors - w * 64 } else { 64 };
        let mask = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        for i in 0..arena {
            let v = values[i] & mask;
            ones[i] += v.count_ones() as u64;
            transitions[i] += ((v ^ (v >> 1)) & (mask >> 1)).count_ones() as u64;
            if w > 0 && last_bits[i] != (v & 1) {
                transitions[i] += 1;
            }
            last_bits[i] = v >> (lanes - 1) & 1;
        }
    }
    (
        ones.iter().map(|&c| c as f64 / vectors as f64).collect(),
        transitions
            .iter()
            .map(|&c| c as f64 / (vectors - 1) as f64)
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn chunked_activity_sim_matches_serial_reference(
        inputs in 2usize..6,
        nodes in 1usize..20,
        vectors in 2usize..400,
        threads in 1usize..8,
        seed in 0u64..1_000_000,
    ) {
        let net = benchgen::random_network(&benchgen::RandomNetConfig {
            inputs,
            outputs: 2,
            nodes,
            max_fanin: 3,
            seed,
        });
        let probs = vec![0.5; net.inputs().len()];
        let (ref_p, ref_s) = reference_seeded_sim(&net, &probs, vectors, seed);
        let sim = activity::sim::simulate_activity_seeded(&net, &probs, vectors, seed, threads);
        for id in net.node_ids() {
            prop_assert_eq!(sim.p_one(id), ref_p[id.index()], "p_one at {:?}", id);
            prop_assert_eq!(sim.switching(id), ref_s[id.index()], "switching at {:?}", id);
        }
    }
}

#[test]
fn verify_sim_backend_thread_invariant() {
    // f = a·b vs f = a+b: inequivalent, so the sim backend must find —
    // and minimize — the same counterexample at every thread count.
    let and2 = parse_blif(".model a\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n")
        .unwrap()
        .network;
    let or2 = parse_blif(".model o\n.inputs a b\n.outputs f\n.names a b f\n1- 1\n-1 1\n.end\n")
        .unwrap()
        .network;
    let opts = |t: usize| VerifyOptions::at_level(VerifyLevel::Sim).with_threads(t);
    let serial = check_equiv(&and2, &or2, &opts(1)).expect("comparable");
    let Verdict::NotEquivalent(base) = serial else {
        panic!("AND vs OR must be caught")
    };
    for t in [2usize, 4, 7] {
        let v = check_equiv(&and2, &or2, &opts(t)).expect("comparable");
        let Verdict::NotEquivalent(cex) = v else {
            panic!("AND vs OR must be caught at {t} threads")
        };
        assert_eq!(format!("{base}"), format!("{cex}"), "{t} threads");
    }
    // Equivalent pair: same verdict and vector count at any thread count.
    let same = check_equiv(&and2, &and2, &opts(5)).expect("comparable");
    assert!(same.is_ok());
}
