//! The obs determinism contract, end to end.
//!
//! Everything the obs layer counts — counters, gauges, histograms, span
//! counts — must be a pure function of the work performed: byte-identical
//! across thread counts and repeated runs once wall-time fields are
//! stripped. These tests pin that contract over full flow runs, plus the
//! structural guarantees of the sinks:
//!
//! * 3 suite circuits × all 6 paper methods: the timing-stripped metrics
//!   snapshot is byte-identical at `sim_threads = 1` and `4`, and across
//!   repeated runs;
//! * a full flow run's JSONL stream and Chrome trace pass the strict
//!   checkers in `obs::check`, and the stream's stripped snapshot equals
//!   the report's own timing-free snapshot;
//! * spans opened inside `par::scope_map` workers always splice back into
//!   a well-formed tree under the span open at the fork point, for
//!   arbitrary item counts and thread counts (proptest).

use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_method, FlowConfig, Method};
use lowpower::obs;
use lowpower::obs::check::{check_chrome, check_jsonl, parse_json, strip_timing};
use lowpower::obs::SpanNode;
use proptest::prelude::*;

/// Run one method under a recording session and return the
/// timing-stripped metrics snapshot.
fn stripped_snapshot(
    optimized: &netlist::Network,
    lib: &genlib::Library,
    m: Method,
    threads: usize,
) -> String {
    let cfg = FlowConfig {
        sim_vectors: 256,
        sim_threads: threads,
        ..FlowConfig::default()
    };
    let session = obs::Session::start();
    run_method(optimized, lib, m, &cfg).expect("flow runs");
    session.finish().snapshot_json(false)
}

#[test]
fn snapshots_thread_and_repeat_invariant() {
    let lib = lib2_like();
    for name in ["cm42a", "x2", "s208"] {
        let net = benchgen::suite_circuit(name);
        let optimized = optimize(&net);
        for m in Method::ALL {
            let serial = stripped_snapshot(&optimized, &lib, m, 1);
            let parallel = stripped_snapshot(&optimized, &lib, m, 4);
            let repeat = stripped_snapshot(&optimized, &lib, m, 4);
            assert_eq!(serial, parallel, "{name} {m}: 1 vs 4 threads diverged");
            assert_eq!(parallel, repeat, "{name} {m}: repeated runs diverged");
        }
    }
}

#[test]
fn full_flow_sinks_pass_strict_checkers() {
    let lib = lib2_like();
    let net = benchgen::suite_circuit("cm42a");
    let optimized = optimize(&net);
    let cfg = FlowConfig {
        sim_vectors: 256,
        sim_threads: 4,
        ..FlowConfig::default()
    };
    let session = obs::Session::start();
    run_method(&optimized, &lib, Method::VI, &cfg).expect("flow runs");
    let report = session.finish();

    let snap = check_jsonl(&report.render_jsonl()).expect("JSONL stream is well-formed");
    let timing_free = parse_json(&report.snapshot_json(false))
        .expect("snapshot is strict JSON")
        .render();
    assert_eq!(
        strip_timing(&snap),
        timing_free,
        "stream snapshot must strip to the report's timing-free snapshot"
    );

    check_chrome(&report.render_chrome()).expect("Chrome trace is well-formed");
}

fn count_spans(nodes: &[SpanNode], name: &str) -> usize {
    nodes
        .iter()
        .map(|n| (n.name == name) as usize + count_spans(&n.children, name))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn scope_map_spans_close_into_well_formed_tree(
        items in 0usize..40,
        threads in 1usize..8,
        nested_bit in 0usize..2,
    ) {
        let nested = nested_bit == 1;
        let data: Vec<usize> = (0..items).collect();
        let session = obs::Session::start();
        {
            let _outer = obs::span!("outer");
            par::scope_map(threads, &data, |i, &x| {
                let _work = obs::span!("work");
                if nested {
                    let _inner = obs::span!("inner");
                    obs::counter!("t.det.nested");
                }
                i + x
            });
        }
        let report = session.finish();
        let forest = report.tree().expect("span buffers are balanced");
        prop_assert_eq!(forest.len(), 1, "one top-level span");
        prop_assert_eq!(forest[0].name, "outer");
        prop_assert_eq!(count_spans(&forest, "work"), items);
        prop_assert_eq!(
            count_spans(&forest, "inner"),
            if nested { items } else { 0 }
        );
        // The flattened stream must satisfy the strict checker too
        // (per-thread balance and monotone timestamps).
        check_jsonl(&report.render_jsonl()).expect("stream is well-formed");
    }
}
