//! End-to-end integration tests: every method of the paper's experiment
//! must produce a mapped netlist that is functionally equivalent to the
//! source network, meets basic sanity on area/delay/power, and orders the
//! methods the way the paper's comparisons require.

use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_method, strip_constant_outputs, FlowConfig, Method};
use netlist::Network;
use rand::{Rng, SeedableRng};

/// Check the mapped netlist against the original network on random vectors,
/// accounting for constant outputs that were stripped before mapping.
fn check_equivalence(original: &Network, result: &lowpower::flow::MethodResult) {
    let lib = lib2_like();
    let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
    let n = original.inputs().len();
    let vectors = if n <= 10 { 1 << n } else { 512 };
    // Build the name order of mapped outputs.
    let mapped_outputs: Vec<&str> = result
        .mapped
        .outputs
        .iter()
        .map(|(n, _)| n.as_str())
        .collect();
    for v in 0..vectors {
        let pis: Vec<bool> = if n <= 10 {
            (0..n).map(|i| v >> i & 1 == 1).collect()
        } else {
            (0..n).map(|_| rng.gen_bool(0.5)).collect()
        };
        let expect = original.eval_outputs(&pis);
        let got = result.mapped.eval_outputs(&lib, &pis);
        for (gi, name) in mapped_outputs.iter().enumerate() {
            let oi = original
                .outputs()
                .iter()
                .position(|(on, _)| on == name)
                .unwrap_or_else(|| panic!("output {name} not in original"));
            assert_eq!(got[gi], expect[oi], "output `{name}` differs at {pis:?}");
        }
    }
}

fn run_all_methods(net: &Network) {
    let lib = lib2_like();
    let cfg = FlowConfig {
        sim_vectors: 50,
        ..FlowConfig::default()
    };
    let optimized = optimize(net);
    for m in Method::ALL {
        let r = run_method(&optimized, &lib, m, &cfg)
            .unwrap_or_else(|e| panic!("method {m} failed: {e}"));
        assert!(r.report.area > 0.0, "method {m}: empty mapping");
        assert!(r.report.delay > 0.0);
        assert!(r.report.power_uw >= 0.0);
        assert!(r.glitch_power_uw >= 0.0);
        check_equivalence(&optimized, &r);
    }
}

#[test]
fn cm42a_all_methods_equivalent() {
    run_all_methods(&benchgen::suite_circuit("cm42a"));
}

#[test]
fn x2_all_methods_equivalent() {
    run_all_methods(&benchgen::suite_circuit("x2"));
}

#[test]
fn alu_all_methods_equivalent() {
    run_all_methods(&benchgen::structured::alu(3));
}

#[test]
fn adder_all_methods_equivalent() {
    run_all_methods(&benchgen::structured::ripple_adder(4));
}

#[test]
fn parity_all_methods_equivalent() {
    run_all_methods(&benchgen::structured::parity(6));
}

#[test]
fn mux_tree_all_methods_equivalent() {
    run_all_methods(&benchgen::structured::mux_tree(3));
}

#[test]
fn random_suite_circuits_equivalent() {
    for name in ["s208", "s344"] {
        run_all_methods(&benchgen::suite_circuit(name));
    }
}

#[test]
fn optimization_preserves_function_on_suite() {
    for name in ["cm42a", "x2", "s208"] {
        let net = benchgen::suite_circuit(name);
        let opt = optimize(&net);
        opt.check().unwrap();
        let n = net.inputs().len();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..256 {
            let pis: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
            assert_eq!(
                net.eval_outputs(&pis),
                opt.eval_outputs(&pis),
                "{name} diverged"
            );
        }
    }
}

#[test]
fn pd_map_power_not_worse_within_suite_geomean() {
    // Over a handful of circuits, the geometric-mean power of pd-map (IV)
    // must not exceed ad-map (I) — the paper's headline direction.
    let lib = lib2_like();
    let mut log_ratio = 0.0;
    let mut count = 0;
    for name in ["cm42a", "x2", "s208", "alu2"] {
        let net = benchgen::suite_circuit(name);
        let optimized = optimize(&net);
        let probe = run_method(&optimized, &lib, Method::I, &FlowConfig::default()).unwrap();
        let cfg = FlowConfig {
            required_time: Some(probe.mapped.estimated_fastest * 1.10),
            sim_vectors: 400,
            ..FlowConfig::default()
        };
        let i = run_method(&optimized, &lib, Method::I, &cfg).unwrap();
        let iv = run_method(&optimized, &lib, Method::IV, &cfg).unwrap();
        log_ratio += (iv.glitch_power_uw / i.glitch_power_uw).ln();
        count += 1;
    }
    let geo = (log_ratio / count as f64).exp();
    assert!(
        geo <= 1.02,
        "pd-map geometric-mean power ratio {geo:.3} vs ad-map"
    );
}

#[test]
fn domino_models_run_end_to_end() {
    // The decomposition theory of Section 2 is proved for domino dynamic
    // CMOS; the whole flow must run under both block types and produce
    // functionally correct, phase-sensitive results.
    use activity::TransitionModel;
    let lib = lib2_like();
    let net = benchgen::structured::alu(2);
    let optimized = optimize(&net);
    let mut powers = Vec::new();
    for model in [TransitionModel::DominoP, TransitionModel::DominoN] {
        let cfg = FlowConfig {
            model,
            sim_vectors: 50,
            ..FlowConfig::default()
        };
        let r = run_method(&optimized, &lib, Method::V, &cfg)
            .unwrap_or_else(|e| panic!("domino flow failed: {e}"));
        check_equivalence(&optimized, &r);
        assert!(r.report.power_uw > 0.0);
        powers.push(r.report.power_uw);
    }
    // p-type charges on 1s, n-type on 0s: the two powers must differ.
    assert!((powers[0] - powers[1]).abs() > 1e-6);
}

#[test]
fn correlated_flow_runs_end_to_end() {
    let lib = lib2_like();
    let net = benchgen::structured::alu(2);
    let optimized = optimize(&net);
    let cfg = FlowConfig {
        use_correlations: true,
        sim_vectors: 50,
        ..FlowConfig::default()
    };
    let r = run_method(&optimized, &lib, Method::V, &cfg).expect("correlated flow");
    check_equivalence(&optimized, &r);
}

#[test]
fn strip_constant_outputs_behaviour() {
    let net = netlist::parse_blif(
        ".model t\n.inputs a\n.outputs f one\n.names one\n1\n.names a f\n0 1\n.end\n",
    )
    .unwrap()
    .network;
    let (stripped, consts) = strip_constant_outputs(&net);
    assert_eq!(consts, vec![("one".to_string(), true)]);
    assert_eq!(stripped.outputs().len(), 1);
    assert_eq!(stripped.eval_outputs(&[true]), vec![false]);
}

#[test]
fn bounded_decomposition_never_slower_than_conventional() {
    use lowpower::core::decomp::{decompose_network, DecompOptions, DecompStyle};
    for name in ["x2", "s208", "cm42a"] {
        let net = optimize(&benchgen::suite_circuit(name));
        let conv = decompose_network(&net, &DecompOptions::new(DecompStyle::Conventional));
        let bh = decompose_network(&net, &DecompOptions::new(DecompStyle::BoundedMinPower));
        assert!(
            bh.depth <= conv.depth,
            "{name}: bounded depth {} vs conventional {}",
            bh.depth,
            conv.depth
        );
    }
}
