//! Determinism and exactness of the QoR ledger.
//!
//! The ledger's contract is that it is a pure function of the flow's
//! inputs: byte-identical renders regardless of thread count or repeat
//! runs, and per-stage deltas that telescope **exactly** (fixed-point
//! integers, no float drift) to the end-to-end delta. These tests pin
//! that contract across the full circuit × method matrix, plus the
//! provenance guarantee that every mapped gate resolves to a node of the
//! optimized network, and the ε = 0.5 mapping regression on s510 (a
//! same-node-augmentation curve dead-end that used to make every phase
//! assignment infeasible).

use activity::{analyze, TransitionModel};
use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_flow, strip_constant_outputs, FlowConfig, Method};
use lowpower_core::decomp::{decompose_network, DecompOptions, DecompStyle};
use lowpower_core::map::{map_network, MapOptions, SubjectAig};
use qor::Metrics;

fn qor_cfg(sim_threads: usize) -> FlowConfig {
    FlowConfig {
        qor: true,
        sim_vectors: 256,
        sim_threads,
        ..FlowConfig::default()
    }
}

#[test]
fn ledgers_thread_invariant_and_repeatable() {
    let lib = lib2_like();
    for name in ["s208", "cm42a", "x2"] {
        let net = benchgen::suite_circuit(name);
        for m in Method::ALL {
            let runs: Vec<(String, String)> = [1, 4, 1]
                .iter()
                .map(|&t| {
                    let r = run_flow(&net, &lib, m, &qor_cfg(t))
                        .unwrap_or_else(|e| panic!("method {m} failed on {name}: {e}"));
                    let ledger = r.qor.expect("cfg.qor=true yields a ledger");
                    (ledger.render_text(), ledger.render_jsonl())
                })
                .collect();
            for (text, jsonl) in &runs[1..] {
                assert_eq!(
                    text, &runs[0].0,
                    "{name}/{m}: ledger text differs across runs/threads"
                );
                assert_eq!(
                    jsonl, &runs[0].1,
                    "{name}/{m}: ledger JSONL differs across runs/threads"
                );
            }
            qor::check::check_jsonl(&runs[0].1)
                .unwrap_or_else(|e| panic!("{name}/{m}: invalid ledger JSONL: {e}"));
        }
    }
}

#[test]
fn per_stage_deltas_telescope_exactly() {
    let lib = lib2_like();
    for name in ["s208", "cm42a", "x2"] {
        let net = benchgen::suite_circuit(name);
        for m in Method::ALL {
            let r = run_flow(&net, &lib, m, &qor_cfg(1))
                .unwrap_or_else(|e| panic!("method {m} failed on {name}: {e}"));
            let ledger = r.qor.expect("ledger");
            assert!(
                ledger.snapshots.len() >= 5,
                "{name}/{m}: expected initial + per-pass + decompose + map \
                 snapshots, got {}",
                ledger.snapshots.len()
            );
            let folded = ledger
                .deltas()
                .iter()
                .fold(Metrics::ZERO, |acc, (_, d)| acc.plus(d));
            let end = ledger.end_to_end().expect("at least two snapshots");
            assert_eq!(
                folded, end,
                "{name}/{m}: per-stage deltas do not sum to the end-to-end delta"
            );
        }
    }
}

#[test]
fn every_mapped_gate_resolves_to_an_optimized_node() {
    let lib = lib2_like();
    for name in ["s208", "cm42a", "x2"] {
        let net = benchgen::suite_circuit(name);
        let optimized = optimize(&net);
        let mut known: Vec<String> = optimized
            .node_ids()
            .map(|id| optimized.node(id).name().to_string())
            .collect();
        known.extend(
            optimized
                .inputs()
                .iter()
                .map(|id| optimized.node(*id).name().to_string()),
        );
        for m in Method::ALL {
            let r = run_flow(&net, &lib, m, &qor_cfg(1))
                .unwrap_or_else(|e| panic!("method {m} failed on {name}: {e}"));
            for inst in &r.mapped.instances {
                let origin = r.provenance.resolve(&inst.source);
                assert!(
                    known.iter().any(|k| k == origin),
                    "{name}/{m}: gate {} (subject {}) resolved to `{origin}`, \
                     which is not a node of the optimized network",
                    inst.name,
                    inst.source
                );
            }
        }
    }
}

/// Regression: mapping s510 with a wide power window (ε = 0.5) used to
/// fail with "no feasible match" because pruning could leave a phase
/// curve populated only by same-node augmentation points, a dead end no
/// downstream match can build on. The mapper now re-inserts the cheapest
/// raw point exempt from pruning; the map must succeed and the ledger
/// must record the mapped snapshot.
#[test]
fn s510_maps_at_wide_epsilon() {
    let lib = lib2_like();
    let net = benchgen::suite_circuit("s510");
    let optimized = optimize(&net);
    let dopts = DecompOptions {
        style: DecompStyle::MinPower,
        model: TransitionModel::StaticCmos,
        pi_probs: None,
        required_time: None,
        use_correlations: false,
    };
    let session = qor::Session::start("s510", "eps0.5", qor::Ctx::default());
    let decomposed = decompose_network(&optimized, &dopts);
    qor::snapshot_decomposed("decompose", &decomposed);
    let (mappable, _) = strip_constant_outputs(&decomposed.network);
    let probs = vec![0.5; mappable.inputs().len()];
    let act = analyze(&mappable, &probs, TransitionModel::StaticCmos);
    let aig = SubjectAig::from_network(&mappable, &act).expect("subject");
    let mopts = MapOptions {
        epsilon: 0.5,
        ..MapOptions::power()
    };
    let mapped = map_network(&aig, &lib, &mopts)
        .expect("s510 must map at epsilon = 0.5 (raw-point restoration)");
    qor::snapshot_mapped("map", &mapped, &lib);
    let ledger = session.finish();
    assert!(
        ledger.snapshots.iter().any(|s| s.stage == "map"),
        "ledger missing the map snapshot"
    );
}
