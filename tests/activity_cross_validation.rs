//! Cross-validation of the activity engines: exact BDD analysis vs
//! Monte-Carlo simulation, correlation heuristics vs exact joints, and the
//! decomposition's probability bookkeeping vs the re-analyzed network.

use activity::{analyze, simulate_activity, NetworkBdds, TransitionModel};
use benchgen::{random_network, RandomNetConfig};
use lowpower::core::decomp::{decompose_network, DecompOptions, DecompStyle};
use rand::SeedableRng;

#[test]
fn bdd_matches_simulation_on_random_networks() {
    for seed in [3u64, 17, 99] {
        let net = random_network(&RandomNetConfig {
            inputs: 8,
            outputs: 4,
            nodes: 30,
            max_fanin: 3,
            seed,
        });
        let probs: Vec<f64> = (0..8).map(|i| 0.2 + 0.08 * i as f64).collect();
        let act = analyze(&net, &probs, TransitionModel::StaticCmos);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed + 1);
        let sim = simulate_activity(&net, &probs, 40_000, &mut rng);
        for id in net.node_ids() {
            let dp = (act.p_one(id) - sim.p_one(id)).abs();
            let ds = (act.switching(id) - sim.switching(id)).abs();
            assert!(
                dp < 0.02,
                "seed {seed}: p_one off by {dp} at {}",
                net.node(id).name()
            );
            assert!(
                ds < 0.02,
                "seed {seed}: switching off by {ds} at {}",
                net.node(id).name()
            );
        }
    }
}

#[test]
fn decomposition_preserves_exact_probabilities() {
    // Probabilities stored during decomposition use the independence
    // heuristic, but re-analysis of the decomposed network must agree with
    // the original network at the node roots (same global functions).
    let net = random_network(&RandomNetConfig {
        inputs: 7,
        outputs: 3,
        nodes: 20,
        max_fanin: 3,
        seed: 5,
    });
    let probs = vec![0.3; 7];
    let act = analyze(&net, &probs, TransitionModel::StaticCmos);
    let d = decompose_network(
        &net,
        &DecompOptions {
            style: DecompStyle::MinPower,
            model: TransitionModel::StaticCmos,
            pi_probs: Some(probs.clone()),
            required_time: None,
            use_correlations: false,
        },
    );
    let act_d = analyze(&d.network, &probs, TransitionModel::StaticCmos);
    for id in net.logic_ids() {
        let name = net.node(id).name();
        let Some(root) = d.network.find(name) else {
            continue;
        };
        let (p0, p1) = (act.p_one(id), act_d.p_one(root));
        assert!(
            (p0 - p1).abs() < 1e-9,
            "node {name}: original P={p0} vs decomposed P={p1}"
        );
    }
}

#[test]
fn exact_joints_respect_frechet_bounds() {
    let net = random_network(&RandomNetConfig {
        inputs: 6,
        outputs: 3,
        nodes: 15,
        max_fanin: 3,
        seed: 11,
    });
    let probs = vec![0.5; 6];
    let mut bdds = NetworkBdds::build(&net, &probs);
    let ids: Vec<_> = net.logic_ids().collect();
    for &a in ids.iter().take(6) {
        for &b in ids.iter().take(6) {
            if a == b {
                continue;
            }
            let j = bdds.joint(a, b);
            let (pa, pb) = (bdds.p_one(a), bdds.p_one(b));
            assert!(j <= pa.min(pb) + 1e-9, "joint above Fréchet upper bound");
            assert!(
                j >= (pa + pb - 1.0).max(0.0) - 1e-9,
                "joint below lower bound"
            );
        }
    }
}

#[test]
fn domino_activity_is_phase_asymmetric() {
    let net = random_network(&RandomNetConfig {
        inputs: 6,
        outputs: 2,
        nodes: 12,
        max_fanin: 3,
        seed: 23,
    });
    let probs = vec![0.3; 6];
    let p = analyze(&net, &probs, TransitionModel::DominoP);
    let n = analyze(&net, &probs, TransitionModel::DominoN);
    for id in net.logic_ids() {
        let sum = p.switching(id) + n.switching(id);
        assert!(
            (sum - 1.0).abs() < 1e-9,
            "E_p + E_n must be 1 for domino pairs"
        );
    }
}
