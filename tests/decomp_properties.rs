//! Property-based tests on the decomposition algorithms (proptest).

use activity::TransitionModel;
use lowpower::core::decomp::{
    bounded_minpower_tree, exhaustive_minpower, huffman_tree, minpower_tree, modified_huffman_tree,
    package_merge_levels, DecompObjective, GateKind,
};
use proptest::prelude::*;

fn probs(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.01f64..0.99, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 2.2: Huffman is optimal for domino p-type AND decomposition.
    #[test]
    fn huffman_optimal_domino_p_and(ps in probs(5)) {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let tree = huffman_tree(&ps, obj);
        let (best, _) = exhaustive_minpower(&ps, obj);
        prop_assert!(tree.internal_cost(obj) <= best + 1e-9);
    }

    /// Theorem 2.2 dual: n-type OR decomposition.
    #[test]
    fn huffman_optimal_domino_n_or(ps in probs(5)) {
        let obj = DecompObjective::new(TransitionModel::DominoN, GateKind::Or);
        let tree = huffman_tree(&ps, obj);
        let (best, _) = exhaustive_minpower(&ps, obj);
        prop_assert!(tree.internal_cost(obj) <= best + 1e-9);
    }

    /// The greedy can never beat the exhaustive oracle (oracle sanity).
    #[test]
    fn greedy_never_beats_oracle(ps in probs(5)) {
        let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
        let tree = modified_huffman_tree(&ps, obj);
        let (best, _) = exhaustive_minpower(&ps, obj);
        prop_assert!(tree.internal_cost(obj) >= best - 1e-9);
    }

    /// Every decomposition covers each leaf exactly once.
    #[test]
    fn trees_are_permutations(ps in probs(7)) {
        let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::Or);
        let tree = minpower_tree(&ps, obj);
        let depths = tree.leaf_depths();
        prop_assert_eq!(depths.len(), 7);
        prop_assert!(depths.iter().all(|&d| d != usize::MAX && d <= 6));
    }

    /// Bounded trees respect their bound and match Huffman when loose.
    #[test]
    fn bounded_respects_bound(ps in probs(6), tight in 0usize..2) {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let min_bound = 3; // ceil(log2 6)
        let bound = min_bound + tight;
        let tree = bounded_minpower_tree(&ps, obj, bound).expect("feasible");
        prop_assert!(tree.height() <= bound);
        let loose = bounded_minpower_tree(&ps, obj, 6).expect("feasible");
        let (best, _) = exhaustive_minpower(&ps, obj);
        prop_assert!((loose.internal_cost(obj) - best).abs() < 1e-9,
            "loose bound must recover the Huffman optimum");
    }

    /// Package-merge levels always satisfy Kraft equality and the bound.
    #[test]
    fn package_merge_kraft(ws in probs(6), extra in 0usize..3) {
        let bound = 3 + extra;
        let levels = package_merge_levels(&ws, bound).expect("feasible");
        prop_assert!(levels.iter().all(|&l| l <= bound));
        let kraft: f64 = levels.iter().map(|&l| 0.5f64.powi(l as i32)).sum();
        prop_assert!((kraft - 1.0).abs() < 1e-9);
    }

    /// Merging order never changes the root probability (product of leaf
    /// probabilities for AND trees) — only internal costs.
    #[test]
    fn root_probability_invariant(ps in probs(6)) {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let h = huffman_tree(&ps, obj);
        let g = modified_huffman_tree(&ps, obj);
        let product: f64 = ps.iter().product();
        prop_assert!((h.p_root() - product).abs() < 1e-9);
        prop_assert!((g.p_root() - product).abs() < 1e-9);
    }

    /// Static-CMOS cost symmetry: complementing all probabilities leaves
    /// every tree's switching cost unchanged for OR↔AND duality.
    #[test]
    fn static_and_or_duality(ps in probs(5)) {
        let and_obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
        let or_obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::Or);
        let qs: Vec<f64> = ps.iter().map(|p| 1.0 - p).collect();
        let (and_best, _) = exhaustive_minpower(&ps, and_obj);
        let (or_best, _) = exhaustive_minpower(&qs, or_obj);
        // AND over p and OR over 1−p are De Morgan duals: identical
        // internal switching under the static model.
        prop_assert!((and_best - or_best).abs() < 1e-9);
    }
}
