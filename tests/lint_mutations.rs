//! Mutation tests of the lint rules: every rule must fire on a
//! deliberately injected violation, and must stay silent on the clean
//! fixture the violation was injected into. Violations that the safe
//! construction APIs refuse to build are injected through the
//! `#[doc(hidden)]` raw mutators (`corrupt_*_for_test`, `raw_for_test`)
//! or by direct field mutation of the all-public result structs.

use activity::TransitionModel;
use genlib::{Expr, Gate, Library, Pin};
use lint::{
    lint_activity_slices, lint_curve, lint_decomposed, lint_library, lint_mapped, lint_network,
    LintConfig, LintReport,
};
use lowpower::core::decomp::DecomposedNetwork;
use lowpower::core::map::mapper::{MappedInstance, MappedNetwork, NetRef};
use lowpower::core::map::{Curve, Point};
use netlist::{parse_blif, Network, Sop};
use std::collections::HashMap;

fn cfg() -> LintConfig {
    LintConfig::new()
}

/// Assert `rule` fired at least once and quote the report on failure.
fn assert_fires(report: &LintReport, rule: &str) {
    assert!(
        report.by_rule(rule).count() >= 1,
        "{rule} did not fire:\n{}",
        report.render_text()
    );
}

// ---------------------------------------------------------------- networks

fn buf() -> Sop {
    Sop::parse(1, &["1"]).unwrap()
}

/// a,b,c -> x = ab -> f = x XOR c (the same clean fixture the unit tests
/// use).
fn clean_net() -> Network {
    parse_blif(
        ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
         .names x c f\n10 1\n01 1\n.end\n",
    )
    .unwrap()
    .network
}

#[test]
fn clean_network_baseline_is_clean() {
    let report = lint_network(&clean_net(), &cfg());
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn net001_fires_on_injected_cycle() {
    let mut net = Network::new("t");
    let a = net.add_input("a").unwrap();
    let x = net.add_logic("x", vec![a], buf()).unwrap();
    let y = net.add_logic("y", vec![x], buf()).unwrap();
    net.add_output("f", y);
    // Rewire x's fanin to y while keeping links symmetric, so only the
    // cycle itself is wrong: x <-> y.
    net.corrupt_function_for_test(x, vec![y], buf());
    net.corrupt_fanouts_for_test(a, vec![]);
    net.corrupt_fanouts_for_test(y, vec![x]);
    let report = lint_network(&net, &cfg());
    assert_fires(&report, "NET001");
    assert!(report.has_errors());
    let diag = report.by_rule("NET001").next().unwrap();
    assert!(
        diag.message.contains("->"),
        "cycle path not named: {}",
        diag.message
    );
}

#[test]
fn net002_fires_on_missing_fanout_edge() {
    let mut net = clean_net();
    let a = net.find("a").unwrap();
    net.corrupt_fanouts_for_test(a, vec![]); // a drives x, but says it doesn't
    let report = lint_network(&net, &cfg());
    assert_fires(&report, "NET002");
    assert!(report.has_errors());
}

#[test]
fn net003_fires_on_duplicate_fanin() {
    let mut net = clean_net();
    let a = net.find("a").unwrap();
    let x = net.find("x").unwrap();
    // add_logic would merge the duplicate; the raw mutator does not.
    net.corrupt_function_for_test(x, vec![a, a], Sop::parse(2, &["11"]).unwrap());
    let report = lint_network(&net, &cfg());
    assert_fires(&report, "NET003");
    assert!(report.has_errors());
}

#[test]
fn net004_fires_on_dangling_node() {
    let mut net = clean_net();
    let a = net.find("a").unwrap();
    net.add_logic("stray", vec![a], buf()).unwrap();
    assert_fires(&lint_network(&net, &cfg()), "NET004");
}

#[test]
fn net005_fires_on_non_minimal_cover() {
    let mut net = clean_net();
    let x = net.find("x").unwrap();
    let fanins = net.node(x).fanins().to_vec();
    // Two identical cubes: containment removal would drop one.
    net.corrupt_function_for_test(x, fanins, Sop::parse(2, &["11", "11"]).unwrap());
    assert_fires(&lint_network(&net, &cfg()), "NET005");
}

#[test]
fn net006_fires_on_unreachable_logic() {
    let mut net = clean_net();
    let a = net.find("a").unwrap();
    let u1 = net.add_logic("u1", vec![a], buf()).unwrap();
    net.add_logic("u2", vec![u1], buf()).unwrap();
    let report = lint_network(&net, &cfg());
    // u1 drives u2, so it is not dangling — but neither reaches an output.
    assert_eq!(
        report.by_rule("NET006").count(),
        2,
        "{}",
        report.render_text()
    );
}

#[test]
fn net007_fires_on_width_mismatch() {
    let mut net = clean_net();
    let a = net.find("a").unwrap();
    let x = net.find("x").unwrap();
    net.corrupt_function_for_test(x, vec![a], Sop::parse(2, &["11"]).unwrap());
    let report = lint_network(&net, &cfg());
    assert_fires(&report, "NET007");
    assert!(report.has_errors());
}

#[test]
fn net008_fires_on_output_to_dead_node() {
    let mut net = clean_net();
    let a = net.find("a").unwrap();
    let tmp = net.add_logic("tmp", vec![a], buf()).unwrap();
    net.remove_node(tmp);
    net.add_output("ghost", tmp); // no validation on add_output
    let report = lint_network(&net, &cfg());
    assert_fires(&report, "NET008");
    assert!(report.has_errors());
}

// ------------------------------------------------------- mapped netlists

fn pin(name: &str) -> Pin {
    Pin {
        name: name.to_string(),
        input_cap: 1.0,
        max_load: 10.0,
        intrinsic: 1.0,
        drive: 1.0,
    }
}

/// Two-gate library: inv (#0) and and2 (#1), electrically sane.
fn tiny_lib() -> Library {
    let inv = Gate::raw_for_test(
        "inv".to_string(),
        1.0,
        "o".to_string(),
        vec!["a".to_string()],
        Expr::Not(Box::new(Expr::Var(0))),
        vec![pin("a")],
    );
    let and2 = Gate::raw_for_test(
        "and2".to_string(),
        2.0,
        "o".to_string(),
        vec!["a".to_string(), "b".to_string()],
        Expr::And(vec![Expr::Var(0), Expr::Var(1)]),
        vec![pin("a"), pin("b")],
    );
    Library::from_gates_for_test("tiny".to_string(), vec![inv, and2])
}

/// f = and2(a, b): one instance, fully referenced, probabilities sane.
fn clean_mapped() -> MappedNetwork {
    MappedNetwork {
        instances: vec![MappedInstance {
            name: "g0".to_string(),
            gate: 1,
            inputs: vec![NetRef::Pi(0), NetRef::Pi(1)],
            p_one: 0.25,
            source: "f".to_string(),
        }],
        pi_names: vec!["a".to_string(), "b".to_string()],
        pi_p_one: vec![0.5, 0.5],
        outputs: vec![("f".to_string(), NetRef::Inst(0))],
        estimated_fastest: 1.0,
        estimated_required: 1.0,
    }
}

#[test]
fn clean_mapped_baseline_is_clean() {
    let report = lint_mapped(&clean_mapped(), &tiny_lib(), 1.0, &cfg());
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn map001_fires_on_forward_reference() {
    let mut m = clean_mapped();
    m.instances[0].inputs[0] = NetRef::Inst(0); // self-reference
    let report = lint_mapped(&m, &tiny_lib(), 1.0, &cfg());
    assert_fires(&report, "MAP001");
    assert!(report.has_errors());
}

#[test]
fn map002_fires_on_pin_arity_mismatch() {
    let mut m = clean_mapped();
    m.instances[0].gate = 0; // inv has 1 pin, instance wires 2 inputs
    let report = lint_mapped(&m, &tiny_lib(), 1.0, &cfg());
    assert_fires(&report, "MAP002");
    assert!(report.has_errors());

    let mut m = clean_mapped();
    m.instances[0].gate = 99; // out of range
    assert_fires(&lint_mapped(&m, &tiny_lib(), 1.0, &cfg()), "MAP002");
}

#[test]
fn map003_fires_on_dead_instance() {
    let mut m = clean_mapped();
    m.instances.push(MappedInstance {
        name: "g1".to_string(),
        gate: 0,
        inputs: vec![NetRef::Pi(0)],
        p_one: 0.5,
        source: "g1".to_string(),
    }); // drives nothing
    assert_fires(&lint_mapped(&m, &tiny_lib(), 1.0, &cfg()), "MAP003");
}

#[test]
fn map004_fires_on_bad_probability() {
    let mut m = clean_mapped();
    m.pi_p_one[0] = 1.5;
    let report = lint_mapped(&m, &tiny_lib(), 1.0, &cfg());
    assert_fires(&report, "MAP004");
    assert!(report.has_errors());

    let mut m = clean_mapped();
    m.instances[0].p_one = f64::NAN;
    assert_fires(&lint_mapped(&m, &tiny_lib(), 1.0, &cfg()), "MAP004");
}

#[test]
fn map005_fires_on_overload() {
    // max_load is 10.0; a 100.0 primary-output load breaks the rating.
    let report = lint_mapped(&clean_mapped(), &tiny_lib(), 100.0, &cfg());
    assert_fires(&report, "MAP005");
}

#[test]
fn map006_fires_on_duplicate_net_name() {
    let mut m = clean_mapped();
    m.instances[0].name = "a".to_string(); // collides with PI `a`
    let report = lint_mapped(&m, &tiny_lib(), 1.0, &cfg());
    assert_fires(&report, "MAP006");
    assert!(report.has_errors());
}

// ------------------------------------------------------- decompositions

/// A hand-built, already-2-input "decomposition" with honest bookkeeping.
fn clean_decomposed() -> DecomposedNetwork {
    let mut net = Network::new("d");
    let a = net.add_input("a").unwrap();
    let b = net.add_input("b").unwrap();
    let f = net
        .add_logic("f", vec![a, b], Sop::parse(2, &["11"]).unwrap())
        .unwrap();
    net.add_output("f", f);
    let depth = netlist::traversal::depth(&net);
    DecomposedNetwork {
        network: net,
        node_heights: vec![("f".to_string(), 1, 1)],
        applied_bounds: HashMap::new(),
        depth,
        provenance: HashMap::new(),
    }
}

#[test]
fn clean_decomposed_baseline_is_clean() {
    let report = lint_decomposed(&clean_decomposed(), &cfg());
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn dec001_fires_on_wide_gate() {
    let mut net = Network::new("d");
    let a = net.add_input("a").unwrap();
    let b = net.add_input("b").unwrap();
    let c = net.add_input("c").unwrap();
    let f = net
        .add_logic("f", vec![a, b, c], Sop::parse(3, &["111"]).unwrap())
        .unwrap();
    net.add_output("f", f);
    let depth = netlist::traversal::depth(&net);
    let decomp = DecomposedNetwork {
        network: net,
        node_heights: vec![],
        applied_bounds: HashMap::new(),
        depth,
        provenance: HashMap::new(),
    };
    let report = lint_decomposed(&decomp, &cfg());
    assert_fires(&report, "DEC001");
    assert!(report.has_errors());
}

#[test]
fn dec002_fires_on_violated_bound() {
    let mut d = clean_decomposed();
    d.node_heights = vec![("f".to_string(), 5, 5)];
    d.applied_bounds.insert("f".to_string(), 2);
    assert_fires(&lint_decomposed(&d, &cfg()), "DEC002");
}

#[test]
fn dec003_fires_on_stale_depth() {
    let mut d = clean_decomposed();
    d.depth += 7;
    let report = lint_decomposed(&d, &cfg());
    assert_fires(&report, "DEC003");
    assert!(report.has_errors());
}

// ---------------------------------------------------------------- curves

fn point(arrival: f64, cost: f64) -> Point {
    Point {
        arrival,
        cost,
        drive: 0.1,
        gate: None,
        inputs: vec![],
    }
}

#[test]
fn clean_curve_baseline_is_clean() {
    let mut c = Curve::new();
    c.push(point(1.0, 5.0));
    c.push(point(2.0, 3.0));
    let report = lint_curve(&c, &cfg());
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn crv001_fires_on_non_increasing_arrival() {
    let mut c = Curve::new(); // bypass push()'s dominance pruning
    c.push_unpruned_for_test(point(2.0, 5.0));
    c.push_unpruned_for_test(point(2.0, 3.0));
    let report = lint_curve(&c, &cfg());
    assert_fires(&report, "CRV001");
    assert!(report.has_errors());
}

#[test]
fn crv002_fires_on_dominated_point() {
    let mut c = Curve::new();
    c.push_unpruned_for_test(point(1.0, 5.0));
    c.push_unpruned_for_test(point(2.0, 5.0)); // slower and no cheaper: dominated
    let report = lint_curve(&c, &cfg());
    assert_fires(&report, "CRV002");
    assert!(report.has_errors());
}

#[test]
fn crv003_fires_on_non_finite_point() {
    let mut c = Curve::new();
    c.push_unpruned_for_test(point(f64::NAN, 5.0));
    let report = lint_curve(&c, &cfg());
    assert_fires(&report, "CRV003");
    assert!(report.has_errors());
}

// ------------------------------------------------------------- libraries

#[test]
fn clean_library_baseline_is_clean() {
    let report = lint_library(&tiny_lib(), &cfg());
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn lib001_fires_on_pin_count_mismatch() {
    let bad = Gate::raw_for_test(
        "and2".to_string(),
        2.0,
        "o".to_string(),
        vec!["a".to_string(), "b".to_string()],
        Expr::And(vec![Expr::Var(0), Expr::Var(1)]),
        vec![pin("a")], // one pin record for two inputs
    );
    let lib = Library::from_gates_for_test("bad".to_string(), vec![bad]);
    let report = lint_library(&lib, &cfg());
    assert_fires(&report, "LIB001");
    assert!(report.has_errors());

    let oob = Gate::raw_for_test(
        "buf".to_string(),
        1.0,
        "o".to_string(),
        vec!["a".to_string()],
        Expr::Var(3), // references input 3 of 1
        vec![pin("a")],
    );
    let lib = Library::from_gates_for_test("bad2".to_string(), vec![oob]);
    assert_fires(&lint_library(&lib, &cfg()), "LIB001");
}

#[test]
fn lib002_fires_on_negative_electricals() {
    let mut p = pin("a");
    p.input_cap = -1.0;
    let bad = Gate::raw_for_test(
        "inv".to_string(),
        1.0,
        "o".to_string(),
        vec!["a".to_string()],
        Expr::Not(Box::new(Expr::Var(0))),
        vec![p],
    );
    let lib = Library::from_gates_for_test("bad".to_string(), vec![bad]);
    let report = lint_library(&lib, &cfg());
    assert_fires(&report, "LIB002");
    assert!(report.has_errors());
}

#[test]
fn lib003_fires_on_missing_inverter() {
    let and2 = Gate::raw_for_test(
        "and2".to_string(),
        2.0,
        "o".to_string(),
        vec!["a".to_string(), "b".to_string()],
        Expr::And(vec![Expr::Var(0), Expr::Var(1)]),
        vec![pin("a"), pin("b")],
    );
    let lib = Library::from_gates_for_test("noinv".to_string(), vec![and2]);
    assert_fires(&lint_library(&lib, &cfg()), "LIB003");
}

// -------------------------------------------------------------- activity

#[test]
fn clean_activity_baseline_is_clean() {
    let report = lint_activity_slices(
        &[0.0, 0.25, 0.5, 1.0],
        &[0.0, 0.375, 0.5, 0.0],
        TransitionModel::StaticCmos,
        &cfg(),
    );
    assert!(report.is_clean(), "{}", report.render_text());
}

#[test]
fn act001_fires_on_bad_probability() {
    let report = lint_activity_slices(&[1.5], &[0.0], TransitionModel::StaticCmos, &cfg());
    assert_fires(&report, "ACT001");
    assert!(report.has_errors());
    // ACT002's bound is meaningless for an invalid p; it must stay silent.
    assert_eq!(report.by_rule("ACT002").count(), 0);
}

#[test]
fn act002_fires_on_activity_above_model_bound() {
    // Static CMOS caps switching at 2p(1-p) = 0.5 for p = 0.5.
    let report = lint_activity_slices(&[0.5], &[0.9], TransitionModel::StaticCmos, &cfg());
    assert_fires(&report, "ACT002");
    assert!(report.has_errors());

    // A domino n-type gate with p = 0.8 toggles at most 1 - p = 0.2.
    let report = lint_activity_slices(&[0.8], &[0.5], TransitionModel::DominoN, &cfg());
    assert_fires(&report, "ACT002");

    // Mismatched slice lengths are also an ACT002 finding.
    let report = lint_activity_slices(&[0.5, 0.5], &[0.3], TransitionModel::StaticCmos, &cfg());
    assert_fires(&report, "ACT002");
}
