//! BLIF reading and writing.
//!
//! Supports the combinational subset: `.model`, `.inputs`, `.outputs`,
//! `.names` (with PLA cover rows), `.end`, comments (`#`) and line
//! continuations (`\`). `.latch` lines are accepted by treating the latch
//! output as a primary input and the latch input as a primary output (the
//! usual combinational-core extraction for ISCAS-89 style circuits); the
//! conversion is reported in the parse result.

use crate::cube::Cube;
use crate::network::{Network, NetworkError, NodeId};
use crate::sop::Sop;
use std::collections::HashMap;
use std::fmt;

/// Error raised while parsing BLIF text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based source line.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blif parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseBlifError {}

impl From<NetworkError> for ParseBlifError {
    fn from(e: NetworkError) -> Self {
        ParseBlifError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Result of parsing a BLIF model.
#[derive(Debug)]
pub struct BlifModel {
    /// The combinational network.
    pub network: Network,
    /// Latch (output, input) signal names converted to PI/PO pairs.
    pub latches: Vec<(String, String)>,
}

/// Parse a single BLIF model from text.
///
/// # Errors
/// Returns a [`ParseBlifError`] describing the first syntactic or structural
/// problem encountered.
pub fn parse_blif(text: &str) -> Result<BlifModel, ParseBlifError> {
    // Phase 1: logical lines (joined continuations, stripped comments).
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let without_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let mut part = without_comment.trim_end().to_string();
        let continued = part.ends_with('\\');
        if continued {
            part.pop();
        }
        if pending.is_empty() {
            pending_line = line_no;
        }
        pending.push_str(&part);
        pending.push(' ');
        if !continued {
            let logical = pending.trim().to_string();
            if !logical.is_empty() {
                lines.push((pending_line, logical));
            }
            pending.clear();
        }
    }
    if !pending.trim().is_empty() {
        lines.push((pending_line, pending.trim().to_string()));
    }

    // Phase 2: gather declarations and .names blocks by name.
    let mut model_name = String::from("unnamed");
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<String> = Vec::new();
    let mut latches: Vec<(String, String)> = Vec::new();
    struct NamesBlock {
        line: usize,
        signals: Vec<String>,
        rows: Vec<(Cube, bool)>,
    }
    let mut blocks: Vec<NamesBlock> = Vec::new();
    let mut current: Option<NamesBlock> = None;

    let err = |line: usize, message: String| ParseBlifError { line, message };

    for (line_no, line) in &lines {
        let line_no = *line_no;
        let mut tokens = line.split_whitespace();
        let head = tokens.next().expect("non-empty logical line");
        if head.starts_with('.') {
            if let Some(b) = current.take() {
                blocks.push(b);
            }
        }
        match head {
            ".model" => {
                if let Some(n) = tokens.next() {
                    model_name = n.to_string();
                }
            }
            ".inputs" => input_names.extend(tokens.map(str::to_string)),
            ".outputs" => output_names.extend(tokens.map(str::to_string)),
            ".names" => {
                let signals: Vec<String> = tokens.map(str::to_string).collect();
                if signals.is_empty() {
                    return Err(err(line_no, ".names with no signals".into()));
                }
                current = Some(NamesBlock {
                    line: line_no,
                    signals,
                    rows: Vec::new(),
                });
            }
            ".latch" => {
                let toks: Vec<&str> = tokens.collect();
                if toks.len() < 2 {
                    return Err(err(line_no, ".latch needs input and output".into()));
                }
                latches.push((toks[1].to_string(), toks[0].to_string()));
            }
            ".end" => break,
            ".exdc"
            | ".clock"
            | ".wire_load_slope"
            | ".default_input_arrival"
            | ".default_output_required" => { /* ignored */ }
            _ if head.starts_with('.') => {
                return Err(err(line_no, format!("unsupported construct `{head}`")));
            }
            _ => {
                // Cover row inside a .names block.
                let block = current
                    .as_mut()
                    .ok_or_else(|| err(line_no, format!("cover row `{line}` outside .names")))?;
                let width = block.signals.len() - 1;
                let (in_part, out_part) = if width == 0 {
                    (String::new(), head.to_string())
                } else {
                    let rest: Vec<&str> = tokens.collect();
                    if rest.len() != 1 {
                        return Err(err(line_no, format!("malformed cover row `{line}`")));
                    }
                    (head.to_string(), rest[0].to_string())
                };
                if in_part.len() != width {
                    return Err(err(
                        line_no,
                        format!("cover row width {} != {} inputs", in_part.len(), width),
                    ));
                }
                let cube = Cube::parse(&in_part)
                    .ok_or_else(|| err(line_no, format!("bad cube `{in_part}`")))?;
                let phase = match out_part.as_str() {
                    "1" => true,
                    "0" => false,
                    _ => return Err(err(line_no, format!("bad output value `{out_part}`"))),
                };
                block.rows.push((cube, phase));
            }
        }
    }
    if let Some(b) = current.take() {
        blocks.push(b);
    }

    // Phase 3: build the network. Latch outputs become PIs, latch inputs POs.
    let mut net = Network::new(model_name);
    let mut ids: HashMap<String, NodeId> = HashMap::new();
    for name in &input_names {
        let id = net.add_input(name.clone())?;
        ids.insert(name.clone(), id);
    }
    for (lo, _li) in &latches {
        if !ids.contains_key(lo) {
            let id = net.add_input(lo.clone())?;
            ids.insert(lo.clone(), id);
        }
    }

    // Topological insertion: defer blocks whose fanins are not yet present.
    let mut remaining: Vec<&NamesBlock> = blocks.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|b| {
            let out = b.signals.last().expect("signals non-empty");
            let fanin_names = &b.signals[..b.signals.len() - 1];
            if !fanin_names.iter().all(|n| ids.contains_key(n)) {
                return true; // keep for a later pass
            }
            let fanins: Vec<NodeId> = fanin_names.iter().map(|n| ids[n]).collect();
            let width = fanins.len();
            // Off-set rows mean the cover lists the complement; complement it.
            let on_rows: Vec<Cube> = b
                .rows
                .iter()
                .filter(|(_, p)| *p)
                .map(|(c, _)| c.clone())
                .collect();
            let off_rows: Vec<Cube> = b
                .rows
                .iter()
                .filter(|(_, p)| !*p)
                .map(|(c, _)| c.clone())
                .collect();
            let sop = if !on_rows.is_empty() {
                Sop::from_cubes(width, on_rows)
            } else if !off_rows.is_empty() {
                Sop::from_cubes(width, off_rows).complement()
            } else {
                Sop::zero(width) // `.names x` with no rows is constant 0
            };
            match net.add_logic(out.clone(), fanins, sop) {
                Ok(id) => {
                    ids.insert(out.clone(), id);
                    false
                }
                Err(_) => true,
            }
        });
        if remaining.len() == before {
            let b = remaining[0];
            return Err(err(
                b.line,
                format!(
                    "unresolvable or duplicate signal in .names {}",
                    b.signals.join(" ")
                ),
            ));
        }
    }

    for name in &output_names {
        let id = *ids
            .get(name)
            .ok_or_else(|| err(0, format!("undefined output `{name}`")))?;
        net.add_output(name.clone(), id);
    }
    for (_, li) in &latches {
        let id = *ids
            .get(li)
            .ok_or_else(|| err(0, format!("undefined latch input `{li}`")))?;
        net.add_output(format!("{li}$next"), id);
    }
    net.check()?;
    Ok(BlifModel {
        network: net,
        latches,
    })
}

/// Serialize a network as BLIF text.
pub fn write_blif(net: &Network) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", net.name()));
    let input_names: Vec<&str> = net.inputs().iter().map(|&i| net.node(i).name()).collect();
    out.push_str(&format!(".inputs {}\n", input_names.join(" ")));
    let output_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    out.push_str(&format!(".outputs {}\n", output_names.join(" ")));
    let order = net.topo_order().expect("network must be acyclic");
    for id in order {
        let node = net.node(id);
        let Some(sop) = node.sop() else { continue };
        let fanins: Vec<&str> = node.fanins().iter().map(|&f| net.node(f).name()).collect();
        out.push_str(&format!(".names {} {}\n", fanins.join(" "), node.name()).replace("  ", " "));
        for cube in sop.cubes() {
            if cube.width() == 0 {
                out.push_str("1\n");
            } else {
                let row: String = (0..cube.width()).map(|i| cube.lit(i).to_char()).collect();
                out.push_str(&format!("{row} 1\n"));
            }
        }
    }
    // Outputs that alias a differently-named node get a buffer.
    for (name, id) in net.outputs() {
        if net.node(*id).name() != name {
            out.push_str(&format!(".names {} {name}\n1 1\n", net.node(*id).name()));
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# sample circuit
.model samp
.inputs a b c
.outputs f
.names a b g
11 1
.names g c f
1- 1
-1 1
.end
";

    #[test]
    fn parse_basic() {
        let m = parse_blif(SAMPLE).unwrap();
        let net = &m.network;
        assert_eq!(net.name(), "samp");
        assert_eq!(net.inputs().len(), 3);
        assert_eq!(net.outputs().len(), 1);
        assert_eq!(net.logic_count(), 2);
        assert_eq!(net.eval_outputs(&[true, true, false]), vec![true]);
        assert_eq!(net.eval_outputs(&[false, true, false]), vec![false]);
    }

    #[test]
    fn roundtrip_preserves_function() {
        let m = parse_blif(SAMPLE).unwrap();
        let text = write_blif(&m.network);
        let m2 = parse_blif(&text).unwrap();
        for bits in 0..8u32 {
            let pis: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.network.eval_outputs(&pis), m2.network.eval_outputs(&pis));
        }
    }

    #[test]
    fn off_set_cover_is_complemented() {
        let text = "\
.model t
.inputs a b
.outputs f
.names a b f
11 0
.end
";
        let net = parse_blif(text).unwrap().network;
        // f = !(a & b)
        assert_eq!(net.eval_outputs(&[true, true]), vec![false]);
        assert_eq!(net.eval_outputs(&[true, false]), vec![true]);
    }

    #[test]
    fn constants_parse() {
        let text = "\
.model t
.inputs a
.outputs one zero f
.names one
1
.names zero
.names a f
1 1
.end
";
        let net = parse_blif(text).unwrap().network;
        assert_eq!(net.eval_outputs(&[false]), vec![true, false, false]);
    }

    #[test]
    fn latches_become_pi_po() {
        let text = "\
.model seq
.inputs x
.outputs y
.latch w q 0
.names x q y
11 1
.names x w
0 1
.end
";
        let m = parse_blif(text).unwrap();
        assert_eq!(m.latches, vec![("q".to_string(), "w".to_string())]);
        assert_eq!(m.network.inputs().len(), 2); // x and q
        assert_eq!(m.network.outputs().len(), 2); // y and w$next
    }

    #[test]
    fn out_of_order_names_blocks() {
        let text = "\
.model t
.inputs a
.outputs f
.names g f
1 1
.names a g
0 1
.end
";
        let net = parse_blif(text).unwrap().network;
        assert_eq!(net.eval_outputs(&[false]), vec![true]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = ".model t\n.inputs a\n.outputs f\n.names a f\n1x 1\n.end\n";
        let e = parse_blif(text).unwrap_err();
        assert_eq!(e.line, 5);
    }

    #[test]
    fn continuation_lines_join() {
        let text = ".model t\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
        let net = parse_blif(text).unwrap().network;
        assert_eq!(net.inputs().len(), 2);
    }
}
