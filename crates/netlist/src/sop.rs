//! Sum-of-products covers and the Boolean operations on them.
//!
//! A [`Sop`] is a disjunction of [`Cube`]s of uniform width. The empty cover
//! of width `w` is the constant-0 function; a cover containing a tautology
//! cube is constant 1.

use crate::cube::{Cube, Lit};
use std::fmt;

/// A sum-of-products cover over a fixed number of local variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Sop {
    width: usize,
    cubes: Vec<Cube>,
}

impl Sop {
    /// The constant-0 cover of the given width.
    pub fn zero(width: usize) -> Sop {
        Sop {
            width,
            cubes: Vec::new(),
        }
    }

    /// The constant-1 cover of the given width.
    pub fn one(width: usize) -> Sop {
        Sop {
            width,
            cubes: vec![Cube::tautology(width)],
        }
    }

    /// Single-literal cover.
    pub fn literal(width: usize, pos: usize, phase: bool) -> Sop {
        Sop {
            width,
            cubes: vec![Cube::literal(width, pos, phase)],
        }
    }

    /// Build from cubes.
    ///
    /// # Panics
    /// Panics if any cube's width differs from `width`.
    pub fn from_cubes(width: usize, cubes: Vec<Cube>) -> Sop {
        for c in &cubes {
            assert_eq!(c.width(), width, "cube width mismatch in Sop");
        }
        Sop { width, cubes }
    }

    /// Parse from PLA-style rows, e.g. `Sop::parse(3, &["01-", "--1"])`.
    pub fn parse(width: usize, rows: &[&str]) -> Option<Sop> {
        let cubes = rows
            .iter()
            .map(|r| Cube::parse(r))
            .collect::<Option<Vec<_>>>()?;
        if cubes.iter().any(|c| c.width() != width) {
            return None;
        }
        Some(Sop { width, cubes })
    }

    /// Number of local variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn cube_count(&self) -> usize {
        self.cubes.len()
    }

    /// Total literal count over all cubes (the classic SIS cost measure).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// True if the cover is syntactically the constant 0 (no cubes).
    pub fn is_zero(&self) -> bool {
        self.cubes.is_empty()
    }

    /// True if the cover contains a tautology cube (sufficient, not
    /// necessary, condition for constant 1; see [`Sop::is_tautology`]).
    pub fn has_tautology_cube(&self) -> bool {
        self.cubes.iter().any(Cube::is_tautology)
    }

    /// Evaluate the cover on a full assignment of its local variables.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.eval(assignment))
    }

    /// Bit-parallel evaluation on 64 assignments at once (see
    /// [`Cube::eval_words`]): the result's bit `k` is the cover's value on
    /// the `k`-th assignment.
    pub fn eval_words(&self, assignment: &[u64]) -> u64 {
        self.cubes
            .iter()
            .fold(0u64, |acc, c| acc | c.eval_words(assignment))
    }

    /// Add a cube.
    ///
    /// # Panics
    /// Panics on width mismatch.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.width(), self.width, "cube width mismatch");
        self.cubes.push(cube);
    }

    /// Disjunction of two covers of equal width.
    pub fn or(&self, other: &Sop) -> Sop {
        assert_eq!(self.width, other.width, "sop width mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Sop {
            width: self.width,
            cubes,
        }
    }

    /// Conjunction of two covers of equal width (cross product of cubes).
    pub fn and(&self, other: &Sop) -> Sop {
        assert_eq!(self.width, other.width, "sop width mismatch");
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.and(b) {
                    cubes.push(c);
                }
            }
        }
        let mut s = Sop {
            width: self.width,
            cubes,
        };
        s.make_scc_minimal();
        s
    }

    /// Cofactor of the cover with respect to `var = phase`.
    pub fn cofactor(&self, pos: usize, phase: bool) -> Sop {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor(pos, phase))
            .collect();
        Sop {
            width: self.width,
            cubes,
        }
    }

    /// Pick a good Shannon splitting variable: the most binate one (appears
    /// in both phases), falling back to the most frequently bound one.
    /// Returns `None` when no cube binds any variable.
    pub fn binate_split_var(&self) -> Option<usize> {
        let mut pos_ct = vec![0usize; self.width];
        let mut neg_ct = vec![0usize; self.width];
        for c in &self.cubes {
            for (i, l) in c.bound_lits() {
                match l {
                    Lit::Pos => pos_ct[i] += 1,
                    Lit::Neg => neg_ct[i] += 1,
                    Lit::Free => unreachable!(),
                }
            }
        }
        (0..self.width)
            .filter(|&i| pos_ct[i] + neg_ct[i] > 0)
            .max_by_key(|&i| (pos_ct[i].min(neg_ct[i]), pos_ct[i] + neg_ct[i]))
    }

    /// Exact tautology check (unate reduction + Shannon expansion).
    pub fn is_tautology(&self) -> bool {
        if self.has_tautology_cube() {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        match self.binate_split_var() {
            None => self.has_tautology_cube(),
            Some(v) => {
                self.cofactor(v, true).is_tautology() && self.cofactor(v, false).is_tautology()
            }
        }
    }

    /// Exact complement via Shannon expansion.
    pub fn complement(&self) -> Sop {
        if self.cubes.is_empty() {
            return Sop::one(self.width);
        }
        if self.has_tautology_cube() {
            return Sop::zero(self.width);
        }
        if self.cubes.len() == 1 {
            // De Morgan on a single cube: one cube per bound literal.
            let c = &self.cubes[0];
            let cubes = c
                .bound_lits()
                .map(|(i, l)| Cube::literal(self.width, i, l == Lit::Neg))
                .collect();
            return Sop {
                width: self.width,
                cubes,
            };
        }
        let v = self
            .binate_split_var()
            .expect("non-trivial cover must bind a variable");
        let ct = self.cofactor(v, true).complement();
        let cf = self.cofactor(v, false).complement();
        let lit_t = Sop::literal(self.width, v, true);
        let lit_f = Sop::literal(self.width, v, false);
        let mut r = lit_t.and(&ct).or(&lit_f.and(&cf));
        r.make_scc_minimal();
        r
    }

    /// True if the cover covers the given cube (i.e. cube implies cover).
    /// Implemented as a tautology check of the cofactor against the cube.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        assert_eq!(cube.width(), self.width, "cube width mismatch");
        // Cofactor the cover against the cube: keep cubes compatible with it,
        // freeing positions bound by `cube`.
        let mut reduced = Vec::new();
        'outer: for c in &self.cubes {
            let mut r = c.clone();
            for (i, l) in cube.bound_lits() {
                match (r.lit(i), l) {
                    (a, b) if a == b => r.set_lit(i, Lit::Free),
                    (Lit::Free, _) => {}
                    _ => continue 'outer,
                }
            }
            reduced.push(r);
        }
        Sop {
            width: self.width,
            cubes: reduced,
        }
        .is_tautology()
    }

    /// Semantic equivalence check via two containment tests.
    pub fn equivalent(&self, other: &Sop) -> bool {
        assert_eq!(self.width, other.width, "sop width mismatch");
        self.cubes.iter().all(|c| other.covers_cube(c))
            && other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// Remove duplicate cubes and cubes single-cube-contained in another cube.
    pub fn make_scc_minimal(&mut self) {
        self.cubes.sort();
        self.cubes.dedup();
        let cubes = std::mem::take(&mut self.cubes);
        let mut keep: Vec<Cube> = Vec::with_capacity(cubes.len());
        'outer: for (i, c) in cubes.iter().enumerate() {
            for (j, d) in cubes.iter().enumerate() {
                if i != j && d.covers(c) && !(c.covers(d) && j < i) {
                    continue 'outer;
                }
            }
            keep.push(c.clone());
        }
        self.cubes = keep;
    }

    /// Phase usage per variable: `(appears positive, appears negative)`.
    pub fn phase_usage(&self) -> Vec<(bool, bool)> {
        let mut usage = vec![(false, false); self.width];
        for c in &self.cubes {
            for (i, l) in c.bound_lits() {
                match l {
                    Lit::Pos => usage[i].0 = true,
                    Lit::Neg => usage[i].1 = true,
                    Lit::Free => unreachable!(),
                }
            }
        }
        usage
    }

    /// Variables actually used by the cover (either phase).
    pub fn support(&self) -> Vec<usize> {
        self.phase_usage()
            .iter()
            .enumerate()
            .filter(|(_, &(p, n))| p || n)
            .map(|(i, _)| i)
            .collect()
    }

    /// Rewrite the cover over a narrower variable set, dropping unused
    /// positions. Returns the new cover and the kept old positions in order.
    pub fn shrink_support(&self) -> (Sop, Vec<usize>) {
        let support = self.support();
        let mut perm = vec![usize::MAX; self.width];
        for (new, &old) in support.iter().enumerate() {
            perm[old] = new;
        }
        let cubes = self
            .cubes
            .iter()
            .map(|c| {
                let mut lits = vec![Lit::Free; support.len()];
                for (i, l) in c.bound_lits() {
                    lits[perm[i]] = l;
                }
                Cube::new(lits)
            })
            .collect();
        (
            Sop {
                width: support.len(),
                cubes,
            },
            support,
        )
    }

    /// Re-index the cover through `perm` (old position -> new position) into
    /// width `new_width`. Cubes made contradictory by merging two positions
    /// with opposite phases are dropped (they covered nothing).
    pub fn remap(&self, perm: &[usize], new_width: usize) -> Sop {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.remap(perm, new_width))
            .collect();
        Sop {
            width: new_width,
            cubes,
        }
    }

    /// True if every variable appears in at most one phase across the cover.
    pub fn is_unate(&self) -> bool {
        self.phase_usage().iter().all(|&(p, n)| !(p && n))
    }
}

impl fmt::Debug for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sop[{}]{{", self.width)?;
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Sop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor2() -> Sop {
        Sop::parse(2, &["01", "10"]).unwrap()
    }

    #[test]
    fn eval_xor() {
        let f = xor2();
        assert!(!f.eval(&[false, false]));
        assert!(f.eval(&[true, false]));
        assert!(f.eval(&[false, true]));
        assert!(!f.eval(&[true, true]));
    }

    #[test]
    fn complement_is_semantic_negation() {
        let f = xor2();
        let g = f.complement();
        for a in [false, true] {
            for b in [false, true] {
                assert_eq!(f.eval(&[a, b]), !g.eval(&[a, b]));
            }
        }
    }

    #[test]
    fn tautology_checks() {
        assert!(Sop::one(3).is_tautology());
        assert!(!Sop::zero(3).is_tautology());
        assert!(!xor2().is_tautology());
        // x + !x is a tautology without containing a tautology cube.
        let f = Sop::parse(1, &["1", "0"]).unwrap();
        assert!(f.is_tautology());
        // a + !a*b + !b covers everything.
        let g = Sop::parse(2, &["1-", "01", "-0"]).unwrap();
        assert!(g.is_tautology());
    }

    #[test]
    fn and_or_semantics() {
        let a = Sop::literal(2, 0, true);
        let b = Sop::literal(2, 1, true);
        let and = a.and(&b);
        let or = a.or(&b);
        for x in [false, true] {
            for y in [false, true] {
                assert_eq!(and.eval(&[x, y]), x && y);
                assert_eq!(or.eval(&[x, y]), x || y);
            }
        }
    }

    #[test]
    fn scc_minimal_removes_contained() {
        let mut f = Sop::parse(2, &["11", "1-", "11"]).unwrap();
        f.make_scc_minimal();
        assert_eq!(f.cube_count(), 1);
        assert_eq!(f.cubes()[0].to_string(), "1-");
    }

    #[test]
    fn covers_cube_and_equivalence() {
        let f = Sop::parse(2, &["1-", "-1"]).unwrap(); // a + b
        assert!(f.covers_cube(&Cube::parse("11").unwrap()));
        assert!(f.covers_cube(&Cube::parse("10").unwrap()));
        assert!(!f.covers_cube(&Cube::parse("0-").unwrap()));
        let g = Sop::parse(2, &["-1", "10"]).unwrap(); // b + a!b == a + b
        assert!(f.equivalent(&g));
        assert!(!f.equivalent(&xor2()));
    }

    #[test]
    fn support_and_shrink() {
        let f = Sop::parse(4, &["1--1", "0--1"]).unwrap();
        assert_eq!(f.support(), vec![0, 3]);
        let (g, kept) = f.shrink_support();
        assert_eq!(kept, vec![0, 3]);
        assert_eq!(g.width(), 2);
        assert!(g.equivalent(&Sop::parse(2, &["11", "01"]).unwrap()));
    }

    #[test]
    fn unateness() {
        assert!(Sop::parse(2, &["1-", "-1"]).unwrap().is_unate());
        assert!(!xor2().is_unate());
    }

    #[test]
    fn complement_of_constants() {
        assert!(Sop::zero(2).complement().is_tautology());
        assert!(Sop::one(2).complement().is_zero());
    }
}
