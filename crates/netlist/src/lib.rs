//! Boolean networks, sum-of-products algebra and BLIF I/O.
//!
//! This crate is the structural substrate of the `lowpower` workspace: every
//! other crate (probability propagation, optimization, decomposition,
//! mapping) operates on [`Network`]s built from [`Sop`] node functions.
//!
//! # Example
//!
//! ```
//! use netlist::parse_blif;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let blif = "\
//! .model and2
//! .inputs a b
//! .outputs f
//! .names a b f
//! 11 1
//! .end
//! ";
//! let net = parse_blif(blif)?.network;
//! assert_eq!(net.eval_outputs(&[true, true]), vec![true]);
//! assert_eq!(net.eval_outputs(&[true, false]), vec![false]);
//! # Ok(())
//! # }
//! ```

pub mod blif;
pub mod cube;
pub mod network;
pub mod sop;
pub mod traversal;

pub use blif::{parse_blif, write_blif, BlifModel, ParseBlifError};
pub use cube::{Cube, Lit};
pub use network::{Network, NetworkError, Node, NodeFunc, NodeId};
pub use sop::Sop;
