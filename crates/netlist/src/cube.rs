//! Cubes: conjunctions of literals over a fixed-width variable set.
//!
//! A [`Cube`] stores one literal state per variable position. Positions are
//! local to the node whose function the cube belongs to (position `i` refers
//! to the node's `i`-th fanin).

use std::fmt;

/// State of one variable inside a cube.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Lit {
    /// Variable appears complemented (`0` in PLA notation).
    Neg,
    /// Variable appears uncomplemented (`1` in PLA notation).
    Pos,
    /// Variable does not appear (`-` in PLA notation).
    Free,
}

impl Lit {
    /// PLA character for this literal state.
    pub fn to_char(self) -> char {
        match self {
            Lit::Neg => '0',
            Lit::Pos => '1',
            Lit::Free => '-',
        }
    }

    /// Parse a PLA character (`0`, `1` or `-`).
    pub fn from_char(c: char) -> Option<Lit> {
        match c {
            '0' => Some(Lit::Neg),
            '1' => Some(Lit::Pos),
            '-' => Some(Lit::Free),
            _ => None,
        }
    }
}

/// A product term over `width` variables.
///
/// The empty-width cube represents the constant-1 function.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    lits: Vec<Lit>,
}

impl Cube {
    /// The tautology cube of the given width (all positions free).
    pub fn tautology(width: usize) -> Cube {
        Cube {
            lits: vec![Lit::Free; width],
        }
    }

    /// Build a cube from explicit literal states.
    pub fn new(lits: Vec<Lit>) -> Cube {
        Cube { lits }
    }

    /// Single-literal cube of the given width.
    ///
    /// # Panics
    /// Panics if `pos >= width`.
    pub fn literal(width: usize, pos: usize, phase: bool) -> Cube {
        assert!(pos < width, "literal position {pos} out of width {width}");
        let mut lits = vec![Lit::Free; width];
        lits[pos] = if phase { Lit::Pos } else { Lit::Neg };
        Cube { lits }
    }

    /// Parse from PLA notation, e.g. `"01-"`.
    pub fn parse(s: &str) -> Option<Cube> {
        s.chars()
            .map(Lit::from_char)
            .collect::<Option<Vec<_>>>()
            .map(|lits| Cube { lits })
    }

    /// Number of variable positions.
    pub fn width(&self) -> usize {
        self.lits.len()
    }

    /// Literal state at `pos`.
    pub fn lit(&self, pos: usize) -> Lit {
        self.lits[pos]
    }

    /// Set the literal state at `pos`.
    pub fn set_lit(&mut self, pos: usize, lit: Lit) {
        self.lits[pos] = lit;
    }

    /// Iterator over `(position, Lit)` for non-free positions.
    pub fn bound_lits(&self) -> impl Iterator<Item = (usize, Lit)> + '_ {
        self.lits
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, l)| l != Lit::Free)
    }

    /// Number of literals (non-free positions).
    pub fn literal_count(&self) -> usize {
        self.lits.iter().filter(|&&l| l != Lit::Free).count()
    }

    /// True if the cube is the tautology (no bound literal).
    pub fn is_tautology(&self) -> bool {
        self.lits.iter().all(|&l| l == Lit::Free)
    }

    /// Conjunction of two cubes; `None` if they conflict (empty intersection).
    ///
    /// # Panics
    /// Panics if widths differ.
    pub fn and(&self, other: &Cube) -> Option<Cube> {
        assert_eq!(self.width(), other.width(), "cube width mismatch");
        let mut lits = Vec::with_capacity(self.width());
        for (&a, &b) in self.lits.iter().zip(&other.lits) {
            let l = match (a, b) {
                (Lit::Free, x) | (x, Lit::Free) => x,
                (x, y) if x == y => x,
                _ => return None,
            };
            lits.push(l);
        }
        Some(Cube { lits })
    }

    /// True if `self` covers `other` (every minterm of `other` is in `self`).
    pub fn covers(&self, other: &Cube) -> bool {
        assert_eq!(self.width(), other.width(), "cube width mismatch");
        self.lits
            .iter()
            .zip(&other.lits)
            .all(|(&a, &b)| a == Lit::Free || a == b)
    }

    /// Number of positions where the cubes have opposing literals.
    pub fn distance(&self, other: &Cube) -> usize {
        assert_eq!(self.width(), other.width(), "cube width mismatch");
        self.lits
            .iter()
            .zip(&other.lits)
            .filter(|&(&a, &b)| matches!((a, b), (Lit::Pos, Lit::Neg) | (Lit::Neg, Lit::Pos)))
            .count()
    }

    /// Cofactor with respect to `var = phase`. Returns `None` if the cube
    /// vanishes under the assignment; otherwise the cube with that position
    /// freed.
    pub fn cofactor(&self, pos: usize, phase: bool) -> Option<Cube> {
        match (self.lits[pos], phase) {
            (Lit::Pos, false) | (Lit::Neg, true) => None,
            _ => {
                let mut c = self.clone();
                c.lits[pos] = Lit::Free;
                Some(c)
            }
        }
    }

    /// Evaluate the cube on a full assignment.
    pub fn eval(&self, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.width(), "assignment width mismatch");
        self.lits.iter().zip(assignment).all(|(&l, &v)| match l {
            Lit::Free => true,
            Lit::Pos => v,
            Lit::Neg => !v,
        })
    }

    /// Bit-parallel evaluation on 64 assignments at once: bit `k` of
    /// `assignment[i]` is the value of variable `i` in the `k`-th
    /// assignment, and bit `k` of the result is the cube's value there.
    ///
    /// # Panics
    /// Panics if `assignment.len()` differs from the cube width.
    pub fn eval_words(&self, assignment: &[u64]) -> u64 {
        assert_eq!(assignment.len(), self.width(), "assignment width mismatch");
        self.lits
            .iter()
            .zip(assignment)
            .fold(!0u64, |acc, (&l, &w)| match l {
                Lit::Free => acc,
                Lit::Pos => acc & w,
                Lit::Neg => acc & !w,
            })
    }

    /// Remove variable positions listed in `remove` (sorted ascending),
    /// producing a narrower cube.
    ///
    /// # Panics
    /// Panics if a removed position is bound in the cube.
    pub fn drop_positions(&self, remove: &[usize]) -> Cube {
        let mut lits = Vec::with_capacity(self.width() - remove.len());
        let mut r = 0;
        for (i, &l) in self.lits.iter().enumerate() {
            if r < remove.len() && remove[r] == i {
                assert_eq!(l, Lit::Free, "dropping bound position {i}");
                r += 1;
            } else {
                lits.push(l);
            }
        }
        Cube { lits }
    }

    /// Widen the cube by appending `extra` free positions.
    pub fn widen(&self, extra: usize) -> Cube {
        let mut lits = self.lits.clone();
        lits.extend(std::iter::repeat_n(Lit::Free, extra));
        Cube { lits }
    }

    /// Re-index the cube through `perm`, where `perm[i]` gives the new
    /// position of old variable `i`, into a cube of width `new_width`.
    ///
    /// When `perm` maps two bound positions onto one slot (fanin merging),
    /// the literals intersect: equal phases merge, opposite phases make the
    /// whole cube contradictory and `None` is returned.
    pub fn remap(&self, perm: &[usize], new_width: usize) -> Option<Cube> {
        let mut lits = vec![Lit::Free; new_width];
        for (i, &l) in self.lits.iter().enumerate() {
            if l != Lit::Free {
                let slot = &mut lits[perm[i]];
                if *slot != Lit::Free && *slot != l {
                    return None;
                }
                *slot = l;
            }
        }
        Some(Cube { lits })
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for &l in &self.lits {
            write!(f, "{}", l.to_char())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        let c = Cube::parse("01-").unwrap();
        assert_eq!(c.to_string(), "01-");
        assert_eq!(c.lit(0), Lit::Neg);
        assert_eq!(c.lit(1), Lit::Pos);
        assert_eq!(c.lit(2), Lit::Free);
        assert!(Cube::parse("01x").is_none());
    }

    #[test]
    fn and_conflict() {
        let a = Cube::parse("1-").unwrap();
        let b = Cube::parse("0-").unwrap();
        assert!(a.and(&b).is_none());
        let c = Cube::parse("-1").unwrap();
        assert_eq!(a.and(&c).unwrap().to_string(), "11");
    }

    #[test]
    fn covers_and_distance() {
        let big = Cube::parse("1--").unwrap();
        let small = Cube::parse("101").unwrap();
        assert!(big.covers(&small));
        assert!(!small.covers(&big));
        assert_eq!(
            Cube::parse("10")
                .unwrap()
                .distance(&Cube::parse("01").unwrap()),
            2
        );
        assert_eq!(
            Cube::parse("1-")
                .unwrap()
                .distance(&Cube::parse("0-").unwrap()),
            1
        );
    }

    #[test]
    fn cofactor_behaviour() {
        let c = Cube::parse("1-0").unwrap();
        assert_eq!(c.cofactor(0, true).unwrap().to_string(), "--0");
        assert!(c.cofactor(0, false).is_none());
        assert_eq!(c.cofactor(1, false).unwrap().to_string(), "1-0");
    }

    #[test]
    fn eval_matches_literals() {
        let c = Cube::parse("10-").unwrap();
        assert!(c.eval(&[true, false, true]));
        assert!(c.eval(&[true, false, false]));
        assert!(!c.eval(&[false, false, true]));
    }

    #[test]
    fn tautology_and_literal() {
        assert!(Cube::tautology(3).is_tautology());
        let l = Cube::literal(3, 1, false);
        assert_eq!(l.to_string(), "-0-");
        assert_eq!(l.literal_count(), 1);
    }

    #[test]
    fn drop_and_remap() {
        let c = Cube::parse("1--0").unwrap();
        assert_eq!(c.drop_positions(&[1, 2]).to_string(), "10");
        let r = c.remap(&[3, 2, 1, 0], 4).unwrap();
        assert_eq!(r.to_string(), "0--1");
    }

    #[test]
    fn remap_intersects_merged_positions() {
        // Identifying two positions: equal phases merge…
        let c = Cube::parse("1-1").unwrap();
        assert_eq!(c.remap(&[0, 1, 0], 2).unwrap().to_string(), "1-");
        // …opposite phases contradict (x·!x): the cube vanishes.
        let c = Cube::parse("1-0").unwrap();
        assert_eq!(c.remap(&[0, 1, 0], 2), None);
    }

    #[test]
    #[should_panic]
    fn drop_bound_position_panics() {
        Cube::parse("10").unwrap().drop_positions(&[0]);
    }
}
