//! Traversal utilities: cones, unit-delay timing, depth.
//!
//! The unit-delay model here is the one §2.3 of the paper prescribes for
//! technology decomposition: every logic node costs one level and timing is
//! measured in integer levels.

use crate::network::{Network, NodeId};

/// Transitive fanin of `roots` (including the roots), in topological order.
pub fn transitive_fanin(net: &Network, roots: &[NodeId]) -> Vec<NodeId> {
    let mut in_cone = vec![false; net.arena_len()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    for &r in roots {
        in_cone[r.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &f in net.node(id).fanins() {
            if !in_cone[f.index()] {
                in_cone[f.index()] = true;
                stack.push(f);
            }
        }
    }
    net.topo_order()
        .expect("network must be acyclic")
        .into_iter()
        .filter(|id| in_cone[id.index()])
        .collect()
}

/// Transitive fanout of `roots` (including the roots), in topological order.
pub fn transitive_fanout(net: &Network, roots: &[NodeId]) -> Vec<NodeId> {
    let mut in_cone = vec![false; net.arena_len()];
    let mut stack: Vec<NodeId> = roots.to_vec();
    for &r in roots {
        in_cone[r.index()] = true;
    }
    while let Some(id) = stack.pop() {
        for &f in net.node(id).fanouts() {
            if !in_cone[f.index()] {
                in_cone[f.index()] = true;
                stack.push(f);
            }
        }
    }
    net.topo_order()
        .expect("network must be acyclic")
        .into_iter()
        .filter(|id| in_cone[id.index()])
        .collect()
}

/// Unit-delay arrival times, indexed by [`NodeId::index`].
///
/// `pi_arrival` gives arrival times in [`Network::inputs`] order (commonly
/// all zeros). Each logic node adds one unit.
pub fn unit_arrival_times(net: &Network, pi_arrival: &[i64]) -> Vec<i64> {
    assert_eq!(
        pi_arrival.len(),
        net.inputs().len(),
        "PI arrival count mismatch"
    );
    let mut arr = vec![0i64; net.arena_len()];
    for (i, &pi) in net.inputs().iter().enumerate() {
        arr[pi.index()] = pi_arrival[i];
    }
    for id in net.topo_order().expect("acyclic") {
        let node = net.node(id);
        if !node.is_input() {
            arr[id.index()] = node
                .fanins()
                .iter()
                .map(|f| arr[f.index()])
                .max()
                .unwrap_or(0)
                + 1;
        }
    }
    arr
}

/// Unit-delay required times, indexed by [`NodeId::index`].
///
/// `po_required` gives required times in [`Network::outputs`] order. Nodes
/// that reach no output get `i64::MAX`.
pub fn unit_required_times(net: &Network, po_required: &[i64]) -> Vec<i64> {
    assert_eq!(
        po_required.len(),
        net.outputs().len(),
        "PO required count mismatch"
    );
    let mut req = vec![i64::MAX; net.arena_len()];
    for (i, (_, o)) in net.outputs().iter().enumerate() {
        req[o.index()] = req[o.index()].min(po_required[i]);
    }
    let order = net.topo_order().expect("acyclic");
    for &id in order.iter().rev() {
        let node = net.node(id);
        if node.is_input() {
            continue;
        }
        let r = req[id.index()];
        if r == i64::MAX {
            continue;
        }
        for &f in node.fanins() {
            req[f.index()] = req[f.index()].min(r - 1);
        }
    }
    req
}

/// Per-node slack = required − arrival (saturating; `i64::MAX` when the node
/// reaches no constrained output).
pub fn unit_slacks(net: &Network, pi_arrival: &[i64], po_required: &[i64]) -> Vec<i64> {
    let arr = unit_arrival_times(net, pi_arrival);
    let req = unit_required_times(net, po_required);
    arr.iter()
        .zip(&req)
        .map(|(&a, &r)| if r == i64::MAX { i64::MAX } else { r - a })
        .collect()
}

/// Network depth in logic levels (maximum unit-delay arrival at any output).
pub fn depth(net: &Network) -> i64 {
    let arr = unit_arrival_times(net, &vec![0; net.inputs().len()]);
    net.outputs()
        .iter()
        .map(|&(_, o)| arr[o.index()])
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sop::Sop;

    fn chain3() -> (Network, Vec<NodeId>) {
        // a -> n1 -> n2 -> n3 (buffers); f = n3
        let mut net = Network::new("chain");
        let a = net.add_input("a").unwrap();
        let buf = |s: &str| Sop::parse(1, &[s]).unwrap();
        let n1 = net.add_logic("n1", vec![a], buf("1")).unwrap();
        let n2 = net.add_logic("n2", vec![n1], buf("1")).unwrap();
        let n3 = net.add_logic("n3", vec![n2], buf("1")).unwrap();
        net.add_output("f", n3);
        (net, vec![a, n1, n2, n3])
    }

    #[test]
    fn arrivals_count_levels() {
        let (net, ids) = chain3();
        let arr = unit_arrival_times(&net, &[0]);
        assert_eq!(arr[ids[0].index()], 0);
        assert_eq!(arr[ids[3].index()], 3);
        assert_eq!(depth(&net), 3);
    }

    #[test]
    fn required_and_slack() {
        let (net, ids) = chain3();
        let req = unit_required_times(&net, &[5]);
        assert_eq!(req[ids[3].index()], 5);
        assert_eq!(req[ids[0].index()], 2);
        let slack = unit_slacks(&net, &[0], &[3]);
        for id in &ids {
            assert_eq!(slack[id.index()], 0);
        }
        let slack = unit_slacks(&net, &[0], &[2]);
        assert!(slack.iter().take(4).all(|&s| s == -1));
    }

    #[test]
    fn cones() {
        // diamond: f = g(a) & h(a)
        let mut net = Network::new("d");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let g = net
            .add_logic("g", vec![a], Sop::parse(1, &["1"]).unwrap())
            .unwrap();
        let h = net
            .add_logic("h", vec![b], Sop::parse(1, &["0"]).unwrap())
            .unwrap();
        let f = net
            .add_logic("f", vec![g, h], Sop::parse(2, &["11"]).unwrap())
            .unwrap();
        net.add_output("f", f);
        let tfi = transitive_fanin(&net, &[g]);
        assert!(tfi.contains(&a) && tfi.contains(&g) && !tfi.contains(&b));
        let tfo = transitive_fanout(&net, &[a]);
        assert!(tfo.contains(&g) && tfo.contains(&f) && !tfo.contains(&h));
    }

    #[test]
    fn unconstrained_nodes_get_max_slack() {
        let mut net = Network::new("u");
        let a = net.add_input("a").unwrap();
        let f = net
            .add_logic("f", vec![a], Sop::parse(1, &["1"]).unwrap())
            .unwrap();
        let _dangling = net
            .add_logic("d", vec![a], Sop::parse(1, &["0"]).unwrap())
            .unwrap();
        net.add_output("f", f);
        let slack = unit_slacks(&net, &[0], &[10]);
        let d = net.find("d").unwrap();
        assert_eq!(slack[d.index()], i64::MAX);
    }
}
