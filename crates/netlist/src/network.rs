//! Multi-level Boolean networks.
//!
//! A [`Network`] is a DAG of named nodes. Each internal node carries a local
//! function as a [`Sop`] over its fanins; primary inputs carry no function.
//! Primary outputs are named references to nodes.

use crate::sop::Sop;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a node within one [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The raw index of the node in the network arena.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The functional content of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeFunc {
    /// Primary input: no local function.
    Input,
    /// Internal (or constant) node with a SOP over its fanins.
    Logic(Sop),
}

/// One node of a network.
#[derive(Debug, Clone)]
pub struct Node {
    name: String,
    func: NodeFunc,
    fanins: Vec<NodeId>,
    fanouts: Vec<NodeId>,
    alive: bool,
}

impl Node {
    /// Node name (unique within the network).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Local function.
    pub fn func(&self) -> &NodeFunc {
        &self.func
    }

    /// The SOP of a logic node, or `None` for a primary input.
    pub fn sop(&self) -> Option<&Sop> {
        match &self.func {
            NodeFunc::Input => None,
            NodeFunc::Logic(s) => Some(s),
        }
    }

    /// Fanin nodes, in SOP variable-position order.
    pub fn fanins(&self) -> &[NodeId] {
        &self.fanins
    }

    /// Fanout nodes (unordered, without duplicates).
    pub fn fanouts(&self) -> &[NodeId] {
        &self.fanouts
    }

    /// True for primary inputs.
    pub fn is_input(&self) -> bool {
        matches!(self.func, NodeFunc::Input)
    }

    /// Literal count of the local function (0 for inputs).
    pub fn literal_count(&self) -> usize {
        self.sop().map_or(0, Sop::literal_count)
    }
}

/// Error raised by [`Network`] construction and mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetworkError {
    /// A node name was used twice.
    DuplicateName(String),
    /// A referenced name does not exist.
    UnknownName(String),
    /// A SOP width does not match the fanin count.
    WidthMismatch {
        node: String,
        width: usize,
        fanins: usize,
    },
    /// The network contains a combinational cycle; the payload is the
    /// cycle path in fanin order, closed (first name repeated at the end).
    Cycle(Vec<String>),
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            NetworkError::UnknownName(n) => write!(f, "unknown node name `{n}`"),
            NetworkError::WidthMismatch {
                node,
                width,
                fanins,
            } => {
                write!(f, "node `{node}` has SOP width {width} but {fanins} fanins")
            }
            NetworkError::Cycle(path) if path.is_empty() => {
                write!(f, "combinational cycle detected")
            }
            NetworkError::Cycle(path) => {
                write!(f, "combinational cycle: {}", path.join(" -> "))
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A combinational multi-level Boolean network.
#[derive(Clone)]
pub struct Network {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
    by_name: HashMap<String, NodeId>,
    fresh: u64,
}

impl Network {
    /// Create an empty network with the given model name.
    pub fn new(name: impl Into<String>) -> Network {
        Network {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            by_name: HashMap::new(),
            fresh: 0,
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Set the model name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs as `(name, node)` pairs in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Access a node.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this network or the node was removed.
    pub fn node(&self, id: NodeId) -> &Node {
        let n = &self.nodes[id.index()];
        assert!(n.alive, "access to removed node {:?}", id);
        n
    }

    /// Look up a node by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.by_name.get(name).copied()
    }

    /// All live node ids (inputs and logic), in arena order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| NodeId(i as u32))
    }

    /// All live logic node ids, in arena order.
    pub fn logic_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive && !n.is_input())
            .map(|(i, _)| NodeId(i as u32))
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Number of live logic nodes.
    pub fn logic_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive && !n.is_input())
            .count()
    }

    /// Total literal count over all logic nodes.
    pub fn literal_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive)
            .map(Node::literal_count)
            .sum()
    }

    /// Size of the arena (including removed slots); valid bound for dense
    /// per-node side tables indexed by [`NodeId::index`].
    pub fn arena_len(&self) -> usize {
        self.nodes.len()
    }

    /// Add a primary input.
    ///
    /// # Errors
    /// Returns [`NetworkError::DuplicateName`] if the name exists.
    pub fn add_input(&mut self, name: impl Into<String>) -> Result<NodeId, NetworkError> {
        let name = name.into();
        let id = self.insert_node(name, NodeFunc::Input, Vec::new())?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Add a logic node with the given fanins and SOP.
    ///
    /// Duplicate fanin entries are canonically merged: the fanin list is
    /// deduplicated and the SOP is remapped onto the unique positions, with
    /// opposite-phase literals intersecting to contradictions (the cube is
    /// dropped — it covered nothing). A network therefore never stores the
    /// same fanin at two SOP positions, the construction hole behind the
    /// `Cube::remap` duplicate-pin bug.
    ///
    /// # Errors
    /// Returns an error on duplicate name or SOP/fanin width mismatch.
    pub fn add_logic(
        &mut self,
        name: impl Into<String>,
        fanins: Vec<NodeId>,
        sop: Sop,
    ) -> Result<NodeId, NetworkError> {
        let name = name.into();
        if sop.width() != fanins.len() {
            return Err(NetworkError::WidthMismatch {
                node: name,
                width: sop.width(),
                fanins: fanins.len(),
            });
        }
        let (fanins, sop) = canonicalize_function(fanins, sop);
        let id = self.insert_node(name, NodeFunc::Logic(sop), fanins.clone())?;
        for f in fanins {
            self.add_fanout(f, id);
        }
        Ok(id)
    }

    /// Declare a primary output referring to `node` under `name`.
    pub fn add_output(&mut self, name: impl Into<String>, node: NodeId) {
        self.outputs.push((name.into(), node));
    }

    /// Rename a node.
    ///
    /// # Errors
    /// Returns [`NetworkError::DuplicateName`] if the new name is taken by a
    /// different node.
    pub fn rename_node(
        &mut self,
        id: NodeId,
        new_name: impl Into<String>,
    ) -> Result<(), NetworkError> {
        let new_name = new_name.into();
        if let Some(&existing) = self.by_name.get(&new_name) {
            if existing == id {
                return Ok(());
            }
            return Err(NetworkError::DuplicateName(new_name));
        }
        let old = std::mem::replace(&mut self.nodes[id.index()].name, new_name.clone());
        self.by_name.remove(&old);
        self.by_name.insert(new_name, id);
        Ok(())
    }

    /// Generate a fresh node name with the given prefix, guaranteed unused.
    pub fn fresh_name(&mut self, prefix: &str) -> String {
        loop {
            let name = format!("{prefix}{}", self.fresh);
            self.fresh += 1;
            if !self.by_name.contains_key(&name) {
                return name;
            }
        }
    }

    fn insert_node(
        &mut self,
        name: String,
        func: NodeFunc,
        fanins: Vec<NodeId>,
    ) -> Result<NodeId, NetworkError> {
        if self.by_name.contains_key(&name) {
            return Err(NetworkError::DuplicateName(name));
        }
        let id = NodeId(self.nodes.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.nodes.push(Node {
            name,
            func,
            fanins,
            fanouts: Vec::new(),
            alive: true,
        });
        Ok(id)
    }

    fn add_fanout(&mut self, from: NodeId, to: NodeId) {
        let fo = &mut self.nodes[from.index()].fanouts;
        if !fo.contains(&to) {
            fo.push(to);
        }
    }

    fn remove_fanout(&mut self, from: NodeId, to: NodeId) {
        // Only remove if `to` no longer references `from` at all.
        if self.nodes[to.index()].fanins.contains(&from) {
            return;
        }
        self.nodes[from.index()].fanouts.retain(|&x| x != to);
    }

    /// Replace the local function (and fanins) of a logic node.
    ///
    /// Duplicate fanin entries are canonically merged exactly as in
    /// [`Network::add_logic`].
    ///
    /// # Panics
    /// Panics if the node is a primary input or if the SOP width does not
    /// match the new fanin count.
    pub fn replace_function(&mut self, id: NodeId, fanins: Vec<NodeId>, sop: Sop) {
        assert!(
            !self.node(id).is_input(),
            "cannot replace a primary input's function"
        );
        assert_eq!(
            sop.width(),
            fanins.len(),
            "SOP width must equal fanin count"
        );
        let (fanins, sop) = canonicalize_function(fanins, sop);
        let old = std::mem::take(&mut self.nodes[id.index()].fanins);
        self.nodes[id.index()].func = NodeFunc::Logic(sop);
        self.nodes[id.index()].fanins = fanins.clone();
        for f in old {
            self.remove_fanout(f, id);
        }
        for f in fanins {
            self.add_fanout(f, id);
        }
    }

    /// Redirect every use of `old` (fanins of other nodes and primary
    /// outputs) to `new`, merging duplicate fanin entries in consumers.
    ///
    /// # Panics
    /// Panics if `new` lies in the transitive fanout of `old` (would create a
    /// cycle).
    pub fn substitute(&mut self, old: NodeId, new: NodeId) {
        assert_ne!(old, new);
        assert!(
            !self.transitive_fanout_contains(old, new),
            "substitute would create a cycle"
        );
        let fanouts = self.nodes[old.index()].fanouts.clone();
        for fo in fanouts {
            let node = &self.nodes[fo.index()];
            let mut fanins = node.fanins.clone();
            let sop = node.sop().expect("fanout must be a logic node").clone();
            // Build the new fanin list: replace `old` with `new`, dedup.
            let mut new_fanins: Vec<NodeId> = Vec::with_capacity(fanins.len());
            for f in &mut fanins {
                if *f == old {
                    *f = new;
                }
            }
            for &f in &fanins {
                if !new_fanins.contains(&f) {
                    new_fanins.push(f);
                }
            }
            let perm: Vec<usize> = fanins
                .iter()
                .map(|f| {
                    new_fanins
                        .iter()
                        .position(|g| g == f)
                        .expect("fanin present")
                })
                .collect();
            let mut new_sop = sop.remap(&perm, new_fanins.len());
            new_sop.make_scc_minimal();
            self.replace_function(fo, new_fanins, new_sop);
        }
        for (_, out) in self.outputs.iter_mut() {
            if *out == old {
                *out = new;
            }
        }
    }

    fn transitive_fanout_contains(&self, from: NodeId, target: NodeId) -> bool {
        if from == target {
            return true;
        }
        let mut stack = vec![from];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(n) = stack.pop() {
            for &fo in &self.nodes[n.index()].fanouts {
                if fo == target {
                    return true;
                }
                if !seen[fo.index()] {
                    seen[fo.index()] = true;
                    stack.push(fo);
                }
            }
        }
        false
    }

    /// Remove a node that has no fanouts and is not a primary output.
    ///
    /// # Panics
    /// Panics if the node still has fanouts or is referenced by an output.
    pub fn remove_node(&mut self, id: NodeId) {
        assert!(
            self.nodes[id.index()].fanouts.is_empty(),
            "node still has fanouts"
        );
        assert!(
            !self.outputs.iter().any(|(_, o)| *o == id),
            "node is a primary output"
        );
        let fanins = std::mem::take(&mut self.nodes[id.index()].fanins);
        self.nodes[id.index()].alive = false;
        let name = self.nodes[id.index()].name.clone();
        self.by_name.remove(&name);
        self.inputs.retain(|&i| i != id);
        for f in fanins {
            self.remove_fanout(f, id);
        }
    }

    /// Remove all logic nodes not reachable from any primary output.
    /// Returns the number of nodes removed. Primary inputs are kept.
    pub fn sweep_dangling(&mut self) -> usize {
        let mut removed = 0;
        loop {
            let dead: Vec<NodeId> = self
                .logic_ids()
                .filter(|&id| {
                    self.node(id).fanouts().is_empty()
                        && !self.outputs.iter().any(|(_, o)| *o == id)
                })
                .collect();
            if dead.is_empty() {
                return removed;
            }
            for id in dead {
                self.remove_node(id);
                removed += 1;
            }
        }
    }

    /// Access a node, returning `None` for out-of-range ids and removed
    /// nodes instead of panicking. Useful for diagnostics over networks
    /// whose internal links may be corrupted.
    pub fn try_node(&self, id: NodeId) -> Option<&Node> {
        self.nodes.get(id.index()).filter(|n| n.alive)
    }

    /// Find a combinational cycle, if one exists. The returned path follows
    /// fanin edges and is closed: the first node is repeated at the end.
    ///
    /// Unlike [`Network::topo_order`], this walks fanin links only, so it
    /// reports cycles even when fanout bookkeeping is inconsistent.
    pub fn find_cycle(&self) -> Option<Vec<NodeId>> {
        // Iterative 3-color DFS: 0 = white, 1 = gray (on stack), 2 = black.
        let mut color = vec![0u8; self.nodes.len()];
        for start in self.node_ids() {
            if color[start.index()] != 0 {
                continue;
            }
            let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];
            color[start.index()] = 1;
            while let Some(&(id, next)) = stack.last() {
                let fanins = &self.nodes[id.index()].fanins;
                if next < fanins.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let f = fanins[next];
                    match self.nodes.get(f.index()) {
                        Some(n) if n.alive => {}
                        _ => continue, // dangling ref: not a cycle concern here
                    }
                    match color[f.index()] {
                        0 => {
                            color[f.index()] = 1;
                            stack.push((f, 0));
                        }
                        1 => {
                            let pos = stack
                                .iter()
                                .position(|&(x, _)| x == f)
                                .expect("gray node is on the stack");
                            let mut cycle: Vec<NodeId> =
                                stack[pos..].iter().map(|&(x, _)| x).collect();
                            // The stack runs consumer -> fanin; reverse so the
                            // path follows fanin -> consumer order.
                            cycle.reverse();
                            cycle.push(*cycle.first().expect("nonempty cycle"));
                            return Some(cycle);
                        }
                        _ => {}
                    }
                } else {
                    color[id.index()] = 2;
                    stack.pop();
                }
            }
        }
        None
    }

    /// Topological order over live nodes (inputs first). Fails on cycles.
    ///
    /// # Errors
    /// Returns [`NetworkError::Cycle`] with the full cycle path (node names
    /// in fanin order, closed) when the network is cyclic.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, NetworkError> {
        let n = self.nodes.len();
        let mut indeg = vec![0usize; n];
        let mut order = Vec::with_capacity(self.node_count());
        let mut queue = std::collections::VecDeque::new();
        for id in self.node_ids() {
            // Count unique fanins: a node may legitimately use the same
            // fanin at several SOP positions, but only one fanout edge
            // exists per (fanin, node) pair.
            let fanins = &self.node(id).fanins;
            let unique = fanins
                .iter()
                .enumerate()
                .filter(|(i, f)| !fanins[..*i].contains(f))
                .count();
            indeg[id.index()] = unique;
            if unique == 0 {
                queue.push_back(id);
            }
        }
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for &fo in &self.nodes[id.index()].fanouts {
                indeg[fo.index()] -= 1;
                if indeg[fo.index()] == 0 {
                    queue.push_back(fo);
                }
            }
        }
        if order.len() != self.node_count() {
            let path = self
                .find_cycle()
                .map(|cycle| {
                    cycle
                        .iter()
                        .map(|&id| self.nodes[id.index()].name.clone())
                        .collect()
                })
                .unwrap_or_default();
            return Err(NetworkError::Cycle(path));
        }
        Ok(order)
    }

    /// Evaluate the network on a primary-input assignment (in
    /// [`Network::inputs`] order). Returns values indexed by
    /// [`NodeId::index`] over the arena.
    ///
    /// # Panics
    /// Panics if `pi_values.len()` differs from the input count or the
    /// network is cyclic.
    pub fn eval(&self, pi_values: &[bool]) -> Vec<bool> {
        assert_eq!(
            pi_values.len(),
            self.inputs.len(),
            "PI value count mismatch"
        );
        let order = self.topo_order().expect("network must be acyclic");
        let mut values = vec![false; self.nodes.len()];
        for (i, &pi) in self.inputs.iter().enumerate() {
            values[pi.index()] = pi_values[i];
        }
        for id in order {
            let node = self.node(id);
            if let Some(sop) = node.sop() {
                let assignment: Vec<bool> = node.fanins.iter().map(|f| values[f.index()]).collect();
                values[id.index()] = sop.eval(&assignment);
            }
        }
        values
    }

    /// Evaluate only the primary outputs on a PI assignment.
    pub fn eval_outputs(&self, pi_values: &[bool]) -> Vec<bool> {
        let values = self.eval(pi_values);
        self.outputs
            .iter()
            .map(|&(_, o)| values[o.index()])
            .collect()
    }

    /// Bit-parallel evaluation of 64 PI assignments at once: bit `k` of
    /// `pi_words[i]` is the value of input `i` (in [`Network::inputs`]
    /// order) under assignment `k`. Returns per-node value words indexed by
    /// [`NodeId::index`] over the arena.
    ///
    /// This is the shared simulation kernel of the Monte-Carlo activity
    /// estimator and the `verify` equivalence checker — one network pass
    /// evaluates 64 vectors.
    ///
    /// # Panics
    /// Panics if `pi_words.len()` differs from the input count or the
    /// network is cyclic.
    pub fn eval_words(&self, pi_words: &[u64]) -> Vec<u64> {
        assert_eq!(pi_words.len(), self.inputs.len(), "PI word count mismatch");
        let order = self.topo_order().expect("network must be acyclic");
        let mut values = vec![0u64; self.nodes.len()];
        for (i, &pi) in self.inputs.iter().enumerate() {
            values[pi.index()] = pi_words[i];
        }
        let mut local = Vec::new();
        for id in order {
            let node = self.node(id);
            if let Some(sop) = node.sop() {
                local.clear();
                local.extend(node.fanins.iter().map(|f| values[f.index()]));
                values[id.index()] = sop.eval_words(&local);
            }
        }
        values
    }

    /// Bit-parallel evaluation of only the primary outputs (see
    /// [`Network::eval_words`]).
    pub fn eval_outputs_words(&self, pi_words: &[u64]) -> Vec<u64> {
        let values = self.eval_words(pi_words);
        self.outputs
            .iter()
            .map(|&(_, o)| values[o.index()])
            .collect()
    }

    /// Primary input names in declaration order.
    pub fn input_names(&self) -> Vec<&str> {
        self.inputs.iter().map(|&i| self.node(i).name()).collect()
    }

    /// Position of the named primary input in [`Network::inputs`] order.
    pub fn input_position(&self, name: &str) -> Option<usize> {
        self.inputs
            .iter()
            .position(|&i| self.node(i).name() == name)
    }

    /// Input-ordering map from `self` onto `other`: `perm[i]` is the
    /// position in `other.inputs()` of `self`'s `i`-th input, matched by
    /// name. This is the shared alignment helper used whenever two networks
    /// over the same primary inputs are compared (equivalence checking,
    /// cross-validation).
    ///
    /// # Errors
    /// Returns the name of the first input of `self` missing from `other`.
    pub fn input_alignment(&self, other: &Network) -> Result<Vec<usize>, String> {
        self.inputs
            .iter()
            .map(|&i| {
                let name = self.node(i).name();
                other.input_position(name).ok_or_else(|| name.to_string())
            })
            .collect()
    }

    /// Structural sanity check: name map, fanin/fanout symmetry, widths,
    /// acyclicity, liveness of references.
    ///
    /// # Errors
    /// Returns the first violation found.
    pub fn check(&self) -> Result<(), NetworkError> {
        for id in self.node_ids() {
            let node = self.node(id);
            if self.by_name.get(node.name()) != Some(&id) {
                return Err(NetworkError::UnknownName(node.name().to_string()));
            }
            if let Some(sop) = node.sop() {
                if sop.width() != node.fanins.len() {
                    return Err(NetworkError::WidthMismatch {
                        node: node.name().to_string(),
                        width: sop.width(),
                        fanins: node.fanins.len(),
                    });
                }
            }
            for &f in node.fanins() {
                if !self.nodes[f.index()].alive {
                    return Err(NetworkError::UnknownName(format!(
                        "dead fanin of `{}`",
                        node.name()
                    )));
                }
                if !self.nodes[f.index()].fanouts.contains(&id) {
                    return Err(NetworkError::UnknownName(format!(
                        "missing fanout edge {} -> {}",
                        self.nodes[f.index()].name,
                        node.name()
                    )));
                }
            }
            for &fo in node.fanouts() {
                if !self.nodes[fo.index()].alive || !self.nodes[fo.index()].fanins.contains(&id) {
                    return Err(NetworkError::UnknownName(format!(
                        "stale fanout edge {} -> {}",
                        node.name(),
                        self.nodes[fo.index()].name
                    )));
                }
            }
        }
        for (name, o) in &self.outputs {
            if !self.nodes[o.index()].alive {
                return Err(NetworkError::UnknownName(format!("output `{name}`")));
            }
        }
        self.topo_order().map(|_| ())
    }

    /// Overwrite a logic node's fanins and SOP with **no** bookkeeping:
    /// no width check, no duplicate-pin canonicalization, no fanout-edge
    /// maintenance. Exists solely so tests (lint mutation tests in
    /// particular) can construct invalid networks that the safe API
    /// rejects. Never call this outside test code.
    #[doc(hidden)]
    pub fn corrupt_function_for_test(&mut self, id: NodeId, fanins: Vec<NodeId>, sop: Sop) {
        let node = &mut self.nodes[id.index()];
        node.func = NodeFunc::Logic(sop);
        node.fanins = fanins;
    }

    /// Overwrite a node's fanout list with no symmetry maintenance.
    /// Companion of [`Network::corrupt_function_for_test`]; test-only.
    #[doc(hidden)]
    pub fn corrupt_fanouts_for_test(&mut self, id: NodeId, fanouts: Vec<NodeId>) {
        self.nodes[id.index()].fanouts = fanouts;
    }
}

/// Canonicalize a (fanins, SOP) pair: deduplicate the fanin list and remap
/// the cover onto the unique positions. Merged positions intersect their
/// literals per [`Cube::remap`](crate::Cube::remap) — opposite phases make
/// the cube contradictory and it is dropped. The resulting cover is made
/// single-cube-containment minimal so merged duplicates don't linger.
fn canonicalize_function(fanins: Vec<NodeId>, sop: Sop) -> (Vec<NodeId>, Sop) {
    let mut unique: Vec<NodeId> = Vec::with_capacity(fanins.len());
    let mut perm: Vec<usize> = Vec::with_capacity(fanins.len());
    let mut has_dup = false;
    for f in &fanins {
        match unique.iter().position(|g| g == f) {
            Some(p) => {
                perm.push(p);
                has_dup = true;
            }
            None => {
                perm.push(unique.len());
                unique.push(*f);
            }
        }
    }
    if !has_dup {
        return (fanins, sop);
    }
    let mut s = sop.remap(&perm, unique.len());
    s.make_scc_minimal();
    (unique, s)
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Network `{}`: {} inputs, {} outputs, {} logic nodes, {} literals",
            self.name,
            self.inputs.len(),
            self.outputs.len(),
            self.logic_count(),
            self.literal_count()
        )?;
        for id in self.node_ids() {
            let n = self.node(id);
            if let Some(sop) = n.sop() {
                let fanins: Vec<&str> = n.fanins().iter().map(|&x| self.node(x).name()).collect();
                writeln!(f, "  {} = f({}) : {}", n.name(), fanins.join(", "), sop)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sop::Sop;

    fn and_or_net() -> (Network, NodeId, NodeId, NodeId, NodeId, NodeId) {
        // f = (a & b) | c
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let b = net.add_input("b").unwrap();
        let c = net.add_input("c").unwrap();
        let g = net
            .add_logic("g", vec![a, b], Sop::parse(2, &["11"]).unwrap())
            .unwrap();
        let f = net
            .add_logic("f", vec![g, c], Sop::parse(2, &["1-", "-1"]).unwrap())
            .unwrap();
        net.add_output("f", f);
        (net, a, b, c, g, f)
    }

    #[test]
    fn build_eval_check() {
        let (net, ..) = and_or_net();
        net.check().unwrap();
        assert_eq!(net.eval_outputs(&[true, true, false]), vec![true]);
        assert_eq!(net.eval_outputs(&[true, false, false]), vec![false]);
        assert_eq!(net.eval_outputs(&[false, false, true]), vec![true]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut net = Network::new("t");
        net.add_input("a").unwrap();
        assert!(matches!(
            net.add_input("a"),
            Err(NetworkError::DuplicateName(_))
        ));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let err = net.add_logic("g", vec![a], Sop::parse(2, &["11"]).unwrap());
        assert!(matches!(err, Err(NetworkError::WidthMismatch { .. })));
    }

    #[test]
    fn topo_order_parents_first() {
        let (net, ..) = and_or_net();
        let order = net.topo_order().unwrap();
        let pos = |id: NodeId| order.iter().position(|&x| x == id).unwrap();
        for id in net.node_ids() {
            for &fi in net.node(id).fanins() {
                assert!(pos(fi) < pos(id));
            }
        }
    }

    #[test]
    fn substitute_rewires_and_stays_valid() {
        let (mut net, a, _b, c, g, f) = and_or_net();
        // Replace g by a: f becomes a | c.
        net.substitute(g, a);
        net.check().unwrap();
        assert_eq!(net.node(f).fanins(), &[a, c]);
        assert_eq!(net.eval_outputs(&[true, false, false]), vec![true]);
        assert_eq!(net.eval_outputs(&[false, false, false]), vec![false]);
        // g is now dangling.
        assert_eq!(net.sweep_dangling(), 1);
        net.check().unwrap();
    }

    #[test]
    fn substitute_merges_duplicate_fanins() {
        // f = g & c, then substitute g := c gives f = c.
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let c = net.add_input("c").unwrap();
        let g = net
            .add_logic("g", vec![a], Sop::parse(1, &["1"]).unwrap())
            .unwrap();
        let f = net
            .add_logic("f", vec![g, c], Sop::parse(2, &["11"]).unwrap())
            .unwrap();
        net.add_output("f", f);
        net.substitute(g, c);
        net.check().unwrap();
        assert_eq!(net.node(f).fanins(), &[c]);
        assert_eq!(net.eval_outputs(&[false, true]), vec![true]);
    }

    #[test]
    fn sweep_removes_chains() {
        let (mut net, _a, _b, _c, _g, f) = and_or_net();
        // Add a dangling chain.
        let x = net
            .add_logic("x", vec![f], Sop::parse(1, &["1"]).unwrap())
            .unwrap();
        let _y = net
            .add_logic("y", vec![x], Sop::parse(1, &["0"]).unwrap())
            .unwrap();
        assert_eq!(net.sweep_dangling(), 2);
        net.check().unwrap();
    }

    #[test]
    fn replace_function_updates_edges() {
        let (mut net, a, _b, c, g, _f) = and_or_net();
        net.replace_function(g, vec![c, a], Sop::parse(2, &["10"]).unwrap());
        net.check().unwrap();
        // g = c & !a
        assert_eq!(net.eval_outputs(&[false, false, true]), vec![true]);
    }

    #[test]
    fn word_eval_matches_scalar_eval() {
        let (net, ..) = and_or_net();
        // Pack all 8 assignments of (a, b, c) into one word per input.
        let mut pi_words = vec![0u64; 3];
        for bits in 0..8u64 {
            for (i, w) in pi_words.iter_mut().enumerate() {
                if bits >> i & 1 == 1 {
                    *w |= 1 << bits;
                }
            }
        }
        let words = net.eval_outputs_words(&pi_words);
        for bits in 0..8u64 {
            let pis: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            let expect = net.eval_outputs(&pis);
            assert_eq!(words[0] >> bits & 1 == 1, expect[0], "at {pis:?}");
        }
    }

    #[test]
    fn input_alignment_by_name() {
        let (net, ..) = and_or_net();
        let mut other = Network::new("perm");
        for name in ["c", "a", "b"] {
            other.add_input(name).unwrap();
        }
        let perm = net.input_alignment(&other).unwrap();
        assert_eq!(perm, vec![1, 2, 0]);
        let mut missing = Network::new("m");
        missing.add_input("a").unwrap();
        assert_eq!(net.input_alignment(&missing), Err("b".to_string()));
    }

    #[test]
    fn fresh_names_unique() {
        let mut net = Network::new("t");
        net.add_input("n0").unwrap();
        let f1 = net.fresh_name("n");
        let f2 = net.fresh_name("n");
        assert_ne!(f1, "n0");
        assert_ne!(f1, f2);
    }

    #[test]
    fn add_logic_merges_duplicate_fanins() {
        // f(a, a) with cover "11" is just a buffer of a.
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let f = net
            .add_logic("f", vec![a, a], Sop::parse(2, &["11"]).unwrap())
            .unwrap();
        net.add_output("f", f);
        net.check().unwrap();
        assert_eq!(net.node(f).fanins(), &[a]);
        assert_eq!(net.node(f).sop().unwrap().width(), 1);
        assert_eq!(net.eval_outputs(&[true]), vec![true]);
        assert_eq!(net.eval_outputs(&[false]), vec![false]);
    }

    #[test]
    fn add_logic_drops_contradictory_merged_cube() {
        // f(a, a) with cover "10" is a·!a = 0: the cube must vanish.
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let f = net
            .add_logic("f", vec![a, a], Sop::parse(2, &["10"]).unwrap())
            .unwrap();
        net.add_output("f", f);
        net.check().unwrap();
        assert_eq!(net.node(f).fanins(), &[a]);
        assert!(net.node(f).sop().unwrap().is_zero());
        assert_eq!(net.eval_outputs(&[true]), vec![false]);
        assert_eq!(net.eval_outputs(&[false]), vec![false]);
    }

    #[test]
    fn replace_function_merges_duplicate_fanins() {
        let (mut net, a, _b, _c, g, _f) = and_or_net();
        // g(a, a) = a | a — canonicalizes to a width-1 buffer.
        net.replace_function(g, vec![a, a], Sop::parse(2, &["1-", "-1"]).unwrap());
        net.check().unwrap();
        assert_eq!(net.node(g).fanins(), &[a]);
        assert_eq!(net.node(g).sop().unwrap().width(), 1);
        assert_eq!(net.eval_outputs(&[true, false, false]), vec![true]);
        assert_eq!(net.eval_outputs(&[false, false, false]), vec![false]);
    }

    #[test]
    fn cycle_error_names_full_path() {
        // Build x -> y -> x via the raw test mutator (the safe API cannot
        // create cycles since fanins must already exist).
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let x = net
            .add_logic("x", vec![a], Sop::parse(1, &["1"]).unwrap())
            .unwrap();
        let y = net
            .add_logic("y", vec![x], Sop::parse(1, &["1"]).unwrap())
            .unwrap();
        net.add_output("y", y);
        net.corrupt_function_for_test(x, vec![y], Sop::parse(1, &["1"]).unwrap());
        // Keep fanout links symmetric so only the cycle is wrong.
        net.corrupt_fanouts_for_test(a, vec![]);
        net.corrupt_fanouts_for_test(y, vec![x]);
        let err = net.topo_order().unwrap_err();
        match &err {
            NetworkError::Cycle(path) => {
                assert_eq!(path.len(), 3, "closed 2-cycle path: {path:?}");
                assert_eq!(path.first(), path.last());
                assert!(path.contains(&"x".to_string()));
                assert!(path.contains(&"y".to_string()));
            }
            other => panic!("expected Cycle, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("->"), "message shows the path: {msg}");
        // find_cycle follows fanin edges consumer-by-consumer.
        let cycle = net.find_cycle().unwrap();
        assert_eq!(cycle.first(), cycle.last());
        assert_eq!(cycle.len(), 3);
    }

    #[test]
    fn try_node_handles_dead_and_out_of_range() {
        let mut net = Network::new("t");
        let a = net.add_input("a").unwrap();
        let x = net
            .add_logic("x", vec![a], Sop::parse(1, &["1"]).unwrap())
            .unwrap();
        assert!(net.try_node(x).is_some());
        net.remove_node(x);
        assert!(net.try_node(x).is_none());
        assert!(net.try_node(NodeId(999)).is_none());
    }
}
