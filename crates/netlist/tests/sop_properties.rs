//! Property-based tests of the SOP algebra: complement, tautology,
//! containment, division-by-evaluation, support shrinking.

use netlist::{Cube, Lit, Sop};
use proptest::prelude::*;

fn arb_lit() -> impl Strategy<Value = Lit> {
    prop_oneof![Just(Lit::Neg), Just(Lit::Pos), Just(Lit::Free)]
}

fn arb_cube(width: usize) -> impl Strategy<Value = Cube> {
    proptest::collection::vec(arb_lit(), width..=width).prop_map(Cube::new)
}

fn arb_sop(width: usize) -> impl Strategy<Value = Sop> {
    proptest::collection::vec(arb_cube(width), 0..6)
        .prop_map(move |cubes| Sop::from_cubes(width, cubes))
}

const W: usize = 5;

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << W)).map(|bits| (0..W).map(|i| bits >> i & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn complement_is_semantic_negation(f in arb_sop(W)) {
        let g = f.complement();
        for a in assignments() {
            prop_assert_eq!(f.eval(&a), !g.eval(&a));
        }
    }

    #[test]
    fn double_complement_is_identity_semantically(f in arb_sop(W)) {
        let g = f.complement().complement();
        for a in assignments() {
            prop_assert_eq!(f.eval(&a), g.eval(&a));
        }
    }

    #[test]
    fn tautology_check_is_exact(f in arb_sop(W)) {
        let all_ones = assignments().all(|a| f.eval(&a));
        prop_assert_eq!(f.is_tautology(), all_ones);
    }

    #[test]
    fn scc_minimization_preserves_function(f in arb_sop(W)) {
        let mut g = f.clone();
        g.make_scc_minimal();
        prop_assert!(g.cube_count() <= f.cube_count());
        for a in assignments() {
            prop_assert_eq!(f.eval(&a), g.eval(&a));
        }
    }

    #[test]
    fn and_or_are_pointwise(f in arb_sop(W), g in arb_sop(W)) {
        let fg = f.and(&g);
        let f_or_g = f.or(&g);
        for a in assignments() {
            prop_assert_eq!(fg.eval(&a), f.eval(&a) && g.eval(&a));
            prop_assert_eq!(f_or_g.eval(&a), f.eval(&a) || g.eval(&a));
        }
    }

    #[test]
    fn covers_cube_iff_implication(f in arb_sop(W), c in arb_cube(W)) {
        let covered = f.covers_cube(&c);
        let implied = assignments().all(|a| !c.eval(&a) || f.eval(&a));
        prop_assert_eq!(covered, implied);
    }

    #[test]
    fn equivalence_is_semantic(f in arb_sop(W), g in arb_sop(W)) {
        let eq = f.equivalent(&g);
        let same = assignments().all(|a| f.eval(&a) == g.eval(&a));
        prop_assert_eq!(eq, same);
    }

    #[test]
    fn shrink_support_preserves_function(f in arb_sop(W)) {
        let (g, kept) = f.shrink_support();
        for a in assignments() {
            let reduced: Vec<bool> = kept.iter().map(|&i| a[i]).collect();
            prop_assert_eq!(f.eval(&a), g.eval(&reduced));
        }
    }

    #[test]
    fn cofactor_shannon_expansion(f in arb_sop(W), v in 0usize..W) {
        let hi = f.cofactor(v, true);
        let lo = f.cofactor(v, false);
        for a in assignments() {
            let expect = if a[v] { hi.eval(&a) } else { lo.eval(&a) };
            prop_assert_eq!(f.eval(&a), expect);
        }
    }

    #[test]
    fn cube_and_is_intersection(a in arb_cube(W), b in arb_cube(W)) {
        match a.and(&b) {
            Some(c) => {
                for x in assignments() {
                    prop_assert_eq!(c.eval(&x), a.eval(&x) && b.eval(&x));
                }
            }
            None => {
                for x in assignments() {
                    prop_assert!(!(a.eval(&x) && b.eval(&x)));
                }
            }
        }
    }
}
