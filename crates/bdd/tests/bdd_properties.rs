//! Property-based tests of the ROBDD package: canonicity, Boolean laws,
//! probability linearity and cofactor semantics on random expression trees.

use bdd::{Bdd, BddManager};
use proptest::prelude::*;

const N: usize = 5;

/// A random Boolean expression tree evaluated both ways.
#[derive(Debug, Clone)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..N).prop_map(Expr::Var);
    leaf.prop_recursive(4, 32, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
        ]
    })
}

impl Expr {
    fn eval(&self, a: &[bool]) -> bool {
        match self {
            Expr::Var(i) => a[*i],
            Expr::Not(e) => !e.eval(a),
            Expr::And(x, y) => x.eval(a) && y.eval(a),
            Expr::Or(x, y) => x.eval(a) || y.eval(a),
            Expr::Xor(x, y) => x.eval(a) ^ y.eval(a),
        }
    }

    fn build(&self, m: &mut BddManager) -> Bdd {
        match self {
            Expr::Var(i) => m.var(*i),
            Expr::Not(e) => {
                let x = e.build(m);
                m.not(x)
            }
            Expr::And(x, y) => {
                let (a, b) = (x.build(m), y.build(m));
                m.and(a, b)
            }
            Expr::Or(x, y) => {
                let (a, b) = (x.build(m), y.build(m));
                m.or(a, b)
            }
            Expr::Xor(x, y) => {
                let (a, b) = (x.build(m), y.build(m));
                m.xor(a, b)
            }
        }
    }
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << N)).map(|bits| (0..N).map(|i| bits >> i & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn bdd_matches_expression(e in arb_expr()) {
        let mut m = BddManager::new(N);
        let f = e.build(&mut m);
        for a in assignments() {
            prop_assert_eq!(m.eval(f, &a), e.eval(&a));
        }
    }

    #[test]
    fn canonicity_semantic_equality_is_pointer_equality(
        e1 in arb_expr(), e2 in arb_expr()
    ) {
        let mut m = BddManager::new(N);
        let f1 = e1.build(&mut m);
        let f2 = e2.build(&mut m);
        let same = assignments().all(|a| e1.eval(&a) == e2.eval(&a));
        prop_assert_eq!(f1 == f2, same);
    }

    #[test]
    fn probability_equals_weighted_minterm_count(
        e in arb_expr(),
        probs in proptest::collection::vec(0.0f64..1.0, N..=N)
    ) {
        let mut m = BddManager::new(N);
        let f = e.build(&mut m);
        let exact = m.probability(f, &probs);
        let mut brute = 0.0;
        for a in assignments() {
            if e.eval(&a) {
                let w: f64 = a
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| if v { probs[i] } else { 1.0 - probs[i] })
                    .product();
                brute += w;
            }
        }
        prop_assert!((exact - brute).abs() < 1e-9);
    }

    #[test]
    fn restrict_matches_semantic_cofactor(e in arb_expr(), v in 0usize..N) {
        let mut m = BddManager::new(N);
        let f = e.build(&mut m);
        let hi = m.restrict(f, v, true);
        let lo = m.restrict(f, v, false);
        for mut a in assignments() {
            a[v] = true;
            let expect_hi = e.eval(&a);
            a[v] = false;
            let expect_lo = e.eval(&a);
            prop_assert_eq!(m.eval(hi, &a), expect_hi);
            prop_assert_eq!(m.eval(lo, &a), expect_lo);
        }
    }

    #[test]
    fn shannon_recombination(e in arb_expr(), v in 0usize..N) {
        // f == ite(x_v, f_x, f_x̄)
        let mut m = BddManager::new(N);
        let f = e.build(&mut m);
        let hi = m.restrict(f, v, true);
        let lo = m.restrict(f, v, false);
        let x = m.var(v);
        let recombined = m.ite(x, hi, lo);
        prop_assert_eq!(recombined, f);
    }

    #[test]
    fn de_morgan(e1 in arb_expr(), e2 in arb_expr()) {
        let mut m = BddManager::new(N);
        let a = e1.build(&mut m);
        let b = e2.build(&mut m);
        let and_ab = m.and(a, b);
        let lhs = m.not(and_ab);
        let na = m.not(a);
        let nb = m.not(b);
        let rhs = m.or(na, nb);
        prop_assert_eq!(lhs, rhs);
    }
}
