//! A reduced ordered binary decision diagram (ROBDD) package.
//!
//! Hash-consed unique table, memoized `ite`, and the signal-probability
//! traversal of Najm (eq. 2 of the paper): for independent inputs,
//! `P(f=1) = P(x)·P(f_x) + (1−P(x))·P(f_x̄)`, evaluated by one memoized
//! depth-first sweep of the DAG.
//!
//! # Example
//!
//! ```
//! use bdd::BddManager;
//!
//! let mut m = BddManager::new(2);
//! let a = m.var(0);
//! let b = m.var(1);
//! let f = m.and(a, b);
//! // P(a·b = 1) with P(a)=0.3, P(b)=0.4
//! let p = m.probability(f, &[0.3, 0.4]);
//! assert!((p - 0.12).abs() < 1e-12);
//! ```

pub mod hash;
pub mod manager;
pub mod prob;

pub use manager::{Bdd, BddManager};
