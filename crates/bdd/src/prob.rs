//! Signal probability by linear BDD traversal (Najm; eq. 2 of the paper).

use crate::hash::FastMap;
use crate::manager::{Bdd, BddManager};

impl BddManager {
    /// Probability that `f` evaluates to 1 when variable `i` independently
    /// assumes 1 with probability `var_probs[i]`.
    ///
    /// One memoized depth-first sweep:
    /// `P(f) = P(x)·P(f_x) + (1−P(x))·P(f_x̄)` at every node.
    ///
    /// # Panics
    /// Panics if `var_probs.len()` differs from the variable count.
    pub fn probability(&self, f: Bdd, var_probs: &[f64]) -> f64 {
        assert_eq!(
            var_probs.len(),
            self.num_vars(),
            "probability vector width mismatch"
        );
        let mut memo: FastMap<Bdd, f64> = FastMap::default();
        self.prob_rec(f, var_probs, &mut memo)
    }

    fn prob_rec(&self, f: Bdd, probs: &[f64], memo: &mut FastMap<Bdd, f64>) -> f64 {
        if f == Bdd::ZERO {
            return 0.0;
        }
        if f == Bdd::ONE {
            return 1.0;
        }
        if let Some(&p) = memo.get(&f) {
            return p;
        }
        let (var, lo, hi) = self.node(f);
        let pv = probs[var as usize];
        let p = pv * self.prob_rec(hi, probs, memo) + (1.0 - pv) * self.prob_rec(lo, probs, memo);
        memo.insert(f, p);
        p
    }

    /// Joint probability `P(f=1 ∧ g=1)` under independent inputs.
    pub fn joint_probability(&mut self, f: Bdd, g: Bdd, var_probs: &[f64]) -> f64 {
        let fg = self.and(f, g);
        self.probability(fg, var_probs)
    }

    /// Conditional probability `P(f=1 | g=1)`; returns `None` when
    /// `P(g=1) = 0`.
    pub fn conditional_probability(&mut self, f: Bdd, g: Bdd, var_probs: &[f64]) -> Option<f64> {
        let pg = self.probability(g, var_probs);
        if pg == 0.0 {
            return None;
        }
        Some(self.joint_probability(f, g, var_probs) / pg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force probability by weighted truth-table enumeration.
    fn brute_prob(m: &BddManager, f: Bdd, probs: &[f64]) -> f64 {
        let n = m.num_vars();
        let mut total = 0.0;
        for bits in 0..(1u32 << n) {
            let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if m.eval(f, &a) {
                let w: f64 = a
                    .iter()
                    .enumerate()
                    .map(|(i, &v)| if v { probs[i] } else { 1.0 - probs[i] })
                    .product();
                total += w;
            }
        }
        total
    }

    #[test]
    fn and_or_probabilities() {
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        let g = m.or(a, b);
        let p = [0.3, 0.4];
        assert!((m.probability(f, &p) - 0.12).abs() < 1e-12);
        assert!((m.probability(g, &p) - (0.3 + 0.4 - 0.12)).abs() < 1e-12);
    }

    #[test]
    fn matches_brute_force_on_random_functions() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let n = 4;
            let mut m = BddManager::new(n);
            // random function from random connective tree
            let mut f = m.var(0);
            for _ in 0..6 {
                let v = m.var(rng.gen_range(0..n));
                let v = if rng.gen_bool(0.5) { m.not(v) } else { v };
                f = match rng.gen_range(0..3) {
                    0 => m.and(f, v),
                    1 => m.or(f, v),
                    _ => m.xor(f, v),
                };
            }
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..1.0)).collect();
            let exact = m.probability(f, &probs);
            let brute = brute_prob(&m, f, &probs);
            assert!(
                (exact - brute).abs() < 1e-9,
                "exact {exact} vs brute {brute}"
            );
        }
    }

    #[test]
    fn reconvergent_fanout_handled_exactly() {
        // f = a·b + a·c : naive independent multiplication at the OR would be
        // wrong; BDD traversal must give the exact value.
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let ac = m.and(a, c);
        let f = m.or(ab, ac);
        let p = [0.5, 0.5, 0.5];
        // P = P(a)·P(b+c) = 0.5 · 0.75
        assert!((m.probability(f, &p) - 0.375).abs() < 1e-12);
    }

    #[test]
    fn conditional_probability_works() {
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        let p = [0.5, 0.5];
        // P(ab=1 | a=1) = P(b) = 0.5
        let c = m.conditional_probability(f, a, &p).unwrap();
        assert!((c - 0.5).abs() < 1e-12);
        // Conditioning on an impossible event yields None.
        let zero = Bdd::ZERO;
        assert!(m.conditional_probability(f, zero, &p).is_none());
    }

    #[test]
    fn xor_probability() {
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.xor(a, b);
        let p = [0.25, 0.75];
        let expect = 0.25 * 0.25 + 0.75 * 0.75; // P(a)·P(!b) + P(!a)·P(b)
        assert!((m.probability(f, &p) - expect).abs() < 1e-12);
    }
}
