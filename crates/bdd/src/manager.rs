//! The BDD manager: unique table, `ite`, and derived Boolean operations.

use crate::hash::{FastMap, FastSet};

/// Handle to a BDD function owned by a [`BddManager`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-0 function.
    pub const ZERO: Bdd = Bdd(0);
    /// The constant-1 function.
    pub const ONE: Bdd = Bdd(1);

    /// True if this handle is a terminal (constant) node.
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: Bdd,
    hi: Bdd,
}

const TERMINAL_VAR: u32 = u32::MAX;

/// ROBDD manager with a fixed variable count and the natural variable order
/// `0 < 1 < … < n−1` (index 0 closest to the root).
#[derive(Debug, Clone)]
pub struct BddManager {
    nodes: Vec<Node>,
    unique: FastMap<(u32, Bdd, Bdd), Bdd>,
    ite_cache: FastMap<(Bdd, Bdd, Bdd), Bdd>,
    num_vars: usize,
}

impl BddManager {
    /// Create a manager over `num_vars` variables.
    pub fn new(num_vars: usize) -> BddManager {
        BddManager {
            nodes: vec![
                Node {
                    var: TERMINAL_VAR,
                    lo: Bdd::ZERO,
                    hi: Bdd::ZERO,
                },
                Node {
                    var: TERMINAL_VAR,
                    lo: Bdd::ONE,
                    hi: Bdd::ONE,
                },
            ],
            unique: FastMap::default(),
            ite_cache: FastMap::default(),
            num_vars,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Total number of live nodes (including the two terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The single-variable function `x_i`.
    ///
    /// # Panics
    /// Panics if `i >= num_vars`.
    pub fn var(&mut self, i: usize) -> Bdd {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i as u32, Bdd::ZERO, Bdd::ONE)
    }

    /// The complemented single-variable function `!x_i`.
    pub fn nvar(&mut self, i: usize) -> Bdd {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.mk(i as u32, Bdd::ONE, Bdd::ZERO)
    }

    fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        if let Some(&n) = self.unique.get(&(var, lo, hi)) {
            obs::counter!("bdd.unique.hit");
            return n;
        }
        obs::counter!("bdd.unique.miss");
        let capacity = self.unique.capacity();
        let id = Bdd(self.nodes.len() as u32);
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), id);
        if self.unique.capacity() != capacity {
            obs::counter!("bdd.unique.resize");
        }
        obs::gauge!("bdd.nodes.high_water", self.nodes.len() as u64);
        id
    }

    fn var_of(&self, f: Bdd) -> u32 {
        self.nodes[f.0 as usize].var
    }

    fn cofactors(&self, f: Bdd, var: u32) -> (Bdd, Bdd) {
        let n = self.nodes[f.0 as usize];
        if n.var == var {
            (n.lo, n.hi)
        } else {
            (f, f)
        }
    }

    /// If-then-else: `ite(f, g, h) = f·g + !f·h`. All Boolean connectives are
    /// derived from this single memoized operation.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if f == Bdd::ONE {
            return g;
        }
        if f == Bdd::ZERO {
            return h;
        }
        if g == h {
            return g;
        }
        if g == Bdd::ONE && h == Bdd::ZERO {
            return f;
        }
        if let Some(&r) = self.ite_cache.get(&(f, g, h)) {
            obs::counter!("bdd.ite.hit");
            return r;
        }
        obs::counter!("bdd.ite.miss");
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        let capacity = self.ite_cache.capacity();
        self.ite_cache.insert((f, g, h), r);
        if self.ite_cache.capacity() != capacity {
            obs::counter!("bdd.ite.resize");
        }
        r
    }

    /// Complement.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd::ZERO, Bdd::ONE)
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::ZERO)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::ONE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Cofactor of `f` with respect to `x_i = phase`.
    pub fn restrict(&mut self, f: Bdd, i: usize, phase: bool) -> Bdd {
        assert!(i < self.num_vars, "variable {i} out of range");
        self.restrict_rec(f, i as u32, phase, &mut FastMap::default())
    }

    fn restrict_rec(&mut self, f: Bdd, var: u32, phase: bool, memo: &mut FastMap<Bdd, Bdd>) -> Bdd {
        if f.is_const() || self.var_of(f) > var {
            return f;
        }
        if let Some(&r) = memo.get(&f) {
            return r;
        }
        let n = self.nodes[f.0 as usize];
        let r = if n.var == var {
            if phase {
                n.hi
            } else {
                n.lo
            }
        } else {
            let lo = self.restrict_rec(n.lo, var, phase, memo);
            let hi = self.restrict_rec(n.hi, var, phase, memo);
            self.mk(n.var, lo, hi)
        };
        memo.insert(f, r);
        r
    }

    /// Evaluate `f` on a complete variable assignment.
    pub fn eval(&self, f: Bdd, assignment: &[bool]) -> bool {
        assert_eq!(assignment.len(), self.num_vars, "assignment width mismatch");
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
        cur == Bdd::ONE
    }

    /// Number of DAG nodes reachable from `f` (excluding terminals).
    pub fn size(&self, f: Bdd) -> usize {
        let mut seen = FastSet::default();
        let mut stack = vec![f];
        while let Some(x) = stack.pop() {
            if x.is_const() || !seen.insert(x) {
                continue;
            }
            let n = self.nodes[x.0 as usize];
            stack.push(n.lo);
            stack.push(n.hi);
        }
        seen.len()
    }

    /// One satisfying assignment of `f`, as a complete `num_vars`-wide
    /// vector with unconstrained variables set to `false`. Returns `None`
    /// iff `f` is the constant-0 function.
    ///
    /// In a reduced BDD every non-`ZERO` node has a path to `ONE`, so
    /// greedily descending into any non-`ZERO` child terminates at `ONE`.
    pub fn sat_one(&self, f: Bdd) -> Option<Vec<bool>> {
        if f == Bdd::ZERO {
            return None;
        }
        let mut assignment = vec![false; self.num_vars];
        let mut cur = f;
        while !cur.is_const() {
            let n = self.nodes[cur.0 as usize];
            if n.lo == Bdd::ZERO {
                assignment[n.var as usize] = true;
                cur = n.hi;
            } else {
                cur = n.lo;
            }
        }
        Some(assignment)
    }

    pub(crate) fn node(&self, f: Bdd) -> (u32, Bdd, Bdd) {
        let n = self.nodes[f.0 as usize];
        (n.var, n.lo, n.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_check(m: &BddManager, f: Bdd, truth: impl Fn(&[bool]) -> bool) {
        let n = m.num_vars();
        for bits in 0..(1u32 << n) {
            let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(m.eval(f, &a), truth(&a), "mismatch at {a:?}");
        }
    }

    #[test]
    fn connectives_match_truth_tables() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        brute_check(&m, f, |v| (v[0] && v[1]) || v[2]);
        let g = m.xor(a, b);
        brute_check(&m, g, |v| v[0] ^ v[1]);
        let h = m.not(f);
        brute_check(&m, h, |v| !((v[0] && v[1]) || v[2]));
    }

    #[test]
    fn canonical_hash_consing() {
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let f1 = m.and(a, b);
        let f2 = {
            let na = m.not(a);
            let nb = m.not(b);
            let o = m.or(na, nb);
            m.not(o)
        };
        assert_eq!(f1, f2, "De Morgan must hash-cons to the same node");
    }

    #[test]
    fn restrict_is_cofactor() {
        let mut m = BddManager::new(2);
        let (a, b) = (m.var(0), m.var(1));
        let f = m.xor(a, b);
        let f_a1 = m.restrict(f, 0, true);
        brute_check(&m, f_a1, |v| !v[1]);
        let f_a0 = m.restrict(f, 0, false);
        brute_check(&m, f_a0, |v| v[1]);
    }

    #[test]
    fn ite_terminal_rules() {
        let mut m = BddManager::new(1);
        let a = m.var(0);
        assert_eq!(m.ite(Bdd::ONE, a, Bdd::ZERO), a);
        assert_eq!(m.ite(Bdd::ZERO, a, Bdd::ONE), Bdd::ONE);
        assert_eq!(m.ite(a, Bdd::ONE, Bdd::ZERO), a);
        assert_eq!(m.ite(a, a, a), a);
    }

    #[test]
    fn size_counts_dag_nodes() {
        let mut m = BddManager::new(3);
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let ab = m.and(a, b);
        let f = m.and(ab, c);
        assert_eq!(m.size(f), 3);
        assert_eq!(m.size(Bdd::ONE), 0);
    }

    #[test]
    fn sat_one_finds_witness() {
        let mut m = BddManager::new(3);
        let (a, b) = (m.var(0), m.var(1));
        let nb = m.not(b);
        let f = m.and(a, nb);
        let w = m.sat_one(f).unwrap();
        assert!(m.eval(f, &w));
        assert_eq!(w, vec![true, false, false]);
        assert_eq!(m.sat_one(Bdd::ZERO), None);
        assert!(m.eval(Bdd::ONE, &m.sat_one(Bdd::ONE).unwrap()));
        let g = m.xor(a, b);
        let wg = m.sat_one(g).unwrap();
        assert!(m.eval(g, &wg));
    }

    #[test]
    fn nvar_is_complemented_var() {
        let mut m = BddManager::new(1);
        let na = m.nvar(0);
        let a = m.var(0);
        let not_a = m.not(a);
        assert_eq!(na, not_a);
    }
}
