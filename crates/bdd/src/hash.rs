//! A minimal multiply-mix hasher for the manager's hot tables.
//!
//! The unique table and `ite` cache are hit on every recursion step, and
//! their keys are tiny (a few machine words). The standard library's
//! default SipHash is DoS-resistant but far too heavy for that access
//! pattern; this hasher folds each written word with one multiply and a
//! rotate, in the spirit of rustc's FxHash. Keys are attacker-controlled
//! nowhere in this workspace, so the weaker mixing is acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time multiply-mix hasher.
#[derive(Default)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0 ^ word).wrapping_mul(SEED).rotate_left(26);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.mix(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

/// `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut m: FastMap<(u32, u32, u32), u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(3), i ^ 0xAAAA), i);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u32 {
            assert_eq!(m[&(i, i.wrapping_mul(3), i ^ 0xAAAA)], i);
        }
    }

    #[test]
    fn byte_slices_hash_consistently() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FastHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_eq!(h(b"hello world"), h(b"hello world"));
        assert_ne!(h(b"hello world"), h(b"hello worle"));
    }
}
