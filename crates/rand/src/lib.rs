//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment resolves dependencies offline, so the real
//! crates.io `rand` is unavailable. This crate implements exactly the API
//! surface the workspace uses — [`Rng`] (`gen_range`, `gen_bool`),
//! [`SeedableRng`] (`seed_from_u64`, `from_seed`) and the
//! [`rngs::StdRng`] / [`rngs::SmallRng`] generator types — over a
//! xoshiro256++ core seeded through SplitMix64. The streams differ from
//! upstream `rand`'s, but every consumer in this workspace either fixes its
//! own seed (reproducibility, not a specific stream, is what matters) or
//! asserts statistical tolerances.

pub mod rngs;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from a full-width seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (the upstream
    /// convention).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(0.0..1.0)`.
    ///
    /// # Panics
    /// Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// `u64` bits → uniform `f64` in `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform integer in `[0, n)` via 128-bit widening
/// multiply (bias below `n / 2^64`, irrelevant at workspace scales).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), n: u64) -> u64 {
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::{SmallRng, StdRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2u64..=6);
            assert!((2..=6).contains(&y));
            let z = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes_are_exact() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn gen_bool_statistics() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.3).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn uniform_integer_statistics() {
        // Each of 8 buckets should receive ~1/8 of the mass.
        let mut rng = StdRng::seed_from_u64(11);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[rng.gen_range(0..8usize)] += 1;
        }
        for (i, &b) in buckets.iter().enumerate() {
            let freq = b as f64 / 80_000.0;
            assert!((freq - 0.125).abs() < 0.01, "bucket {i}: {freq}");
        }
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
