//! The concrete generators: [`StdRng`] and [`SmallRng`].
//!
//! Both wrap the same xoshiro256++ core — statistically strong, tiny state,
//! and more than adequate for Monte-Carlo estimation and test-case
//! generation. They are distinct types (as upstream) so call sites keep
//! their meaning, and their streams are decorrelated by a per-type tweak.

use crate::{RngCore, SeedableRng};

/// xoshiro256++ state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_seed_bytes(seed: [u8; 32], tweak: u64) -> Xoshiro256 {
        let mut s = [0u64; 4];
        for (i, w) in s.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
            *w = u64::from_le_bytes(b) ^ tweak.rotate_left(i as u32 * 16);
        }
        // An all-zero state is a fixed point; nudge it off.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Xoshiro256 { s }
    }

    fn next(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

macro_rules! define_rng {
    ($(#[$doc:meta])* $name:ident, $tweak:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct $name(Xoshiro256);

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: [u8; 32]) -> $name {
                $name(Xoshiro256::from_seed_bytes(seed, $tweak))
            }
        }

        impl RngCore for $name {
            fn next_u64(&mut self) -> u64 {
                self.0.next()
            }
        }
    };
}

define_rng!(
    /// The workspace's default deterministic generator (stand-in for
    /// upstream's ChaCha12-based `StdRng`).
    StdRng,
    0
);

define_rng!(
    /// Small fast generator for per-stream simulation lanes (stand-in for
    /// upstream's `SmallRng`).
    SmallRng,
    0xA5A5_5A5A_C3C3_3C3C
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_and_small_streams_differ() {
        let a: Vec<u64> = {
            let mut r = StdRng::seed_from_u64(5);
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SmallRng::seed_from_u64(5);
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = StdRng::from_seed([0; 32]);
        let xs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        assert!(xs.iter().any(|&x| x != 0));
        assert_ne!(xs[0], xs[1]);
    }
}
