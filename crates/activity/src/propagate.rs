//! Fast structural estimators from the paper's prior-work section (§1.3):
//!
//! * [`propagate_independent`] — Cirit-style signal-probability
//!   propagation: each node's output probability is computed exactly from
//!   its *local* function assuming its fanins are independent. Reconvergent
//!   fanout correlations are ignored, so the result is an approximation;
//!   the exact reference is [`crate::prob::analyze`] (global BDDs).
//! * [`transition_density`] — Najm's transition-density propagation:
//!   `D(y) = Σ_i P(∂f/∂x_i) · D(x_i)`, with the Boolean-difference
//!   probabilities evaluated exactly on the local function and fanin
//!   probabilities from the independent propagation.
//!
//! These run in time linear in the network (no BDDs) and are useful both
//! as scalable estimators and as documented baselines for how much the
//! exact analysis matters.

use netlist::{Network, Sop};

/// Maximum local support for the exact per-node enumerations. Optimized
/// networks stay far below this; wider nodes fall back to 0.5.
const MAX_LOCAL_SUPPORT: usize = 20;

/// Signal probabilities by local propagation under the fanin-independence
/// assumption. Returns `P(node = 1)` indexed by [`netlist::NodeId::index`].
///
/// # Panics
/// Panics if `pi_probs.len()` differs from the input count or the network
/// is cyclic.
pub fn propagate_independent(net: &Network, pi_probs: &[f64]) -> Vec<f64> {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "PI probability count mismatch"
    );
    let mut p = vec![0.0f64; net.arena_len()];
    for (i, &pi) in net.inputs().iter().enumerate() {
        p[pi.index()] = pi_probs[i];
    }
    for id in net.topo_order().expect("acyclic") {
        let node = net.node(id);
        let Some(sop) = node.sop() else { continue };
        let q: Vec<f64> = node.fanins().iter().map(|f| p[f.index()]).collect();
        p[id.index()] = sop_probability(sop, &q);
    }
    p
}

/// Exact probability of a SOP over independent inputs with the given
/// 1-probabilities, by Shannon expansion on the cover.
pub fn sop_probability(sop: &Sop, probs: &[f64]) -> f64 {
    assert_eq!(
        probs.len(),
        sop.width(),
        "probability per variable required"
    );
    if sop.is_zero() {
        return 0.0;
    }
    if sop.has_tautology_cube() {
        return 1.0;
    }
    if sop.width() > MAX_LOCAL_SUPPORT {
        return 0.5;
    }
    let Some(v) = sop
        .binate_split_var()
        .or_else(|| sop.support().first().copied())
    else {
        return 0.0;
    };
    let hi = sop.cofactor(v, true);
    let lo = sop.cofactor(v, false);
    probs[v] * sop_probability(&hi, probs) + (1.0 - probs[v]) * sop_probability(&lo, probs)
}

/// Najm transition densities (average transitions per cycle) at every
/// node, given densities and probabilities at the primary inputs.
///
/// For a primary input with temporally independent values and
/// `P(pi=1) = p`, the density is `2·p·(1−p)`; callers may pass measured or
/// specified densities instead.
///
/// # Panics
/// Panics on length mismatches or a cyclic network.
pub fn transition_density(net: &Network, pi_probs: &[f64], pi_densities: &[f64]) -> Vec<f64> {
    assert_eq!(
        pi_densities.len(),
        net.inputs().len(),
        "PI density count mismatch"
    );
    let p = propagate_independent(net, pi_probs);
    let mut d = vec![0.0f64; net.arena_len()];
    for (i, &pi) in net.inputs().iter().enumerate() {
        d[pi.index()] = pi_densities[i];
    }
    for id in net.topo_order().expect("acyclic") {
        let node = net.node(id);
        let Some(sop) = node.sop() else { continue };
        let fanins = node.fanins();
        let q: Vec<f64> = fanins.iter().map(|f| p[f.index()]).collect();
        let mut density = 0.0;
        for (i, f) in fanins.iter().enumerate() {
            density += boolean_difference_probability(sop, i, &q) * d[f.index()];
        }
        d[id.index()] = density;
    }
    d
}

/// `P(∂f/∂x_i = 1)` — the probability that toggling input `i` toggles the
/// output — computed exactly over independent inputs.
pub fn boolean_difference_probability(sop: &Sop, var: usize, probs: &[f64]) -> f64 {
    assert!(var < sop.width(), "variable out of range");
    let w = sop.width();
    if w > MAX_LOCAL_SUPPORT {
        return 0.5;
    }
    // Enumerate the other variables; weight by their probabilities.
    let others: Vec<usize> = (0..w).filter(|&i| i != var).collect();
    let mut total = 0.0;
    for bits in 0..(1u64 << others.len()) {
        let mut assignment = vec![false; w];
        let mut weight = 1.0;
        for (k, &o) in others.iter().enumerate() {
            let v = bits >> k & 1 == 1;
            assignment[o] = v;
            weight *= if v { probs[o] } else { 1.0 - probs[o] };
        }
        if weight == 0.0 {
            continue;
        }
        assignment[var] = true;
        let hi = sop.eval(&assignment);
        assignment[var] = false;
        let lo = sop.eval(&assignment);
        if hi != lo {
            total += weight;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::analyze;
    use crate::transition::TransitionModel;
    use netlist::parse_blif;

    #[test]
    fn tree_circuits_match_exact_analysis() {
        // No reconvergence: independent propagation is exact.
        let net = parse_blif(
            ".model t\n.inputs a b c d\n.outputs f\n.names a b x\n11 1\n\
             .names c d y\n1- 1\n-1 1\n.names x y f\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let probs = [0.3, 0.6, 0.2, 0.8];
        let exact = analyze(&net, &probs, TransitionModel::StaticCmos);
        let fast = propagate_independent(&net, &probs);
        for id in net.node_ids() {
            assert!(
                (exact.p_one(id) - fast[id.index()]).abs() < 1e-12,
                "tree node {} differs",
                net.node(id).name()
            );
        }
    }

    #[test]
    fn reconvergence_makes_naive_propagation_wrong() {
        // f = a·b + a·c: naive propagation treats the two AND outputs as
        // independent at the OR and underestimates P(f).
        let net = parse_blif(
            ".model r\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
             .names a c y\n11 1\n.names x y f\n1- 1\n-1 1\n.end\n",
        )
        .unwrap()
        .network;
        let probs = [0.5; 3];
        let exact = analyze(&net, &probs, TransitionModel::StaticCmos);
        let fast = propagate_independent(&net, &probs);
        let f = net.find("f").unwrap();
        let err = (exact.p_one(f) - fast[f.index()]).abs();
        assert!(
            err > 0.01,
            "naive propagation should be visibly wrong here ({err})"
        );
        // exact is 0.375; naive gives 0.25+0.25-0.0625 = 0.4375
        assert!((fast[f.index()] - 0.4375).abs() < 1e-12);
    }

    #[test]
    fn boolean_difference_of_and() {
        // ∂(a·b)/∂a = b, so P = P(b).
        let sop = Sop::parse(2, &["11"]).unwrap();
        let p = boolean_difference_probability(&sop, 0, &[0.3, 0.7]);
        assert!((p - 0.7).abs() < 1e-12);
    }

    #[test]
    fn boolean_difference_of_xor_is_one() {
        let sop = Sop::parse(2, &["10", "01"]).unwrap();
        for v in 0..2 {
            let p = boolean_difference_probability(&sop, v, &[0.3, 0.7]);
            assert!((p - 1.0).abs() < 1e-12, "xor always sensitizes");
        }
    }

    #[test]
    fn density_of_buffer_passes_through() {
        let net = parse_blif(".model b\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
            .unwrap()
            .network;
        let d = transition_density(&net, &[0.5], &[0.42]);
        let f = net.find("f").unwrap();
        assert!((d[f.index()] - 0.42).abs() < 1e-12);
    }

    #[test]
    fn najm_density_overestimates_and_gate() {
        // Known property: density propagation ignores simultaneous input
        // transitions, overestimating an AND of independent inputs.
        let net = parse_blif(".model a\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n")
            .unwrap()
            .network;
        let probs = [0.5, 0.5];
        let dens: Vec<f64> = probs.iter().map(|&p| 2.0 * p * (1.0 - p)).collect();
        let d = transition_density(&net, &probs, &dens);
        let f = net.find("f").unwrap();
        let exact = {
            let a = analyze(&net, &probs, TransitionModel::StaticCmos);
            a.switching(f)
        };
        assert!(
            d[f.index()] > exact,
            "najm {} vs exact {}",
            d[f.index()],
            exact
        );
        assert!((d[f.index()] - 0.5).abs() < 1e-12);
        assert!((exact - 0.375).abs() < 1e-12);
    }

    #[test]
    fn sop_probability_constants() {
        assert_eq!(sop_probability(&Sop::zero(3), &[0.5; 3]), 0.0);
        assert_eq!(sop_probability(&Sop::one(3), &[0.5; 3]), 1.0);
    }
}
