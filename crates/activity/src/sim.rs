//! Monte-Carlo switching-activity estimation by logic simulation.
//!
//! Applies independent random vectors drawn from the primary-input
//! probabilities and counts zero-delay transitions between consecutive
//! vectors. Used to cross-validate the analytic BDD numbers — under the
//! zero-delay, temporally independent model the two must agree within
//! sampling error.

use netlist::{Network, NodeId};
use rand::Rng;

/// Estimated activities from logic simulation.
#[derive(Debug, Clone)]
pub struct SimActivity {
    p_one: Vec<f64>,
    switching: Vec<f64>,
    vectors: usize,
}

impl SimActivity {
    /// Estimated `P(node = 1)`.
    pub fn p_one(&self, node: NodeId) -> f64 {
        self.p_one[node.index()]
    }

    /// Estimated transitions per cycle at the node (static CMOS model).
    pub fn switching(&self, node: NodeId) -> f64 {
        self.switching[node.index()]
    }

    /// Number of vectors simulated.
    pub fn vectors(&self) -> usize {
        self.vectors
    }
}

/// Simulate `vectors` random input vectors and estimate per-node activity.
///
/// # Panics
/// Panics if `pi_probs.len()` differs from the input count, or if
/// `vectors < 2` (at least one vector pair is needed for transitions).
pub fn simulate_activity<R: Rng>(
    net: &Network,
    pi_probs: &[f64],
    vectors: usize,
    rng: &mut R,
) -> SimActivity {
    assert_eq!(pi_probs.len(), net.inputs().len(), "PI probability count mismatch");
    assert!(vectors >= 2, "need at least two vectors");
    let arena = net.arena_len();
    let mut ones = vec![0u64; arena];
    let mut transitions = vec![0u64; arena];
    let mut prev: Option<Vec<bool>> = None;
    for _ in 0..vectors {
        let pis: Vec<bool> = pi_probs.iter().map(|&p| rng.gen_bool(p.clamp(0.0, 1.0))).collect();
        let values = net.eval(&pis);
        for id in net.node_ids() {
            if values[id.index()] {
                ones[id.index()] += 1;
            }
            if let Some(prev) = &prev {
                if prev[id.index()] != values[id.index()] {
                    transitions[id.index()] += 1;
                }
            }
        }
        prev = Some(values);
    }
    let p_one = ones.iter().map(|&c| c as f64 / vectors as f64).collect();
    let switching =
        transitions.iter().map(|&c| c as f64 / (vectors - 1) as f64).collect();
    SimActivity { p_one, switching, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::analyze;
    use crate::transition::TransitionModel;
    use netlist::parse_blif;
    use rand::SeedableRng;

    #[test]
    fn simulation_agrees_with_bdd_analysis() {
        let net = parse_blif(
            ".model r\n.inputs a b c d\n.outputs f g\n.names a b x\n11 1\n\
             .names c d y\n1- 1\n-1 1\n.names x y f\n10 1\n01 1\n.names x c g\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let probs = [0.3, 0.6, 0.5, 0.8];
        let act = analyze(&net, &probs, TransitionModel::StaticCmos);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sim = simulate_activity(&net, &probs, 60_000, &mut rng);
        for id in net.node_ids() {
            let dp = (act.p_one(id) - sim.p_one(id)).abs();
            let ds = (act.switching(id) - sim.switching(id)).abs();
            assert!(dp < 0.01, "p_one mismatch at {}: {dp}", net.node(id).name());
            assert!(ds < 0.01, "switching mismatch at {}: {ds}", net.node(id).name());
        }
    }

    #[test]
    fn deterministic_inputs_never_switch() {
        let net = parse_blif(
            ".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sim = simulate_activity(&net, &[1.0, 1.0], 100, &mut rng);
        let f = net.find("f").unwrap();
        assert_eq!(sim.p_one(f), 1.0);
        assert_eq!(sim.switching(f), 0.0);
    }

    #[test]
    #[should_panic]
    fn too_few_vectors_panics() {
        let net = parse_blif(".model t\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
            .unwrap()
            .network;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        simulate_activity(&net, &[0.5], 1, &mut rng);
    }
}
