//! Monte-Carlo switching-activity estimation by logic simulation.
//!
//! Applies independent random vectors drawn from the primary-input
//! probabilities and counts zero-delay transitions between consecutive
//! vectors. Used to cross-validate the analytic BDD numbers — under the
//! zero-delay, temporally independent model the two must agree within
//! sampling error.
//!
//! Simulation is bit-parallel: 64 vectors are packed per machine word and
//! one [`Network::eval_words`] pass evaluates all of them. The same kernel
//! (word evaluation plus [`bernoulli_word`] input generation) backs the
//! `verify` crate's random-simulation equivalence backend.

use netlist::{Network, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One 64-lane word of independent Bernoulli samples: each bit of the
/// result is 1 with probability `p` (clamped to `[0, 1]`).
///
/// `p = 0.5` takes the one-draw fast path; degenerate probabilities are
/// exact (all-ones / all-zeros), so deterministic inputs never switch.
pub fn bernoulli_word<R: Rng>(rng: &mut R, p: f64) -> u64 {
    if p >= 1.0 {
        return !0;
    }
    if p <= 0.0 {
        return 0;
    }
    if p == 0.5 {
        return rng.next_u64();
    }
    let mut w = 0u64;
    for bit in 0..64 {
        if rng.gen_bool(p) {
            w |= 1 << bit;
        }
    }
    w
}

/// Estimated activities from logic simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimActivity {
    p_one: Vec<f64>,
    switching: Vec<f64>,
    vectors: usize,
}

impl SimActivity {
    /// Estimated `P(node = 1)`.
    pub fn p_one(&self, node: NodeId) -> f64 {
        self.p_one[node.index()]
    }

    /// Estimated transitions per cycle at the node (static CMOS model).
    pub fn switching(&self, node: NodeId) -> f64 {
        self.switching[node.index()]
    }

    /// Number of vectors simulated.
    pub fn vectors(&self) -> usize {
        self.vectors
    }
}

/// Simulate `vectors` random input vectors and estimate per-node activity.
///
/// The vector sequence is packed 64 per word (bit `k` of word `w` is vector
/// `64·w + k`); transition counting follows that order, including across
/// word boundaries.
///
/// # Panics
/// Panics if `pi_probs.len()` differs from the input count, or if
/// `vectors < 2` (at least one vector pair is needed for transitions).
pub fn simulate_activity<R: Rng>(
    net: &Network,
    pi_probs: &[f64],
    vectors: usize,
    rng: &mut R,
) -> SimActivity {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "PI probability count mismatch"
    );
    assert!(vectors >= 2, "need at least two vectors");
    let arena = net.arena_len();
    let mut ones = vec![0u64; arena];
    let mut transitions = vec![0u64; arena];
    let mut last_bits = vec![0u64; arena];
    let words = vectors.div_ceil(64);
    let mut pi_words = vec![0u64; pi_probs.len()];
    for w in 0..words {
        for (word, &p) in pi_words.iter_mut().zip(pi_probs) {
            *word = bernoulli_word(rng, p.clamp(0.0, 1.0));
        }
        let values = net.eval_words(&pi_words);
        let lanes = if w + 1 == words { vectors - w * 64 } else { 64 };
        let mask = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        for id in net.node_ids() {
            let v = values[id.index()] & mask;
            ones[id.index()] += v.count_ones() as u64;
            // Transitions between adjacent lanes inside this word…
            let adjacent = (v ^ (v >> 1)) & (mask >> 1);
            transitions[id.index()] += adjacent.count_ones() as u64;
            // …and across the boundary from the previous word's last lane.
            if w > 0 && last_bits[id.index()] != (v & 1) {
                transitions[id.index()] += 1;
            }
            last_bits[id.index()] = v >> (lanes - 1) & 1;
        }
    }
    let p_one = ones.iter().map(|&c| c as f64 / vectors as f64).collect();
    let switching = transitions
        .iter()
        .map(|&c| c as f64 / (vectors - 1) as f64)
        .collect();
    SimActivity {
        p_one,
        switching,
        vectors,
    }
}

/// Per-node statistics of one contiguous word range of the seeded
/// simulation: enough to stitch ranges back together exactly.
struct WordRangeStats {
    /// Ones per node over the range's (masked) lanes.
    ones: Vec<u64>,
    /// Transitions per node, counting only adjacencies *inside* the range
    /// (within words and across the range's internal word boundaries).
    transitions: Vec<u64>,
    /// Per node: lane 0 of the range's first word.
    first_bits: Vec<bool>,
    /// Per node: last valid lane of the range's last word.
    last_bits: Vec<bool>,
}

/// Simulate one word range `[range.start, range.end)` of the seeded vector
/// stream. Word `w` draws its primary-input words from a fresh generator
/// seeded with `par::split_seed(master_seed, w)`, so the stream is a pure
/// function of the global word index.
fn simulate_word_range(
    net: &Network,
    pi_probs: &[f64],
    vectors: usize,
    master_seed: u64,
    range: std::ops::Range<usize>,
) -> WordRangeStats {
    let arena = net.arena_len();
    let words = vectors.div_ceil(64);
    obs::counter!("activity.sim.words", range.len() as u64);
    let mut stats = WordRangeStats {
        ones: vec![0; arena],
        transitions: vec![0; arena],
        first_bits: vec![false; arena],
        last_bits: vec![false; arena],
    };
    let mut pi_words = vec![0u64; pi_probs.len()];
    for w in range.clone() {
        let mut rng = SmallRng::seed_from_u64(par::split_seed(master_seed, w as u64));
        for (word, &p) in pi_words.iter_mut().zip(pi_probs) {
            *word = bernoulli_word(&mut rng, p.clamp(0.0, 1.0));
        }
        let values = net.eval_words(&pi_words);
        let lanes = if w + 1 == words { vectors - w * 64 } else { 64 };
        let mask = if lanes == 64 {
            !0u64
        } else {
            (1u64 << lanes) - 1
        };
        for id in net.node_ids() {
            let i = id.index();
            let v = values[i] & mask;
            stats.ones[i] += v.count_ones() as u64;
            let adjacent = (v ^ (v >> 1)) & (mask >> 1);
            stats.transitions[i] += adjacent.count_ones() as u64;
            if w > range.start && stats.last_bits[i] != (v & 1 == 1) {
                stats.transitions[i] += 1;
            }
            if w == range.start {
                stats.first_bits[i] = v & 1 == 1;
            }
            stats.last_bits[i] = v >> (lanes - 1) & 1 == 1;
        }
    }
    stats
}

/// Chunked, seed-split variant of [`simulate_activity`]: the `vectors`-long
/// stream is cut into 64-lane words, each word's inputs are drawn from a
/// generator seeded by `par::split_seed(master_seed, word_index)`, and word
/// ranges are simulated on up to `threads` workers. Per-range `ones` /
/// `transitions` tallies are stitched in range order (adding the boundary
/// transition between one range's last lane and the next range's first),
/// so the estimate is **bit-identical at every thread count** — including
/// `threads = 1`, which is the serial reference the determinism proptests
/// compare against.
///
/// # Panics
/// Panics if `pi_probs.len()` differs from the input count, or if
/// `vectors < 2`.
pub fn simulate_activity_seeded(
    net: &Network,
    pi_probs: &[f64],
    vectors: usize,
    master_seed: u64,
    threads: usize,
) -> SimActivity {
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "PI probability count mismatch"
    );
    assert!(vectors >= 2, "need at least two vectors");
    let words = vectors.div_ceil(64);
    let ranges = par::split_ranges(words, threads.max(1) * 4);
    let stats = par::scope_map(threads, &ranges, |_, r| {
        simulate_word_range(net, pi_probs, vectors, master_seed, r.clone())
    });
    let arena = net.arena_len();
    let mut ones = vec![0u64; arena];
    let mut transitions = vec![0u64; arena];
    let mut prev_last: Option<Vec<bool>> = None;
    for s in stats {
        for i in 0..arena {
            ones[i] += s.ones[i];
            transitions[i] += s.transitions[i];
            if let Some(last) = &prev_last {
                if last[i] != s.first_bits[i] {
                    transitions[i] += 1;
                }
            }
        }
        prev_last = Some(s.last_bits);
    }
    let p_one = ones.iter().map(|&c| c as f64 / vectors as f64).collect();
    let switching = transitions
        .iter()
        .map(|&c| c as f64 / (vectors - 1) as f64)
        .collect();
    SimActivity {
        p_one,
        switching,
        vectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prob::analyze;
    use crate::transition::TransitionModel;
    use netlist::parse_blif;
    use rand::SeedableRng;

    #[test]
    fn simulation_agrees_with_bdd_analysis() {
        let net = parse_blif(
            ".model r\n.inputs a b c d\n.outputs f g\n.names a b x\n11 1\n\
             .names c d y\n1- 1\n-1 1\n.names x y f\n10 1\n01 1\n.names x c g\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let probs = [0.3, 0.6, 0.5, 0.8];
        let act = analyze(&net, &probs, TransitionModel::StaticCmos);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let sim = simulate_activity(&net, &probs, 60_000, &mut rng);
        for id in net.node_ids() {
            let dp = (act.p_one(id) - sim.p_one(id)).abs();
            let ds = (act.switching(id) - sim.switching(id)).abs();
            assert!(dp < 0.01, "p_one mismatch at {}: {dp}", net.node(id).name());
            assert!(
                ds < 0.01,
                "switching mismatch at {}: {ds}",
                net.node(id).name()
            );
        }
    }

    #[test]
    fn partial_final_word_statistics_are_sane() {
        // A vector count far from a multiple of 64 must still normalize
        // correctly (the masked tail lanes must not count).
        let net = parse_blif(".model t\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
            .unwrap()
            .network;
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let sim = simulate_activity(&net, &[0.5], 100_001, &mut rng);
        let f = net.find("f").unwrap();
        assert!((sim.p_one(f) - 0.5).abs() < 0.01, "p_one {}", sim.p_one(f));
        assert!(
            (sim.switching(f) - 0.5).abs() < 0.01,
            "sw {}",
            sim.switching(f)
        );
    }

    #[test]
    fn deterministic_inputs_never_switch() {
        let net = parse_blif(".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n")
            .unwrap()
            .network;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let sim = simulate_activity(&net, &[1.0, 1.0], 100, &mut rng);
        let f = net.find("f").unwrap();
        assert_eq!(sim.p_one(f), 1.0);
        assert_eq!(sim.switching(f), 0.0);
    }

    #[test]
    fn bernoulli_word_extremes_and_bias() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        assert_eq!(bernoulli_word(&mut rng, 1.0), !0);
        assert_eq!(bernoulli_word(&mut rng, 0.0), 0);
        let mut ones = 0u32;
        for _ in 0..2000 {
            ones += bernoulli_word(&mut rng, 0.25).count_ones();
        }
        let freq = ones as f64 / (2000.0 * 64.0);
        assert!((freq - 0.25).abs() < 0.01, "frequency {freq}");
    }

    #[test]
    fn seeded_simulation_thread_invariant() {
        let net = parse_blif(
            ".model r\n.inputs a b c d\n.outputs f g\n.names a b x\n11 1\n\
             .names c d y\n1- 1\n-1 1\n.names x y f\n10 1\n01 1\n.names x c g\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let probs = [0.3, 0.6, 0.5, 0.8];
        // Off-multiple-of-64 vector counts stress range boundaries.
        for vectors in [2usize, 63, 64, 65, 1000, 1001] {
            let base = simulate_activity_seeded(&net, &probs, vectors, 0xFEED, 1);
            for threads in [2usize, 4, 7] {
                let par = simulate_activity_seeded(&net, &probs, vectors, 0xFEED, threads);
                for id in net.node_ids() {
                    assert_eq!(base.p_one(id), par.p_one(id), "p_one @ {vectors}v");
                    assert_eq!(
                        base.switching(id),
                        par.switching(id),
                        "switching @ {vectors}v"
                    );
                }
            }
        }
    }

    #[test]
    fn seeded_simulation_agrees_with_bdd_analysis() {
        let net = parse_blif(
            ".model r\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
             .names x c f\n1- 1\n-1 1\n.end\n",
        )
        .unwrap()
        .network;
        let probs = [0.3, 0.6, 0.5];
        let act = analyze(&net, &probs, TransitionModel::StaticCmos);
        let sim = simulate_activity_seeded(&net, &probs, 60_000, 42, 4);
        for id in net.node_ids() {
            assert!((act.p_one(id) - sim.p_one(id)).abs() < 0.01);
            assert!((act.switching(id) - sim.switching(id)).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic]
    fn too_few_vectors_panics() {
        let net = parse_blif(".model t\n.inputs a\n.outputs f\n.names a f\n1 1\n.end\n")
            .unwrap()
            .network;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        simulate_activity(&net, &[0.5], 1, &mut rng);
    }
}
