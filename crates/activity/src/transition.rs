//! Transition models: static CMOS and domino dynamic CMOS (p/n blocks).

/// Circuit design style, determining how signal probability translates into
/// switching activity (paper §1.2 and §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TransitionModel {
    /// Static CMOS: the output switches on both edges; with temporal
    /// independence `E = 2·p·(1−p)` (eq. 3 applied to both directions).
    #[default]
    StaticCmos,
    /// Domino p-block: outputs precharge to 0 and switch when the function
    /// evaluates to 1, so `E = P(f = 1)` (eq. 5 context).
    DominoP,
    /// Domino n-block: outputs precharge to 1 and switch when the function
    /// evaluates to 0, so `E = P(f = 0)` (eq. 6 context).
    DominoN,
}

impl TransitionModel {
    /// Expected transitions per cycle for a signal with `P(sig = 1) = p_one`.
    pub fn switching(self, p_one: f64) -> f64 {
        match self {
            TransitionModel::StaticCmos => 2.0 * p_one * (1.0 - p_one),
            TransitionModel::DominoP => p_one,
            TransitionModel::DominoN => 1.0 - p_one,
        }
    }
}

/// Two-cycle joint transition probabilities of a signal,
/// `(p00, p01, p10, p11)` with `pxy = P(prev = x, cur = y)`.
///
/// Under the paper's temporal-independence assumption (§1.4) all four values
/// follow from the static probability, e.g. `p01 = (1−p)·p` (eq. 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransProbs {
    /// P(0 → 0).
    pub p00: f64,
    /// P(0 → 1).
    pub p01: f64,
    /// P(1 → 0).
    pub p10: f64,
    /// P(1 → 1).
    pub p11: f64,
}

impl TransProbs {
    /// Derive from a static probability with temporal independence.
    pub fn from_p_one(p: f64) -> TransProbs {
        let q = 1.0 - p;
        TransProbs {
            p00: q * q,
            p01: q * p,
            p10: p * q,
            p11: p * p,
        }
    }

    /// Static 1-probability implied by the tuple (`p01 + p11`).
    pub fn p_one(&self) -> f64 {
        self.p01 + self.p11
    }

    /// Expected transitions per cycle (`p01 + p10`).
    pub fn switching(&self) -> f64 {
        self.p01 + self.p10
    }

    /// Output transition probabilities of a 2-input AND gate whose inputs
    /// are mutually independent. Implements eqs. (10)–(11) (and their
    /// complements) of the paper.
    pub fn and(&self, other: &TransProbs) -> TransProbs {
        let p11 = self.p11 * other.p11;
        // eq. (10): 0→1 requires the pair to be (not both 1, then both 1).
        let p01 = self.p01 * other.p01 + self.p11 * other.p01 + self.p01 * other.p11;
        // eq. (11): 1→0 requires (both 1, then not both 1).
        let p10 = self.p11 * other.p10 + self.p10 * other.p11 + self.p10 * other.p10;
        let p00 = (1.0 - p01 - p10 - p11).max(0.0);
        TransProbs { p00, p01, p10, p11 }
    }

    /// Output transition probabilities of a 2-input OR gate (dual of
    /// [`TransProbs::and`] by De Morgan).
    pub fn or(&self, other: &TransProbs) -> TransProbs {
        self.complement().and(&other.complement()).complement()
    }

    /// Transition probabilities of the complemented signal (swap the roles
    /// of the 0 and 1 states).
    pub fn complement(&self) -> TransProbs {
        TransProbs {
            p00: self.p11,
            p01: self.p10,
            p10: self.p01,
            p11: self.p00,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_switching_values() {
        assert!((TransitionModel::StaticCmos.switching(0.5) - 0.5).abs() < 1e-12);
        assert!((TransitionModel::StaticCmos.switching(0.0)).abs() < 1e-12);
        assert!((TransitionModel::DominoP.switching(0.3) - 0.3).abs() < 1e-12);
        assert!((TransitionModel::DominoN.switching(0.3) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn from_p_one_is_consistent() {
        let t = TransProbs::from_p_one(0.3);
        assert!((t.p00 + t.p01 + t.p10 + t.p11 - 1.0).abs() < 1e-12);
        assert!((t.p_one() - 0.3).abs() < 1e-12);
        assert!((t.switching() - 2.0 * 0.3 * 0.7).abs() < 1e-12);
    }

    #[test]
    fn and_matches_product_probability() {
        // AND of temporally independent inputs is itself temporally
        // independent with p = pa·pb, so the tuple must equal
        // from_p_one(pa·pb).
        let a = TransProbs::from_p_one(0.3);
        let b = TransProbs::from_p_one(0.4);
        let o = a.and(&b);
        let expect = TransProbs::from_p_one(0.12);
        assert!((o.p01 - expect.p01).abs() < 1e-12);
        assert!((o.p10 - expect.p10).abs() < 1e-12);
        assert!((o.p11 - expect.p11).abs() < 1e-12);
        assert!((o.p00 - expect.p00).abs() < 1e-12);
    }

    #[test]
    fn or_matches_de_morgan() {
        let a = TransProbs::from_p_one(0.3);
        let b = TransProbs::from_p_one(0.4);
        let o = a.or(&b);
        let p = 0.3 + 0.4 - 0.12;
        let expect = TransProbs::from_p_one(p);
        assert!((o.switching() - expect.switching()).abs() < 1e-12);
        assert!((o.p_one() - p).abs() < 1e-12);
    }

    #[test]
    fn complement_swaps_edges() {
        let t = TransProbs::from_p_one(0.2);
        let c = t.complement();
        assert!((c.p_one() - 0.8).abs() < 1e-12);
        assert!((c.switching() - t.switching()).abs() < 1e-12);
    }

    #[test]
    fn and_by_exhaustive_two_cycle_enumeration() {
        // Verify eqs (10)-(11) against direct enumeration of the 16 joint
        // two-cycle input states.
        let pa = 0.37;
        let pb = 0.81;
        let a = TransProbs::from_p_one(pa);
        let b = TransProbs::from_p_one(pb);
        let got = a.and(&b);
        let a_states = [a.p00, a.p01, a.p10, a.p11];
        let b_states = [b.p00, b.p01, b.p10, b.p11];
        let mut expect = [0.0f64; 4]; // indexed by (prev<<1)|cur of output
        for (ia, &wa) in a_states.iter().enumerate() {
            for (ib, &wb) in b_states.iter().enumerate() {
                let (ap, ac) = (ia >> 1 & 1, ia & 1);
                let (bp, bc) = (ib >> 1 & 1, ib & 1);
                let op = ap & bp;
                let oc = ac & bc;
                expect[(op << 1) | oc] += wa * wb;
            }
        }
        assert!((got.p00 - expect[0]).abs() < 1e-12);
        assert!((got.p01 - expect[1]).abs() < 1e-12);
        assert!((got.p10 - expect[2]).abs() < 1e-12);
        assert!((got.p11 - expect[3]).abs() < 1e-12);
    }
}
