//! Network-wide signal probability and switching activity via global BDDs.

use crate::transition::TransitionModel;
use bdd::{Bdd, BddManager};
use netlist::{Network, NodeId};

/// Global BDDs for every node of a network, over the primary inputs.
///
/// Holds the manager so that exact joint/conditional probabilities between
/// arbitrary internal signals can be queried (used for correlation-aware
/// decomposition and for validating the heuristic of eq. 9).
#[derive(Debug)]
pub struct NetworkBdds {
    manager: BddManager,
    node_bdd: Vec<Option<Bdd>>,
    pi_probs: Vec<f64>,
}

impl NetworkBdds {
    /// Build global BDDs for all nodes. `pi_probs[i]` is `P(input_i = 1)` in
    /// [`Network::inputs`] order.
    ///
    /// # Panics
    /// Panics if `pi_probs.len()` differs from the input count or the
    /// network is cyclic.
    pub fn build(net: &Network, pi_probs: &[f64]) -> NetworkBdds {
        assert_eq!(
            pi_probs.len(),
            net.inputs().len(),
            "PI probability count mismatch"
        );
        let mut manager = BddManager::new(net.inputs().len());
        let mut node_bdd: Vec<Option<Bdd>> = vec![None; net.arena_len()];
        for (i, &pi) in net.inputs().iter().enumerate() {
            node_bdd[pi.index()] = Some(manager.var(i));
        }
        for id in net.topo_order().expect("network must be acyclic") {
            let node = net.node(id);
            let Some(sop) = node.sop() else { continue };
            let fanin_bdds: Vec<Bdd> = node
                .fanins()
                .iter()
                .map(|f| node_bdd[f.index()].expect("fanin processed before node"))
                .collect();
            let mut f = Bdd::ZERO;
            for cube in sop.cubes() {
                let mut c = Bdd::ONE;
                for (pos, lit) in cube.bound_lits() {
                    let v = fanin_bdds[pos];
                    let v = match lit {
                        netlist::Lit::Pos => v,
                        netlist::Lit::Neg => manager.not(v),
                        netlist::Lit::Free => unreachable!(),
                    };
                    c = manager.and(c, v);
                }
                f = manager.or(f, c);
            }
            node_bdd[id.index()] = Some(f);
        }
        NetworkBdds {
            manager,
            node_bdd,
            pi_probs: pi_probs.to_vec(),
        }
    }

    /// The BDD of a node's global function.
    ///
    /// # Panics
    /// Panics if the node has no BDD (removed node).
    pub fn bdd(&self, node: NodeId) -> Bdd {
        self.node_bdd[node.index()].expect("node has a BDD")
    }

    /// Exact `P(node = 1)`.
    pub fn p_one(&self, node: NodeId) -> f64 {
        self.manager.probability(self.bdd(node), &self.pi_probs)
    }

    /// Exact joint probability `P(a = 1 ∧ b = 1)`.
    pub fn joint(&mut self, a: NodeId, b: NodeId) -> f64 {
        let (fa, fb) = (self.bdd(a), self.bdd(b));
        self.manager
            .joint_probability(fa, fb, &self.pi_probs.clone())
    }

    /// Exact conditional probability `P(a = 1 | b = 1)`; `None` when
    /// `P(b = 1) = 0`.
    pub fn conditional(&mut self, a: NodeId, b: NodeId) -> Option<f64> {
        let (fa, fb) = (self.bdd(a), self.bdd(b));
        self.manager
            .conditional_probability(fa, fb, &self.pi_probs.clone())
    }

    /// Underlying manager (e.g. for size statistics).
    pub fn manager(&self) -> &BddManager {
        &self.manager
    }
}

/// Per-node signal probability and switching activity under a given
/// [`TransitionModel`], indexed by [`NodeId`].
#[derive(Debug, Clone)]
pub struct ActivityMap {
    p_one: Vec<f64>,
    switching: Vec<f64>,
    model: TransitionModel,
}

impl ActivityMap {
    /// `P(node = 1)`.
    pub fn p_one(&self, node: NodeId) -> f64 {
        self.p_one[node.index()]
    }

    /// Expected transitions per cycle at the node output.
    pub fn switching(&self, node: NodeId) -> f64 {
        self.switching[node.index()]
    }

    /// The transition model the activities were computed under.
    pub fn model(&self) -> TransitionModel {
        self.model
    }

    /// Sum of switching over the given nodes (the MINPOWER cost of §2).
    pub fn total_switching<I: IntoIterator<Item = NodeId>>(&self, nodes: I) -> f64 {
        nodes.into_iter().map(|n| self.switching(n)).sum()
    }

    /// Construct directly from a probability vector indexed by
    /// [`NodeId::index`] (useful for tests and synthetic scenarios).
    pub fn from_p_one(p_one: Vec<f64>, model: TransitionModel) -> ActivityMap {
        let switching = p_one.iter().map(|&p| model.switching(p)).collect();
        ActivityMap {
            p_one,
            switching,
            model,
        }
    }
}

/// Compute exact zero-delay activities for every node of `net`.
///
/// `pi_probs[i]` is `P(input_i = 1)`; inputs are assumed mutually
/// independent (the paper's default, §1.4).
pub fn analyze(net: &Network, pi_probs: &[f64], model: TransitionModel) -> ActivityMap {
    let bdds = NetworkBdds::build(net, pi_probs);
    let mut p_one = vec![0.0; net.arena_len()];
    for id in net.node_ids() {
        p_one[id.index()] = bdds.p_one(id);
    }
    ActivityMap::from_p_one(p_one, model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    fn reconv() -> Network {
        // f = a·b + a·c — reconvergent fanout of `a`.
        parse_blif(
            ".model r\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
             .names a c y\n11 1\n.names x y f\n1- 1\n-1 1\n.end\n",
        )
        .unwrap()
        .network
    }

    #[test]
    fn exact_probability_with_reconvergence() {
        let net = reconv();
        let act = analyze(&net, &[0.5, 0.5, 0.5], TransitionModel::StaticCmos);
        let f = net.find("f").unwrap();
        // P(f) = P(a)·P(b+c) = 0.5·0.75
        assert!((act.p_one(f) - 0.375).abs() < 1e-12);
        assert!((act.switching(f) - 2.0 * 0.375 * 0.625).abs() < 1e-12);
    }

    #[test]
    fn domino_models() {
        let net = reconv();
        let p = analyze(&net, &[0.5, 0.5, 0.5], TransitionModel::DominoP);
        let n = analyze(&net, &[0.5, 0.5, 0.5], TransitionModel::DominoN);
        let f = net.find("f").unwrap();
        assert!((p.switching(f) - 0.375).abs() < 1e-12);
        assert!((n.switching(f) - 0.625).abs() < 1e-12);
    }

    #[test]
    fn joint_and_conditional() {
        let net = reconv();
        let mut bdds = NetworkBdds::build(&net, &[0.5, 0.5, 0.5]);
        let x = net.find("x").unwrap();
        let y = net.find("y").unwrap();
        // P(x∧y) = P(a·b·c) = 0.125; P(x|y) = 0.125/0.25 = 0.5.
        assert!((bdds.joint(x, y) - 0.125).abs() < 1e-12);
        assert!((bdds.conditional(x, y).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pi_probability_is_identity() {
        let net = reconv();
        let act = analyze(&net, &[0.2, 0.7, 0.9], TransitionModel::StaticCmos);
        let a = net.find("a").unwrap();
        assert!((act.p_one(a) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn total_switching_sums() {
        let net = reconv();
        let act = analyze(&net, &[0.5, 0.5, 0.5], TransitionModel::DominoP);
        let total = act.total_switching(net.logic_ids());
        // x: 0.25, y: 0.25, f: 0.375
        assert!((total - 0.875).abs() < 1e-12);
    }
}
