//! Electrical environment converting switching activity into average power.

/// Supply voltage, clock and capacitance conventions used for power numbers.
///
/// The paper's experimental setup is 5 V, 20 MHz, with loads expressed in
/// library (genlib) load units. `cap_unit_farads` maps one genlib load unit
/// to Farads; the default (20 fF) puts mapped-network powers in the same
/// hundreds-of-µW range the paper reports for lib2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerEnv {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock cycle time in seconds.
    pub t_cycle: f64,
    /// Farads per genlib load unit.
    pub cap_unit_farads: f64,
}

impl Default for PowerEnv {
    fn default() -> Self {
        PowerEnv {
            vdd: 5.0,
            t_cycle: 1.0 / 20.0e6,
            cap_unit_farads: 20.0e-15,
        }
    }
}

impl PowerEnv {
    /// The paper's environment: 5 V supply, 20 MHz clock.
    pub fn new() -> PowerEnv {
        PowerEnv::default()
    }

    /// Average power in **µW** dissipated charging/discharging a load of
    /// `cap_units` genlib load units with `switching` expected transitions
    /// per cycle (eq. 1: `P = 0.5·C·Vdd²/T·E`).
    pub fn average_power_uw(&self, cap_units: f64, switching: f64) -> f64 {
        let c = cap_units * self.cap_unit_farads;
        0.5 * c * self.vdd * self.vdd / self.t_cycle * switching * 1.0e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_setup() {
        let env = PowerEnv::new();
        assert!((env.vdd - 5.0).abs() < 1e-12);
        assert!((env.t_cycle - 50.0e-9).abs() < 1e-15);
    }

    #[test]
    fn power_formula() {
        let env = PowerEnv {
            vdd: 5.0,
            t_cycle: 50e-9,
            cap_unit_farads: 20e-15,
        };
        // 0.5 · 20fF · 25V² / 50ns · 1.0 = 5 µW per load unit at E=1.
        let p = env.average_power_uw(1.0, 1.0);
        assert!((p - 5.0).abs() < 1e-9);
        // Linear in both C and E.
        assert!((env.average_power_uw(2.0, 0.5) - 5.0).abs() < 1e-9);
    }
}
