//! Switching-activity analysis for Boolean networks.
//!
//! Implements the paper's power model (Section 1.2–1.4):
//!
//! * signal probabilities by global-BDD traversal (eq. 2),
//! * zero-delay transition probabilities for static CMOS (eqs. 3–4, 10–11)
//!   and domino dynamic CMOS (eqs. 5–6),
//! * pairwise correlation bookkeeping for correlated inputs (eqs. 7–9),
//! * a Monte-Carlo logic simulator used to cross-validate the analytic
//!   numbers, and
//! * the electrical environment (`Vdd`, clock period, capacitance unit) that
//!   converts switching activity into average power in µW.
//!
//! # Example
//!
//! ```
//! use netlist::parse_blif;
//! use activity::{analyze, TransitionModel};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let net = parse_blif(".model m\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n")?
//!     .network;
//! let act = analyze(&net, &[0.5, 0.5], TransitionModel::StaticCmos);
//! let f = net.find("f").expect("node exists");
//! assert!((act.p_one(f) - 0.25).abs() < 1e-12);
//! assert!((act.switching(f) - 2.0 * 0.25 * 0.75).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

pub mod correlation;
pub mod env;
pub mod prob;
pub mod propagate;
pub mod sim;
pub mod transition;

pub use correlation::CorrelationMatrix;
pub use env::PowerEnv;
pub use prob::{analyze, ActivityMap, NetworkBdds};
pub use propagate::{propagate_independent, transition_density};
pub use sim::{simulate_activity, simulate_activity_seeded, SimActivity};
pub use transition::{TransProbs, TransitionModel};
