//! Pairwise correlation bookkeeping for correlated signals (eqs. 7–9).
//!
//! The MINPOWER decomposition with correlated inputs needs, for the current
//! set of merge candidates, the 1-probability of every candidate and the
//! pairwise joint probabilities. When two candidates `i`, `j` are merged
//! into an AND node `A`, the joint probability between `A` and every other
//! candidate `k` is estimated by the symmetric average of eq. (9); an exact
//! BDD-backed alternative is provided by
//! [`crate::prob::NetworkBdds::joint`].

/// Probabilities of a set of signals: `p[i] = P(sig_i = 1)` and
/// `joint[i][j] = P(sig_i = 1 ∧ sig_j = 1)`.
#[derive(Debug, Clone)]
pub struct CorrelationMatrix {
    p: Vec<f64>,
    joint: Vec<Vec<f64>>,
}

impl CorrelationMatrix {
    /// Build for mutually independent signals (`joint = p_i·p_j`).
    pub fn independent(p: &[f64]) -> CorrelationMatrix {
        let n = p.len();
        let mut joint = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in 0..n {
                joint[i][j] = if i == j { p[i] } else { p[i] * p[j] };
            }
        }
        CorrelationMatrix {
            p: p.to_vec(),
            joint,
        }
    }

    /// Build from explicit probabilities and joint matrix.
    ///
    /// # Panics
    /// Panics if `joint` is not a square `p.len()`-sized matrix.
    pub fn new(p: Vec<f64>, joint: Vec<Vec<f64>>) -> CorrelationMatrix {
        let n = p.len();
        assert_eq!(joint.len(), n, "joint matrix row count mismatch");
        for row in &joint {
            assert_eq!(row.len(), n, "joint matrix column count mismatch");
        }
        CorrelationMatrix { p, joint }
    }

    /// Number of tracked signals.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True when no signals are tracked.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// `P(sig_i = 1)`.
    pub fn p_one(&self, i: usize) -> f64 {
        self.p[i]
    }

    /// `P(sig_i = 1 ∧ sig_j = 1)`.
    pub fn joint(&self, i: usize, j: usize) -> f64 {
        self.joint[i][j]
    }

    /// Conditional `P(sig_i = 1 | sig_j = 1)`; falls back to `p_i` when
    /// `P(sig_j = 1) = 0`.
    pub fn conditional(&self, i: usize, j: usize) -> f64 {
        if self.p[j] <= 0.0 {
            self.p[i]
        } else {
            (self.joint[i][j] / self.p[j]).clamp(0.0, 1.0)
        }
    }

    /// Probability that the AND of signals `i` and `j` is 1, via eq. (7):
    /// `W_o = w_i · w_{j|i}` — which equals the joint probability.
    pub fn and_probability(&self, i: usize, j: usize) -> f64 {
        self.joint[i][j]
    }

    /// Merge signals `i` and `j` into a new AND signal appended at the end,
    /// removing `i` and `j`. The joint probability between the new signal
    /// `A = i∧j` and each remaining signal `k` is estimated with the
    /// symmetric heuristic of eq. (9):
    ///
    /// ```text
    /// W_Ak = ( (w_{k|i}+w_{k|j})·w_ij/2
    ///        + (w_{j|k}+w_{j|i})·w_ik/2
    ///        + (w_{i|j}+w_{i|k})·w_jk/2 ) / 3
    /// ```
    ///
    /// Returns the index mapping from old indices to new indices
    /// (`None` for the removed pair; the merged signal is the last index).
    ///
    /// # Panics
    /// Panics if `i == j` or either index is out of range.
    pub fn merge_and(&mut self, i: usize, j: usize) -> Vec<Option<usize>> {
        assert_ne!(i, j, "cannot merge a signal with itself");
        let n = self.len();
        assert!(i < n && j < n, "merge index out of range");
        let p_a = self.joint[i][j]; // P(i ∧ j)

        let keep: Vec<usize> = (0..n).filter(|&k| k != i && k != j).collect();
        let mut new_p: Vec<f64> = keep.iter().map(|&k| self.p[k]).collect();
        new_p.push(p_a);
        let m = new_p.len();
        let mut new_joint = vec![vec![0.0; m]; m];
        for (a, &ka) in keep.iter().enumerate() {
            for (b, &kb) in keep.iter().enumerate() {
                new_joint[a][b] = self.joint[ka][kb];
            }
        }
        // eq. (9) estimate of P(A ∧ k) for each survivor k.
        for (a, &k) in keep.iter().enumerate() {
            let w_ij = self.joint[i][j];
            let w_ik = self.joint[i][k];
            let w_jk = self.joint[j][k];
            let term1 = (self.conditional(k, i) + self.conditional(k, j)) * w_ij / 2.0;
            let term2 = (self.conditional(j, k) + self.conditional(j, i)) * w_ik / 2.0;
            let term3 = (self.conditional(i, j) + self.conditional(i, k)) * w_jk / 2.0;
            let w_ak = ((term1 + term2 + term3) / 3.0).clamp(0.0, new_p[a].min(p_a));
            new_joint[a][m - 1] = w_ak;
            new_joint[m - 1][a] = w_ak;
        }
        new_joint[m - 1][m - 1] = p_a;

        let mut mapping = vec![None; n];
        for (new_idx, &old) in keep.iter().enumerate() {
            mapping[old] = Some(new_idx);
        }
        self.p = new_p;
        self.joint = new_joint;
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_joints_are_products() {
        let m = CorrelationMatrix::independent(&[0.3, 0.4, 0.5]);
        assert!((m.joint(0, 1) - 0.12).abs() < 1e-12);
        assert!((m.conditional(0, 1) - 0.3).abs() < 1e-12);
        assert!((m.and_probability(1, 2) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn merge_independent_reduces_to_products() {
        // For independent signals, eq. (9) must reproduce the exact
        // independent answer P(A∧k) = p_i·p_j·p_k.
        let mut m = CorrelationMatrix::independent(&[0.3, 0.4, 0.5]);
        let mapping = m.merge_and(0, 1);
        assert_eq!(m.len(), 2);
        assert_eq!(mapping, vec![None, None, Some(0)]);
        let a = 1; // merged signal index
        assert!((m.p_one(a) - 0.12).abs() < 1e-12);
        assert!((m.joint(0, a) - 0.3 * 0.4 * 0.5).abs() < 1e-10);
    }

    #[test]
    fn merge_respects_bounds_with_correlation() {
        // Perfectly correlated signals: i == j == k.
        let p = vec![0.5, 0.5, 0.5];
        let joint = vec![vec![0.5; 3]; 3];
        let mut m = CorrelationMatrix::new(p, joint);
        m.merge_and(0, 1);
        let a = 1;
        assert!((m.p_one(a) - 0.5).abs() < 1e-12);
        // P(A∧k) must stay within [0, min(P(A), P(k))].
        let w = m.joint(0, a);
        assert!((0.0..=0.5 + 1e-12).contains(&w));
        // For identical signals the estimate is exact: P(A∧k) = 0.5.
        assert!((w - 0.5).abs() < 1e-12);
    }

    #[test]
    fn conditional_handles_zero_probability() {
        let m = CorrelationMatrix::new(vec![0.4, 0.0], vec![vec![0.4, 0.0], vec![0.0, 0.0]]);
        assert!((m.conditional(0, 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn merge_same_index_panics() {
        let mut m = CorrelationMatrix::independent(&[0.3, 0.4]);
        m.merge_and(1, 1);
    }
}
