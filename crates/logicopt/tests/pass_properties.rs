//! Property-based tests: every optimization pass preserves network
//! function and never corrupts structure, on randomized SOP networks.

use netlist::{Cube, Lit, Network, Sop};
use proptest::prelude::*;

/// Build a random two-level-of-nodes network from a compact recipe.
fn build_network(recipe: &NetworkRecipe) -> Network {
    let mut net = Network::new("prop");
    let pis: Vec<_> = (0..recipe.inputs)
        .map(|i| net.add_input(format!("i{i}")).expect("fresh"))
        .collect();
    let mut pool = pis.clone();
    for (k, node) in recipe.nodes.iter().enumerate() {
        let mut fanins = Vec::new();
        for &sel in &node.fanins {
            let cand = pool[sel % pool.len()];
            if !fanins.contains(&cand) {
                fanins.push(cand);
            }
        }
        if fanins.is_empty() {
            fanins.push(pool[0]);
        }
        let w = fanins.len();
        let cubes: Vec<Cube> = node
            .cubes
            .iter()
            .map(|cube| {
                let lits: Vec<Lit> = (0..w)
                    .map(|i| match cube.get(i).copied().unwrap_or(2) % 3 {
                        0 => Lit::Neg,
                        1 => Lit::Pos,
                        _ => Lit::Free,
                    })
                    .collect();
                Cube::new(lits)
            })
            .collect();
        let sop = Sop::from_cubes(w, cubes);
        let id = net.add_logic(format!("n{k}"), fanins, sop).expect("fresh");
        pool.push(id);
    }
    for (o, &sel) in recipe.outputs.iter().enumerate() {
        net.add_output(format!("o{o}"), pool[sel % pool.len()]);
    }
    net.sweep_dangling();
    net
}

#[derive(Debug, Clone)]
struct NodeRecipe {
    fanins: Vec<usize>,
    cubes: Vec<Vec<u8>>,
}

#[derive(Debug, Clone)]
struct NetworkRecipe {
    inputs: usize,
    nodes: Vec<NodeRecipe>,
    outputs: Vec<usize>,
}

fn arb_recipe() -> impl Strategy<Value = NetworkRecipe> {
    let node = (
        proptest::collection::vec(0usize..64, 1..4),
        proptest::collection::vec(proptest::collection::vec(0u8..3, 0..4), 1..4),
    )
        .prop_map(|(fanins, cubes)| NodeRecipe { fanins, cubes });
    (
        Just(6usize),
        proptest::collection::vec(node, 2..8),
        proptest::collection::vec(0usize..64, 1..4),
    )
        .prop_map(|(inputs, nodes, outputs)| NetworkRecipe {
            inputs,
            nodes,
            outputs,
        })
}

fn equivalent(a: &Network, b: &Network) -> bool {
    let n = a.inputs().len();
    for bits in 0..(1u64 << n) {
        let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if a.eval_outputs(&v) != b.eval_outputs(&v) {
            return false;
        }
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sweep_preserves_function(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        let mut opt = net.clone();
        logicopt::sweep::sweep(&mut opt);
        prop_assert!(opt.check().is_ok());
        prop_assert!(equivalent(&net, &opt));
    }

    #[test]
    fn simplify_preserves_function_and_never_grows(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        let mut opt = net.clone();
        logicopt::simplify::simplify_network(&mut opt);
        prop_assert!(opt.check().is_ok());
        prop_assert!(equivalent(&net, &opt));
        prop_assert!(opt.literal_count() <= net.literal_count());
    }

    #[test]
    fn eliminate_preserves_function(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        let mut opt = net.clone();
        logicopt::eliminate::eliminate(&mut opt, -1);
        prop_assert!(opt.check().is_ok());
        prop_assert!(equivalent(&net, &opt));
        prop_assert!(opt.literal_count() <= net.literal_count());
    }

    #[test]
    fn extract_preserves_function(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        let mut opt = net.clone();
        logicopt::extract::extract(&mut opt, 0);
        prop_assert!(opt.check().is_ok());
        prop_assert!(equivalent(&net, &opt));
    }

    #[test]
    fn rugged_script_preserves_function(recipe in arb_recipe()) {
        let net = build_network(&recipe);
        let mut opt = net.clone();
        logicopt::rugged_like(&mut opt);
        prop_assert!(opt.check().is_ok());
        prop_assert!(equivalent(&net, &opt));
    }
}
