//! Algebraic (weak) division of SOP covers.

use netlist::{Cube, Lit, Sop};

/// Divide `f` by `d` algebraically: returns `(quotient, remainder)` with
/// `f = quotient·d + remainder` (no Boolean simplification), quotient
/// variable-disjoint from `d` cube-wise.
///
/// # Panics
/// Panics if widths differ or `d` is the zero cover.
pub fn divide(f: &Sop, d: &Sop) -> (Sop, Sop) {
    assert_eq!(f.width(), d.width(), "sop width mismatch");
    assert!(!d.is_zero(), "division by zero cover");
    let width = f.width();

    // Quotient candidates per divisor cube; quotient = intersection.
    let mut quotient: Option<Vec<Cube>> = None;
    for dc in d.cubes() {
        let mut q_d: Vec<Cube> = Vec::new();
        for fc in f.cubes() {
            if let Some(q) = cube_divide(fc, dc) {
                q_d.push(q);
            }
        }
        q_d.sort();
        q_d.dedup();
        quotient = Some(match quotient {
            None => q_d,
            Some(prev) => prev.into_iter().filter(|c| q_d.contains(c)).collect(),
        });
        if quotient.as_ref().is_some_and(Vec::is_empty) {
            break;
        }
    }
    let quotient_cubes = quotient.unwrap_or_default();
    let q = Sop::from_cubes(width, quotient_cubes.clone());

    // Remainder: cubes of f not produced by quotient × divisor.
    let mut product: Vec<Cube> = Vec::new();
    for qc in &quotient_cubes {
        for dc in d.cubes() {
            if let Some(p) = qc.and(dc) {
                product.push(p);
            }
        }
    }
    let remainder_cubes: Vec<Cube> = f
        .cubes()
        .iter()
        .filter(|c| !product.contains(c))
        .cloned()
        .collect();
    let r = Sop::from_cubes(width, remainder_cubes);
    (q, r)
}

/// Divide cube `c` by cube `d`: if `d`'s bound literals all appear
/// identically in `c`, return `c` with those positions freed; else `None`.
pub fn cube_divide(c: &Cube, d: &Cube) -> Option<Cube> {
    let mut q = c.clone();
    for (i, l) in d.bound_lits() {
        if c.lit(i) != l {
            return None;
        }
        q.set_lit(i, Lit::Free);
    }
    Some(q)
}

/// The largest cube dividing every cube of `f` (its common cube); the
/// tautology cube when `f` has no common literal.
///
/// # Panics
/// Panics if `f` is the zero cover.
pub fn common_cube(f: &Sop) -> Cube {
    assert!(!f.is_zero(), "zero cover has no common cube");
    let width = f.width();
    let mut common = f.cubes()[0].clone();
    for c in f.cubes().iter().skip(1) {
        for i in 0..width {
            if common.lit(i) != Lit::Free && common.lit(i) != c.lit(i) {
                common.set_lit(i, Lit::Free);
            }
        }
    }
    common
}

/// True if no single cube divides every cube of `f` (i.e. the common cube is
/// the tautology) and `f` has more than one cube or its only cube is the
/// tautology cube.
pub fn is_cube_free(f: &Sop) -> bool {
    if f.is_zero() {
        return false;
    }
    common_cube(f).is_tautology()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_division() {
        // f = a·b·c + a·b·d + e ; d = c + d  →  q = a·b, r = e
        // positions: a=0 b=1 c=2 d=3 e=4
        let f = Sop::parse(5, &["111--", "11-1-", "----1"]).unwrap();
        let d = Sop::parse(5, &["--1--", "---1-"]).unwrap();
        let (q, r) = divide(&f, &d);
        assert_eq!(q.cubes(), Sop::parse(5, &["11---"]).unwrap().cubes());
        assert_eq!(r.cubes(), Sop::parse(5, &["----1"]).unwrap().cubes());
    }

    #[test]
    fn division_identity_reconstructs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..40 {
            let w = 5;
            let mk = |rng: &mut rand::rngs::StdRng, n: usize| {
                let cubes: Vec<Cube> = (0..n)
                    .map(|_| {
                        Cube::new(
                            (0..w)
                                .map(|_| match rng.gen_range(0..3) {
                                    0 => Lit::Neg,
                                    1 => Lit::Pos,
                                    _ => Lit::Free,
                                })
                                .collect(),
                        )
                    })
                    .collect();
                Sop::from_cubes(w, cubes)
            };
            let nf = rng.gen_range(1..=5);
            let nd = rng.gen_range(1..=2);
            let f = mk(&mut rng, nf);
            let d = mk(&mut rng, nd);
            if d.is_zero() {
                continue;
            }
            let (q, r) = divide(&f, &d);
            // f ≡ q·d + r semantically.
            let qd = q.and(&d);
            let rebuilt = qd.or(&r);
            assert!(rebuilt.equivalent(&f), "f={f} d={d} q={q} r={r}");
        }
    }

    #[test]
    fn cube_division() {
        let c = Cube::parse("110-").unwrap();
        let d = Cube::parse("1---").unwrap();
        assert_eq!(cube_divide(&c, &d).unwrap().to_string(), "-10-");
        let bad = Cube::parse("0---").unwrap();
        assert!(cube_divide(&c, &bad).is_none());
    }

    #[test]
    fn common_cube_and_cube_free() {
        let f = Sop::parse(3, &["110", "11-"]).unwrap();
        assert_eq!(common_cube(&f).to_string(), "11-");
        assert!(!is_cube_free(&f));
        let g = Sop::parse(3, &["1--", "-1-"]).unwrap();
        assert!(is_cube_free(&g));
    }

    #[test]
    fn non_divisible_gives_empty_quotient() {
        let f = Sop::parse(2, &["1-"]).unwrap();
        let d = Sop::parse(2, &["-1"]).unwrap();
        let (q, r) = divide(&f, &d);
        assert!(q.is_zero());
        assert_eq!(r.cubes(), f.cubes());
    }
}
