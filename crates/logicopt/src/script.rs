//! Optimization scripts: the `rugged`-like preparation used by the paper.

use crate::eliminate::eliminate;
use crate::extract::extract;
use crate::simplify::simplify_network;
use crate::sweep::sweep;
use netlist::Network;

/// Before/after statistics of a script run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptReport {
    /// Literal count before.
    pub literals_before: usize,
    /// Literal count after.
    pub literals_after: usize,
    /// Logic node count before.
    pub nodes_before: usize,
    /// Logic node count after.
    pub nodes_after: usize,
}

/// Run the `rugged`-like technology-independent optimization script:
/// sweep → simplify → eliminate(−1) → extract → simplify → sweep, iterated
/// twice. Every experiment in the paper starts from such an optimized
/// network (its Section 4 uses the SIS rugged script for the same purpose).
pub fn rugged_like(net: &mut Network) -> ScriptReport {
    rugged_like_with(net, &mut |_, _| {})
}

/// [`rugged_like`] with a per-pass observer: `hook(label, net)` runs after
/// each constituent pass with the network in its post-pass state. Labels
/// are `"round.pass"` (e.g. `"1.sweep"`, `"2.extract"`), unique within one
/// script run so QoR ledgers can attribute each pass's delta. The script
/// itself is unchanged — [`rugged_like`] delegates here with a no-op hook.
pub fn rugged_like_with(net: &mut Network, hook: &mut dyn FnMut(&str, &Network)) -> ScriptReport {
    let literals_before = net.literal_count();
    let nodes_before = net.logic_count();
    for round in 0..2 {
        let _round = obs::span!("rugged.round", "{}", round + 1);
        let r = round + 1;
        sweep(net);
        hook(&format!("{r}.sweep"), net);
        simplify_network(net);
        hook(&format!("{r}.simplify"), net);
        eliminate(net, -1);
        hook(&format!("{r}.eliminate"), net);
        extract(net, 0);
        hook(&format!("{r}.extract"), net);
        simplify_network(net);
        hook(&format!("{r}.resimplify"), net);
        sweep(net);
        hook(&format!("{r}.resweep"), net);
    }
    ScriptReport {
        literals_before,
        literals_after: net.literal_count(),
        nodes_before,
        nodes_after: net.logic_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    fn equivalent(a: &Network, b: &Network) -> bool {
        let n = a.inputs().len();
        for bits in 0..(1u64 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if a.eval_outputs(&v) != b.eval_outputs(&v) {
                return false;
            }
        }
        true
    }

    #[test]
    fn rugged_preserves_function_and_reduces_cost() {
        let mut net = parse_blif(
            ".model t\n.inputs a b c d\n.outputs f g\n\
             .names a b x\n11 1\n10 1\n\
             .names x c y\n11 1\n\
             .names a c d z\n1-1 1\n11- 1\n\
             .names y z d f\n1-- 1\n-11 1\n\
             .names y z g\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let rep = rugged_like(&mut net);
        net.check().unwrap();
        assert!(equivalent(&orig, &net));
        assert!(rep.literals_after <= rep.literals_before);
    }

    #[test]
    fn rugged_is_idempotentish() {
        // A second run must not increase the literal count.
        let mut net = parse_blif(
            ".model t\n.inputs a b c d e\n.outputs f g\n\
             .names a b c f\n1-1 1\n-11 1\n011 1\n\
             .names a b d e g\n1-1- 1\n-11- 1\n---1 1\n.end\n",
        )
        .unwrap()
        .network;
        rugged_like(&mut net);
        let lits1 = net.literal_count();
        rugged_like(&mut net);
        assert!(net.literal_count() <= lits1);
        net.check().unwrap();
    }

    #[test]
    fn randomized_networks_survive_the_script() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        for trial in 0..8 {
            let mut blif = String::from(".model r\n.inputs a b c d e\n.outputs o0 o1\n");
            // two levels of random nodes
            for (name, ins) in [("m0", "a b c"), ("m1", "c d e"), ("m2", "a d e")] {
                blif.push_str(&format!(".names {ins} {name}\n"));
                for _ in 0..rng.gen_range(1..4) {
                    let row: String = (0..3)
                        .map(|_| ['0', '1', '-'][rng.gen_range(0..3usize)])
                        .collect();
                    blif.push_str(&format!("{row} 1\n"));
                }
            }
            for (out, ins) in [("o0", "m0 m1 e"), ("o1", "m1 m2 a")] {
                blif.push_str(&format!(".names {ins} {out}\n"));
                for _ in 0..rng.gen_range(1..4) {
                    let row: String = (0..3)
                        .map(|_| ['0', '1', '-'][rng.gen_range(0..3usize)])
                        .collect();
                    blif.push_str(&format!("{row} 1\n"));
                }
            }
            blif.push_str(".end\n");
            let mut net = parse_blif(&blif).unwrap().network;
            let orig = net.clone();
            rugged_like(&mut net);
            net.check().unwrap();
            assert!(equivalent(&orig, &net), "trial {trial} diverged:\n{blif}");
        }
    }
}
