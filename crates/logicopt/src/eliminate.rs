//! Value-based node elimination (collapsing).
//!
//! A node is collapsed into its fanouts when doing so does not increase the
//! network literal count by more than a threshold — the SIS `eliminate`
//! operation. Collapsing duplicates logic at multi-fanout points, so the
//! value function guards against blow-up.

use netlist::{Cube, Lit, Network, NodeId, Sop};

/// Substitute cover `g` (and its complement) for variable `pos` of `f`.
///
/// Variable convention of the result: `f`'s variables keep their positions
/// (position `pos` becomes unused), `g`'s variables are appended after them.
pub fn compose(f: &Sop, pos: usize, g: &Sop) -> Sop {
    let gw = g.width();
    let fw = f.width();
    let shift: Vec<usize> = (0..gw).map(|i| fw + i).collect();
    let g_pos = g.remap(&shift, fw + gw);
    let g_neg = g.complement().remap(&shift, fw + gw);
    let mut out = Sop::zero(fw + gw);
    for cube in f.cubes() {
        let mut base = cube.clone();
        let phase = base.lit(pos);
        base.set_lit(pos, Lit::Free);
        let base_sop = Sop::from_cubes(fw, vec![base]).remap(&(0..fw).collect::<Vec<_>>(), fw + gw);
        let term = match phase {
            Lit::Free => base_sop,
            Lit::Pos => base_sop.and(&g_pos),
            Lit::Neg => base_sop.and(&g_neg),
        };
        out = out.or(&term);
    }
    out.make_scc_minimal();
    out
}

/// Collapse node `victim` into every fanout. The victim must not be a
/// primary input. After the call the victim is dangling (removed by the
/// internal sweep) unless it drives a primary output.
///
/// # Panics
/// Panics if `victim` is a primary input.
pub fn collapse_node(net: &mut Network, victim: NodeId) {
    assert!(
        !net.node(victim).is_input(),
        "cannot collapse a primary input"
    );
    let g = net.node(victim).sop().expect("logic node").clone();
    let g_fanins = net.node(victim).fanins().to_vec();
    let fanouts: Vec<NodeId> = net.node(victim).fanouts().to_vec();
    for fo in fanouts {
        let f = net.node(fo).sop().expect("logic node").clone();
        let f_fanins = net.node(fo).fanins().to_vec();
        let pos = f_fanins
            .iter()
            .position(|&x| x == victim)
            .expect("fanin present");
        let composed = compose(&f, pos, &g);
        // Build merged fanin list: f's fanins then g's fanins, deduped,
        // dropping the victim position.
        let mut all: Vec<NodeId> = f_fanins.clone();
        all.extend(g_fanins.iter().copied());
        let mut merged: Vec<NodeId> = Vec::new();
        for (i, &n) in all.iter().enumerate() {
            if i == pos {
                continue;
            }
            if !merged.contains(&n) {
                merged.push(n);
            }
        }
        let perm: Vec<usize> = all
            .iter()
            .enumerate()
            .map(|(i, n)| {
                if i == pos {
                    usize::MAX // never bound: compose freed this position
                } else {
                    merged.iter().position(|m| m == n).expect("present")
                }
            })
            .collect();
        let cubes: Vec<Cube> = composed
            .cubes()
            .iter()
            .filter_map(|c| c.remap(&perm, merged.len()))
            .collect();
        let mut sop = Sop::from_cubes(merged.len(), cubes);
        sop.make_scc_minimal();
        let (shrunk, kept) = sop.shrink_support();
        let kept_fanins: Vec<NodeId> = kept.iter().map(|&i| merged[i]).collect();
        net.replace_function(fo, kept_fanins, shrunk);
    }
    net.sweep_dangling();
}

/// Report of an eliminate pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EliminateReport {
    /// Nodes collapsed.
    pub nodes_eliminated: usize,
}

/// Eliminate every node whose collapse increases the literal count by at
/// most `threshold` (SIS convention: `eliminate -1` removes only nodes whose
/// collapse strictly decreases literals). Iterates to a fixed point.
pub fn eliminate(net: &mut Network, threshold: i64) -> EliminateReport {
    let mut report = EliminateReport::default();
    loop {
        let mut collapsed_any = false;
        let ids: Vec<NodeId> = net.logic_ids().collect();
        for id in ids {
            if !net.node_ids().any(|x| x == id) {
                continue; // already removed
            }
            if net.outputs().iter().any(|(_, o)| *o == id) {
                continue; // keep output nodes
            }
            if net.node(id).fanouts().is_empty() {
                continue;
            }
            // Trial collapse on a clone to compute the exact literal delta.
            let before = net.literal_count() as i64;
            let mut trial = net.clone();
            collapse_node(&mut trial, id);
            let after = trial.literal_count() as i64;
            if after - before <= threshold {
                *net = trial;
                report.nodes_eliminated += 1;
                collapsed_any = true;
            }
        }
        if !collapsed_any {
            return report;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    fn equivalent(a: &Network, b: &Network) -> bool {
        let n = a.inputs().len();
        for bits in 0..(1u64 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if a.eval_outputs(&v) != b.eval_outputs(&v) {
                return false;
            }
        }
        true
    }

    #[test]
    fn compose_positive_and_negative() {
        let f = Sop::parse(2, &["1-"]).unwrap(); // f = x (width 2: x, c)
        let g = Sop::parse(2, &["11"]).unwrap(); // g = a·b
        let r = compose(&f, 0, &g);
        // result over [x(dead), c, a, b] = a·b
        assert_eq!(r.width(), 4);
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(r.eval(&v), v[2] && v[3]);
        }
        let fneg = Sop::parse(2, &["0-"]).unwrap(); // !x
        let rn = compose(&fneg, 0, &g);
        for bits in 0..16u32 {
            let v: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(rn.eval(&v), !(v[2] && v[3]));
        }
    }

    #[test]
    fn collapse_preserves_function() {
        let mut net = parse_blif(
            ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
             .names x c f\n10 1\n01 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let x = net.find("x").unwrap();
        collapse_node(&mut net, x);
        net.check().unwrap();
        assert!(equivalent(&orig, &net));
        assert_eq!(net.logic_count(), 1);
    }

    #[test]
    fn collapse_with_shared_fanin_merges() {
        // x = a·b ; f = x·a — collapse must merge the two `a` positions.
        let mut net = parse_blif(
            ".model t\n.inputs a b\n.outputs f\n.names a b x\n11 1\n\
             .names x a f\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let x = net.find("x").unwrap();
        collapse_node(&mut net, x);
        net.check().unwrap();
        assert!(equivalent(&orig, &net));
        let f = net.find("f").unwrap();
        assert_eq!(net.node(f).fanins().len(), 2);
    }

    #[test]
    fn collapse_conflicting_phases_drops_cube() {
        // x = a ; f = x·!a ≡ 0.
        let mut net = parse_blif(
            ".model t\n.inputs a\n.outputs f\n.names a x\n1 1\n\
             .names x a f\n10 1\n.end\n",
        )
        .unwrap()
        .network;
        let x = net.find("x").unwrap();
        collapse_node(&mut net, x);
        net.check().unwrap();
        assert_eq!(net.eval_outputs(&[true]), vec![false]);
        assert_eq!(net.eval_outputs(&[false]), vec![false]);
    }

    #[test]
    fn eliminate_reduces_literals_only() {
        // y = a·b used once: collapsing saves the node.
        let mut net = parse_blif(
            ".model t\n.inputs a b c\n.outputs f\n.names a b y\n11 1\n\
             .names y c f\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let rep = eliminate(&mut net, -1);
        net.check().unwrap();
        assert_eq!(rep.nodes_eliminated, 1);
        assert!(equivalent(&orig, &net));
        assert!(net.literal_count() < orig.literal_count());
    }

    #[test]
    fn eliminate_keeps_valuable_shared_nodes() {
        // x = a·b·c·d shared by 3 fanouts: collapsing would grow literals.
        let mut net = parse_blif(
            ".model t\n.inputs a b c d e\n.outputs f g h\n\
             .names a b c d x\n1111 1\n\
             .names x e f\n11 1\n.names x e g\n10 1\n.names x e h\n01 1\n.end\n",
        )
        .unwrap()
        .network;
        let rep = eliminate(&mut net, -1);
        net.check().unwrap();
        assert_eq!(rep.nodes_eliminated, 0);
        assert!(net.find("x").is_some());
    }
}
