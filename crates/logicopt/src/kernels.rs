//! Kernel and co-kernel enumeration (Brayton–McMullen).
//!
//! A *kernel* of a cover `F` is a cube-free quotient of `F` by a cube (its
//! *co-kernel*). Kernels are the candidate multi-cube divisors used by
//! extraction.

use crate::division::{common_cube, cube_divide, is_cube_free};
use netlist::{Cube, Lit, Sop};

/// A kernel with one of its co-kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// The cube-free quotient.
    pub kernel: Sop,
    /// The cube it was divided out by.
    pub co_kernel: Cube,
}

/// Enumerate all kernels of `f` (level-0 and higher), including `f` itself
/// when it is cube-free. Duplicate kernels (same cube set) are removed.
pub fn kernels(f: &Sop) -> Vec<Kernel> {
    let mut out: Vec<Kernel> = Vec::new();
    if f.is_zero() || f.cube_count() < 2 {
        return out;
    }
    let width = f.width();
    // Make f cube-free first.
    let cc = common_cube(f);
    let base = if cc.is_tautology() {
        f.clone()
    } else {
        Sop::from_cubes(
            width,
            f.cubes()
                .iter()
                .map(|c| cube_divide(c, &cc).expect("common cube divides"))
                .collect(),
        )
    };
    if is_cube_free(&base) {
        out.push(Kernel {
            kernel: base.clone(),
            co_kernel: cc.clone(),
        });
    }
    kernels_rec(&base, &cc, 0, &mut out);
    // Deduplicate by kernel cube set.
    let mut seen: Vec<Vec<Cube>> = Vec::new();
    out.retain(|k| {
        let mut cubes = k.kernel.cubes().to_vec();
        cubes.sort();
        if seen.contains(&cubes) {
            false
        } else {
            seen.push(cubes);
            true
        }
    });
    out
}

fn kernels_rec(f: &Sop, co: &Cube, start_lit: usize, out: &mut Vec<Kernel>) {
    let width = f.width();
    // literals indexed 0..2*width: 2*i = positive(i), 2*i+1 = negative(i)
    for lit_idx in start_lit..2 * width {
        let pos = lit_idx / 2;
        let phase = if lit_idx % 2 == 0 { Lit::Pos } else { Lit::Neg };
        let count = f.cubes().iter().filter(|c| c.lit(pos) == phase).count();
        if count < 2 {
            continue;
        }
        let lit_cube = Cube::literal(width, pos, phase == Lit::Pos);
        let quotient: Vec<Cube> = f
            .cubes()
            .iter()
            .filter_map(|c| cube_divide(c, &lit_cube))
            .collect();
        let q = Sop::from_cubes(width, quotient);
        let cc = common_cube(&q);
        // Skip if the common cube contains a literal with smaller index —
        // that kernel was (or will be) found from that literal instead.
        let mut skip = false;
        for (i, l) in cc.bound_lits() {
            let idx = 2 * i + if l == Lit::Pos { 0 } else { 1 };
            if idx < lit_idx {
                skip = true;
                break;
            }
        }
        if skip {
            continue;
        }
        let cube_free: Vec<Cube> = q
            .cubes()
            .iter()
            .map(|c| cube_divide(c, &cc).expect("common cube divides"))
            .collect();
        let h = Sop::from_cubes(width, cube_free);
        let new_co = co
            .and(&lit_cube)
            .and_then(|c| c.and(&cc))
            .expect("co-kernel literals are compatible");
        if h.cube_count() >= 2 {
            out.push(Kernel {
                kernel: h.clone(),
                co_kernel: new_co.clone(),
            });
            kernels_rec(&h, &new_co, lit_idx + 1, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_kernels() {
        // f = a·c + a·d + b·c + b·d + e  (vars a=0 b=1 c=2 d=3 e=4)
        // kernels: {c+d} (co a and b), {a+b} (co c and d), f itself.
        let f = Sop::parse(5, &["1-1--", "1--1-", "-11--", "-1-1-", "----1"]).unwrap();
        let ks = kernels(&f);
        let kernel_strings: Vec<String> = ks.iter().map(|k| k.kernel.to_string()).collect();
        assert!(
            kernel_strings.iter().any(|s| s == "--1-- + ---1-"),
            "missing kernel c+d in {kernel_strings:?}"
        );
        assert!(
            kernel_strings.iter().any(|s| s == "1---- + -1---"),
            "missing kernel a+b in {kernel_strings:?}"
        );
        assert!(
            kernel_strings.iter().any(|s| s.split(" + ").count() == 5),
            "missing top-level kernel in {kernel_strings:?}"
        );
    }

    #[test]
    fn kernels_are_cube_free() {
        let f = Sop::parse(4, &["11--", "1-1-", "1--1", "-111"]).unwrap();
        for k in kernels(&f) {
            assert!(is_cube_free(&k.kernel), "kernel {} not cube-free", k.kernel);
        }
    }

    #[test]
    fn kernel_times_cokernel_is_subset_of_f() {
        use crate::division::divide;
        let f = Sop::parse(4, &["11--", "1-1-", "0-11", "--11"]).unwrap();
        for k in kernels(&f) {
            // Dividing f by the kernel must give a non-empty quotient
            // containing the co-kernel.
            let (q, _r) = divide(&f, &k.kernel);
            assert!(
                q.cubes().contains(&k.co_kernel),
                "co-kernel {} not in quotient {q} for kernel {}",
                k.co_kernel,
                k.kernel
            );
        }
    }

    #[test]
    fn single_cube_has_no_kernels() {
        let f = Sop::parse(3, &["110"]).unwrap();
        assert!(kernels(&f).is_empty());
    }

    #[test]
    fn cube_with_common_factor() {
        // f = a·b + a·c = a(b + c): kernel {b+c} with co-kernel a.
        let f = Sop::parse(3, &["11-", "1-1"]).unwrap();
        let ks = kernels(&f);
        assert_eq!(ks.len(), 1);
        assert_eq!(ks[0].kernel.to_string(), "-1- + --1"); // b + c over width 3
        assert_eq!(ks[0].co_kernel.to_string(), "1--");
    }
}
