//! Technology-independent multi-level logic optimization.
//!
//! A self-contained stand-in for the SIS `rugged` script (Savoj/Wang), which
//! the paper uses to prepare every benchmark before technology decomposition
//! and mapping. The pieces:
//!
//! * [`sweep`] — constant propagation, buffer/inverter collapsing, removal
//!   of dangling logic;
//! * [`simplify`] — per-node two-level minimization (expand against the
//!   off-set + irredundant cover, an "espresso-lite");
//! * [`division`] — algebraic (weak) division of covers;
//! * [`kernels`] — kernel/co-kernel enumeration;
//! * [`extract`](mod@extract) — greedy common-divisor extraction (kernel
//!   intersections and common cubes), the `fast_extract` analogue, plus the
//!   power-aware variant of the paper's §5 future work;
//! * [`eliminate`] — value-based node collapsing;
//! * [`script::rugged_like`] — the composition used by the experiments.
//!
//! All passes preserve network function; the test-suite checks functional
//! equivalence by exhaustive or randomized simulation after every pass.

pub mod division;
pub mod eliminate;
pub mod extract;
pub mod kernels;
pub mod script;
pub mod simplify;
pub mod sweep;

pub use extract::{extract, extract_power_aware, ExtractReport};
pub use script::{rugged_like, rugged_like_with, ScriptReport};
