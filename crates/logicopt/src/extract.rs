//! Greedy common-divisor extraction (`fast_extract` analogue).
//!
//! Candidate divisors are (a) kernels shared between node covers and
//! (b) common cubes (literal pairs). The best candidate by literal savings
//! is materialized as a new network node, all covers are rewritten through
//! it, and the search repeats until no candidate saves literals.

use crate::division::divide;
use crate::kernels::kernels;
use netlist::{Cube, Lit, Network, NodeId, Sop};
use std::collections::{BTreeMap, HashMap};

/// A literal over a *network node* rather than a local position.
type GLit = (NodeId, bool);

/// A cube as a sorted set of global literals.
type GCube = Vec<GLit>;

fn to_gcubes(net: &Network, id: NodeId) -> Vec<GCube> {
    let node = net.node(id);
    let sop = node.sop().expect("logic node");
    sop.cubes()
        .iter()
        .map(|c| {
            let mut v: GCube = c
                .bound_lits()
                .map(|(i, l)| (node.fanins()[i], l == Lit::Pos))
                .collect();
            v.sort();
            v
        })
        .collect()
}

fn from_gcubes(gcubes: &[GCube]) -> (Vec<NodeId>, Sop) {
    let mut fanins: Vec<NodeId> = Vec::new();
    for c in gcubes {
        for &(n, _) in c {
            if !fanins.contains(&n) {
                fanins.push(n);
            }
        }
    }
    fanins.sort();
    let width = fanins.len();
    let cubes: Vec<Cube> = gcubes
        .iter()
        .map(|c| {
            let mut cube = Cube::tautology(width);
            for &(n, phase) in c {
                let pos = fanins.binary_search(&n).expect("fanin present");
                cube.set_lit(pos, if phase { Lit::Pos } else { Lit::Neg });
            }
            cube
        })
        .collect();
    let mut sop = Sop::from_cubes(width, cubes);
    sop.make_scc_minimal();
    (fanins, sop)
}

/// Canonical key of a divisor (sorted cube set).
fn divisor_key(cubes: &[GCube]) -> Vec<GCube> {
    let mut k = cubes.to_vec();
    k.sort();
    k.dedup();
    k
}

/// Literal savings of rewriting `node_cubes` through divisor `d` (multi-cube
/// case, via algebraic division in the global-literal space).
fn division_saving(node_cubes: &[GCube], d: &[GCube]) -> usize {
    division_saving_weighted(node_cubes, d, &|_| 1.0, 1.0) as usize
}

/// Weighted variant: each removed literal of signal `s` saves `weight(s)`;
/// each created reference to the new divisor node costs `divisor_weight`.
/// Returns the (possibly fractional) weighted saving, 0 when the divisor
/// does not divide the cover.
fn division_saving_weighted(
    node_cubes: &[GCube],
    d: &[GCube],
    weight: &dyn Fn(NodeId) -> f64,
    divisor_weight: f64,
) -> f64 {
    let (fanins, f) = from_gcubes(node_cubes);
    // Express divisor over the same fanins; bail out if it uses others.
    let width = fanins.len();
    let mut dcubes = Vec::new();
    for c in d {
        let mut cube = Cube::tautology(width);
        for &(n, phase) in c {
            match fanins.binary_search(&n) {
                Ok(pos) => cube.set_lit(pos, if phase { Lit::Pos } else { Lit::Neg }),
                Err(_) => return 0.0,
            }
        }
        dcubes.push(cube);
    }
    let dsop = Sop::from_cubes(width, dcubes);
    let (q, r) = divide(&f, &dsop);
    if q.is_zero() {
        return 0.0;
    }
    let lits_weight = |s: &Sop| -> f64 {
        s.cubes()
            .iter()
            .map(|c| c.bound_lits().map(|(i, _)| weight(fanins[i])).sum::<f64>())
            .sum()
    };
    let old = lits_weight(&f);
    let new = lits_weight(&q) + q.cube_count() as f64 * divisor_weight + lits_weight(&r);
    (old - new).max(0.0)
}

/// Report of an extraction pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractReport {
    /// New divisor nodes created.
    pub divisors_created: usize,
    /// Total literals saved (estimated by the greedy metric).
    pub literals_saved: usize,
}

/// Run greedy extraction until no divisor saves literals.
///
/// `max_rounds` bounds the number of extracted divisors (0 = unlimited).
pub fn extract(net: &mut Network, max_rounds: usize) -> ExtractReport {
    let mut report = ExtractReport::default();
    let mut rounds = 0;
    loop {
        if max_rounds != 0 && rounds >= max_rounds {
            break;
        }
        let Some((divisor, saving)) = best_divisor(net, None) else {
            break;
        };
        if saving <= 0.0 {
            break;
        }
        apply_divisor(net, &divisor);
        report.divisors_created += 1;
        report.literals_saved += saving as usize;
        rounds += 1;
    }
    net.sweep_dangling();
    report
}

/// **Power-aware extraction** — the paper's §5 future-work direction
/// ("the idea of generating nodes with minimum switching activity can be
/// extended to the technology independent phase"): divisor candidates are
/// scored by *switching-activity-weighted* literal savings. Removing a
/// literal of signal `s` saves a net load toggling `E(s)` times per cycle;
/// referencing the new divisor node costs its own activity. Activities are
/// exact (global BDDs) and recomputed after every extraction.
///
/// # Panics
/// Panics if `pi_probs.len()` differs from the input count.
pub fn extract_power_aware(
    net: &mut Network,
    pi_probs: &[f64],
    max_rounds: usize,
) -> ExtractReport {
    use activity::{analyze, TransitionModel};
    assert_eq!(
        pi_probs.len(),
        net.inputs().len(),
        "PI probability count mismatch"
    );
    let mut report = ExtractReport::default();
    let mut rounds = 0;
    loop {
        if max_rounds != 0 && rounds >= max_rounds {
            break;
        }
        let act = analyze(net, pi_probs, TransitionModel::StaticCmos);
        // Per-net switching weights (phase-independent: literals of either
        // polarity load the same net), indexed by arena position.
        let mut weights = vec![0.0f64; net.arena_len()];
        for id in net.node_ids() {
            weights[id.index()] = act.switching(id);
        }
        let Some((divisor, saving)) = best_divisor(net, Some(&weights)) else {
            break;
        };
        if saving <= 1e-12 {
            break;
        }
        apply_divisor(net, &divisor);
        report.divisors_created += 1;
        report.literals_saved += saving.round() as usize;
        rounds += 1;
    }
    net.sweep_dangling();
    report
}

/// Find the best candidate divisor and its total (possibly weighted)
/// literal saving. `weights` maps arena index → per-literal weight (None =
/// unweighted).
fn best_divisor(net: &Network, weights: Option<&[f64]>) -> Option<(Vec<GCube>, f64)> {
    let ids: Vec<NodeId> = net.logic_ids().collect();
    let gcovers: HashMap<NodeId, Vec<GCube>> =
        ids.iter().map(|&id| (id, to_gcubes(net, id))).collect();

    // BTreeMap, not HashMap: the scoring loop below keeps the first-seen
    // candidate on ties, so the iteration order must not depend on the
    // process's hash seeds.
    let mut candidates: BTreeMap<Vec<GCube>, usize> = BTreeMap::new();

    // Kernel candidates.
    for &id in &ids {
        let node = net.node(id);
        let sop = node.sop().expect("logic node");
        if sop.cube_count() < 2 || sop.cube_count() > 20 {
            continue; // cap kernel enumeration on huge covers
        }
        for k in kernels(sop) {
            if k.kernel.cube_count() < 2 {
                continue;
            }
            let gk: Vec<GCube> = k
                .kernel
                .cubes()
                .iter()
                .map(|c| {
                    let mut v: GCube = c
                        .bound_lits()
                        .map(|(i, l)| (node.fanins()[i], l == Lit::Pos))
                        .collect();
                    v.sort();
                    v
                })
                .collect();
            candidates.entry(divisor_key(&gk)).or_insert(0);
        }
    }

    // Literal-pair (common cube) candidates.
    let mut pair_count: HashMap<(GLit, GLit), usize> = HashMap::new();
    for cubes in gcovers.values() {
        for c in cubes {
            for i in 0..c.len() {
                for j in i + 1..c.len() {
                    *pair_count.entry((c[i], c[j])).or_insert(0) += 1;
                }
            }
        }
    }
    for (&(a, b), &count) in &pair_count {
        if count >= 2 {
            candidates.entry(vec![vec![a, b]]).or_insert(0);
        }
    }

    // Score every candidate by total saving across nodes, minus the cost of
    // instantiating the divisor node itself.
    let weight_of = |n: NodeId| -> f64 {
        match weights {
            Some(w) => w[n.index()],
            None => 1.0,
        }
    };
    let mut best: Option<(Vec<GCube>, f64)> = None;
    for (div, _) in candidates {
        // Estimate the new node's own activity for the weighted case: the
        // divisor output probability over independent literal probabilities
        // is unknown here, so use the mean weight of its literals as a
        // conservative stand-in (exact activities are recomputed after the
        // divisor is materialized).
        let div_lits: Vec<f64> = div
            .iter()
            .flat_map(|c| c.iter().map(|&(n, _)| weight_of(n)))
            .collect();
        let divisor_weight = if weights.is_some() {
            div_lits.iter().copied().sum::<f64>() / div_lits.len().max(1) as f64
        } else {
            1.0
        };
        let div_cost: f64 = div_lits.iter().sum();
        let mut saving_total = 0.0;
        // Sum in node order: float addition is not associative, and hash
        // order would let rounding perturb the candidate ranking.
        for &id in &ids {
            saving_total +=
                division_saving_weighted(&gcovers[&id], &div, &weight_of, divisor_weight);
        }
        let net_saving = saving_total - div_cost;
        if net_saving > 0.0 && best.as_ref().is_none_or(|(_, s)| net_saving > *s) {
            best = Some((div, net_saving));
        }
    }
    best
}

/// Materialize the divisor as a node and rewrite all covers through it.
fn apply_divisor(net: &mut Network, divisor: &[GCube]) {
    let (d_fanins, d_sop) = from_gcubes(divisor);
    let name = net.fresh_name("ext_");
    let d_id = net
        .add_logic(name, d_fanins, d_sop)
        .expect("fresh divisor name is unique");

    let ids: Vec<NodeId> = net.logic_ids().filter(|&id| id != d_id).collect();
    for id in ids {
        let cubes = to_gcubes(net, id);
        let saving = division_saving(&cubes, divisor);
        if saving == 0 {
            continue;
        }
        let (fanins, f) = from_gcubes(&cubes);
        let width = fanins.len();
        let mut dcubes = Vec::new();
        let mut ok = true;
        for c in divisor {
            let mut cube = Cube::tautology(width);
            for &(n, phase) in c {
                match fanins.binary_search(&n) {
                    Ok(pos) => cube.set_lit(pos, if phase { Lit::Pos } else { Lit::Neg }),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                break;
            }
            dcubes.push(cube);
        }
        if !ok {
            continue;
        }
        let dsop = Sop::from_cubes(width, dcubes);
        let (q, r) = divide(&f, &dsop);
        if q.is_zero() {
            continue;
        }
        // new cover = q·x + r over fanins + [d_id]
        let mut new_fanins = fanins.clone();
        new_fanins.push(d_id);
        let nw = new_fanins.len();
        let mut new_cubes: Vec<Cube> = Vec::new();
        for qc in q.cubes() {
            let mut c = qc.widen(1);
            c.set_lit(nw - 1, Lit::Pos);
            new_cubes.push(c);
        }
        for rc in r.cubes() {
            new_cubes.push(rc.widen(1));
        }
        let mut new_sop = Sop::from_cubes(nw, new_cubes);
        new_sop.make_scc_minimal();
        let (shrunk, kept) = new_sop.shrink_support();
        let kept_fanins: Vec<NodeId> = kept.iter().map(|&i| new_fanins[i]).collect();
        net.replace_function(id, kept_fanins, shrunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    fn equivalent(a: &Network, b: &Network) -> bool {
        let n = a.inputs().len();
        for bits in 0..(1u64 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if a.eval_outputs(&v) != b.eval_outputs(&v) {
                return false;
            }
        }
        true
    }

    #[test]
    fn shared_kernel_is_extracted() {
        // f = a·c + b·c, g = a·d + b·d: shared kernel (a+b).
        let mut net = parse_blif(
            ".model t\n.inputs a b c d\n.outputs f g\n\
             .names a b c f\n1-1 1\n-11 1\n\
             .names a b d g\n1-1 1\n-11 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let rep = extract(&mut net, 0);
        net.check().unwrap();
        assert!(rep.divisors_created >= 1);
        assert!(equivalent(&orig, &net));
        // literal count must drop: 8 literals -> (a+b)=2, f=2, g=2 => 6.
        assert!(net.literal_count() < orig.literal_count());
    }

    #[test]
    fn common_cube_is_extracted() {
        // f = a·b·c, g = a·b·d, h = a·b·!d — common cube a·b appears three
        // times (twice would save zero net literals).
        let mut net = parse_blif(
            ".model t\n.inputs a b c d\n.outputs f g h\n\
             .names a b c f\n111 1\n\
             .names a b d g\n111 1\n\
             .names a b d h\n110 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let rep = extract(&mut net, 0);
        net.check().unwrap();
        assert!(equivalent(&orig, &net));
        assert!(rep.divisors_created >= 1);
        assert!(net.literal_count() <= orig.literal_count());
    }

    #[test]
    fn no_sharing_no_extraction() {
        let mut net =
            parse_blif(".model t\n.inputs a b c\n.outputs f\n.names a b c f\n111 1\n.end\n")
                .unwrap()
                .network;
        let rep = extract(&mut net, 0);
        assert_eq!(rep.divisors_created, 0);
    }

    #[test]
    fn extraction_respects_round_cap() {
        let mut net = parse_blif(
            ".model t\n.inputs a b c d e\n.outputs f g h\n\
             .names a b c f\n1-1 1\n-11 1\n\
             .names a b d g\n1-1 1\n-11 1\n\
             .names a b e h\n1-1 1\n-11 1\n.end\n",
        )
        .unwrap()
        .network;
        let rep = extract(&mut net, 1);
        assert_eq!(rep.divisors_created, 1);
        net.check().unwrap();
    }

    #[test]
    fn randomized_functional_preservation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for trial in 0..10 {
            // random 2-level nodes over 5 inputs
            let mut blif = String::from(".model r\n.inputs a b c d e\n.outputs f g\n");
            for out in ["f", "g"] {
                blif.push_str(&format!(".names a b c d e {out}\n"));
                for _ in 0..rng.gen_range(2..5) {
                    let row: String = (0..5)
                        .map(|_| ['0', '1', '-'][rng.gen_range(0..3usize)])
                        .collect();
                    blif.push_str(&format!("{row} 1\n"));
                }
            }
            blif.push_str(".end\n");
            let mut net = parse_blif(&blif).unwrap().network;
            let orig = net.clone();
            extract(&mut net, 0);
            net.check().unwrap();
            assert!(equivalent(&orig, &net), "trial {trial} diverged:\n{blif}");
        }
    }
}

#[cfg(test)]
mod power_aware_tests {
    use super::*;
    use activity::{analyze, TransitionModel};
    use netlist::parse_blif;

    fn equivalent(a: &Network, b: &Network) -> bool {
        let n = a.inputs().len();
        for bits in 0..(1u64 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if a.eval_outputs(&v) != b.eval_outputs(&v) {
                return false;
            }
        }
        true
    }

    #[test]
    fn power_aware_extraction_preserves_function() {
        let mut net = parse_blif(
            ".model t\n.inputs a b c d e\n.outputs f g h\n\
             .names a b c f\n1-1 1\n-11 1\n\
             .names a b d g\n1-1 1\n-11 1\n\
             .names a b e h\n1-1 1\n-11 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let probs = vec![0.5; 5];
        let rep = extract_power_aware(&mut net, &probs, 0);
        net.check().unwrap();
        assert!(rep.divisors_created >= 1);
        assert!(equivalent(&orig, &net));
    }

    /// Switched-load estimate: every literal occurrence loads its signal's
    /// net, so cost = Σ over literal occurrences of the signal's switching.
    /// This is the quantity power-aware extraction minimizes (net loads
    /// materialize as gate input capacitances after mapping).
    fn switched_load(net: &Network, probs: &[f64]) -> f64 {
        let act = analyze(net, probs, TransitionModel::StaticCmos);
        let mut total = 0.0;
        for id in net.logic_ids() {
            let node = net.node(id);
            let sop = node.sop().expect("logic");
            for c in sop.cubes() {
                for (i, _) in c.bound_lits() {
                    total += act.switching(node.fanins()[i]);
                }
            }
        }
        total
    }

    #[test]
    fn power_aware_prefers_unloading_active_nets() {
        // Common cube a·b over near-constant signals (P = 0.95 ⇒
        // switching 0.095) shared FOUR times vs cube c·d over maximally
        // active signals (P = 0.5 ⇒ switching 0.5) shared three times.
        // Plain extraction must pick a·b (larger literal saving); the
        // power-aware pass must pick c·d (unloading the active nets is
        // worth far more switched capacitance).
        let blif = ".model t\n.inputs a b c d e5 e6 e7 e8\n.outputs f1 f2 f3 f4 g1 g2 g3\n\
             .names a b e5 f1\n111 1\n\
             .names a b e6 f2\n111 1\n\
             .names a b e7 f3\n111 1\n.names a b e8 f4\n111 1\n\
             .names c d e5 g1\n111 1\n\
             .names c d e6 g2\n111 1\n\
             .names c d e7 g3\n111 1\n.end\n";
        let probs = vec![0.95, 0.95, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
        let mut area_net = parse_blif(blif).unwrap().network;
        let mut power_net = area_net.clone();
        extract(&mut area_net, 1);
        extract_power_aware(&mut power_net, &probs, 1);
        power_net.check().unwrap();
        assert_eq!(power_net.logic_count(), 8, "one divisor extracted");
        let la = switched_load(&area_net, &probs);
        let lp = switched_load(&power_net, &probs);
        assert!(lp < la - 1e-9, "power-aware {lp} must beat plain {la}");
        // Plain extraction must have chosen the quiet cube (more literals).
        let adiv = area_net
            .logic_ids()
            .find(|&id| area_net.node(id).name().starts_with("ext_"))
            .expect("plain divisor exists");
        let a_fanins: Vec<&str> = area_net
            .node(adiv)
            .fanins()
            .iter()
            .map(|&f| area_net.node(f).name())
            .collect();
        assert_eq!(a_fanins, vec!["a", "b"], "plain pass maximizes literals");
        // And the power-aware choice must be the active cube c·d: the
        // divisor node's fanins are c and d.
        let div = power_net
            .logic_ids()
            .find(|&id| power_net.node(id).name().starts_with("ext_"))
            .expect("divisor exists");
        let fanin_names: Vec<&str> = power_net
            .node(div)
            .fanins()
            .iter()
            .map(|&f| power_net.node(f).name())
            .collect();
        assert_eq!(fanin_names, vec!["c", "d"], "must extract the active cube");
    }

    #[test]
    fn power_aware_stops_when_no_gain() {
        let mut net =
            parse_blif(".model t\n.inputs a b c\n.outputs f\n.names a b c f\n111 1\n.end\n")
                .unwrap()
                .network;
        let rep = extract_power_aware(&mut net, &[0.5; 3], 0);
        assert_eq!(rep.divisors_created, 0);
    }
}
