//! Sweep: constant propagation, buffer/inverter collapsing, dead logic
//! removal.

use netlist::{Cube, Lit, Network, NodeId, Sop};

/// Result summary of a sweep pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepReport {
    /// Constant nodes folded into their fanouts.
    pub constants_folded: usize,
    /// Buffer nodes bypassed.
    pub buffers_bypassed: usize,
    /// Inverter chains (pairs) collapsed.
    pub inverters_collapsed: usize,
    /// Dangling nodes removed.
    pub dangling_removed: usize,
}

/// Run sweep to a fixed point. Preserves network function at the outputs.
pub fn sweep(net: &mut Network) -> SweepReport {
    let mut report = SweepReport::default();
    loop {
        let mut changed = false;

        // Fold constant nodes into fanouts by cofactoring.
        let const_nodes: Vec<(NodeId, bool)> = net
            .logic_ids()
            .filter_map(|id| {
                let sop = net.node(id).sop().expect("logic node");
                if sop.is_zero() {
                    Some((id, false))
                } else if sop.is_tautology() {
                    Some((id, true))
                } else {
                    None
                }
            })
            .collect();
        for (id, value) in const_nodes {
            if fold_constant(net, id, value) {
                report.constants_folded += 1;
                changed = true;
            }
        }

        // Bypass buffers (single positive literal) and collapse inverter
        // feeding into fanouts (rewrite fanout covers with flipped phase).
        let simple: Vec<(NodeId, NodeId, bool)> = net
            .logic_ids()
            .filter_map(|id| {
                let node = net.node(id);
                let sop = node.sop().expect("logic node");
                if sop.cube_count() == 1 && sop.literal_count() == 1 && node.fanins().len() == 1 {
                    let phase = sop.cubes()[0].bound_lits().next().expect("one literal").1;
                    Some((id, node.fanins()[0], phase == Lit::Pos))
                } else {
                    None
                }
            })
            .collect();
        for (id, src, positive) in simple {
            if !net.node_ids().any(|x| x == id) {
                continue; // removed by an earlier rewrite this round
            }
            if positive {
                if is_output_node(net, id) && is_output_node(net, src) {
                    continue; // keep a buffer between two named outputs
                }
                net.substitute(id, src);
                report.buffers_bypassed += 1;
                changed = true;
            } else if collapse_inverter(net, id, src) {
                report.inverters_collapsed += 1;
                changed = true;
            }
        }

        report.dangling_removed += net.sweep_dangling();
        if !changed {
            break;
        }
    }
    report
}

fn is_output_node(net: &Network, id: NodeId) -> bool {
    net.outputs().iter().any(|(_, o)| *o == id)
}

/// Replace uses of constant node `id` by cofactoring each fanout's cover.
/// Returns false when the node drives a primary output directly (kept).
fn fold_constant(net: &mut Network, id: NodeId, value: bool) -> bool {
    if is_output_node(net, id) && net.node(id).fanouts().is_empty() {
        return false;
    }
    let fanouts: Vec<NodeId> = net.node(id).fanouts().to_vec();
    for fo in fanouts {
        let node = net.node(fo);
        let pos = node
            .fanins()
            .iter()
            .position(|&f| f == id)
            .expect("fanin present");
        let sop = node.sop().expect("logic node").clone();
        let mut fanins = node.fanins().to_vec();
        let cof = sop.cofactor(pos, value);
        // Drop the now-unused variable position.
        fanins.remove(pos);
        let perm: Vec<usize> = (0..sop.width())
            .map(|i| match i.cmp(&pos) {
                std::cmp::Ordering::Less => i,
                std::cmp::Ordering::Equal => usize::MAX, // never bound after cofactor
                std::cmp::Ordering::Greater => i - 1,
            })
            .collect();
        let cubes: Vec<Cube> = cof
            .cubes()
            .iter()
            .map(|c| {
                let mut lits = vec![Lit::Free; fanins.len()];
                for (i, l) in c.bound_lits() {
                    lits[perm[i]] = l;
                }
                Cube::new(lits)
            })
            .collect();
        let mut new_sop = Sop::from_cubes(fanins.len(), cubes);
        new_sop.make_scc_minimal();
        net.replace_function(fo, fanins, new_sop);
    }
    true
}

/// Collapse inverter node `id` (= !src) into each of its fanouts by flipping
/// the phase of the corresponding literal in their covers. Returns false if
/// the inverter must be kept (drives a primary output).
fn collapse_inverter(net: &mut Network, id: NodeId, src: NodeId) -> bool {
    if is_output_node(net, id) {
        return false;
    }
    let fanouts: Vec<NodeId> = net.node(id).fanouts().to_vec();
    for fo in fanouts {
        let node = net.node(fo);
        let pos = node
            .fanins()
            .iter()
            .position(|&f| f == id)
            .expect("fanin present");
        let sop = node.sop().expect("logic node").clone();
        let fanins = node.fanins().to_vec();
        // Flip the phase of position `pos` in every cube.
        let cubes: Vec<Cube> = sop
            .cubes()
            .iter()
            .map(|c| {
                let mut c2 = c.clone();
                match c2.lit(pos) {
                    Lit::Pos => c2.set_lit(pos, Lit::Neg),
                    Lit::Neg => c2.set_lit(pos, Lit::Pos),
                    Lit::Free => {}
                }
                c2
            })
            .collect();
        // Rewire position `pos` from the inverter to its source, merging
        // duplicates.
        let mut new_fanins: Vec<NodeId> = Vec::with_capacity(fanins.len());
        let mut with_src = fanins.clone();
        with_src[pos] = src;
        for &f in &with_src {
            if !new_fanins.contains(&f) {
                new_fanins.push(f);
            }
        }
        let perm: Vec<usize> = with_src
            .iter()
            .map(|f| new_fanins.iter().position(|g| g == f).expect("present"))
            .collect();
        let mut new_sop = Sop::from_cubes(sop.width(), cubes).remap(&perm, new_fanins.len());
        new_sop.make_scc_minimal();
        net.replace_function(fo, new_fanins, new_sop);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    fn equivalent(a: &Network, b: &Network) -> bool {
        let n = a.inputs().len();
        assert!(n <= 10, "exhaustive check only for small nets");
        for bits in 0..(1u64 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if a.eval_outputs(&v) != b.eval_outputs(&v) {
                return false;
            }
        }
        true
    }

    #[test]
    fn constants_fold() {
        let mut net = parse_blif(
            ".model t\n.inputs a b\n.outputs f\n.names one\n1\n\
             .names a one x\n11 1\n.names x b f\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let rep = sweep(&mut net);
        net.check().unwrap();
        assert!(rep.constants_folded >= 1);
        assert!(equivalent(&orig, &net));
        // `one` and `x` should be gone: f = a·b directly or via buffer path.
        assert!(net.logic_count() <= 1);
    }

    #[test]
    fn buffers_bypass() {
        let mut net = parse_blif(
            ".model t\n.inputs a b\n.outputs f\n.names a x\n1 1\n\
             .names x b f\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        let rep = sweep(&mut net);
        net.check().unwrap();
        assert_eq!(rep.buffers_bypassed, 1);
        assert!(equivalent(&orig, &net));
        assert_eq!(net.logic_count(), 1);
    }

    #[test]
    fn inverter_chains_collapse() {
        let mut net = parse_blif(
            ".model t\n.inputs a b\n.outputs f\n.names a x\n0 1\n\
             .names x y\n0 1\n.names y b f\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        sweep(&mut net);
        net.check().unwrap();
        assert!(equivalent(&orig, &net));
        // both inverters disappear: f = a·b.
        assert_eq!(net.logic_count(), 1);
    }

    #[test]
    fn output_constants_kept() {
        let mut net = parse_blif(".model t\n.inputs a\n.outputs k\n.names k\n1\n.end\n")
            .unwrap()
            .network;
        sweep(&mut net);
        net.check().unwrap();
        assert_eq!(net.eval_outputs(&[false]), vec![true]);
    }

    #[test]
    fn inverter_driving_output_kept() {
        let mut net = parse_blif(".model t\n.inputs a\n.outputs f\n.names a f\n0 1\n.end\n")
            .unwrap()
            .network;
        let orig = net.clone();
        sweep(&mut net);
        net.check().unwrap();
        assert!(equivalent(&orig, &net));
        assert_eq!(net.logic_count(), 1);
    }

    #[test]
    fn duplicate_pin_with_inverter_collapses_correctly() {
        // Mapped-netlist shape: a cell instance may list one net on two
        // pins, making some cover cubes contradictory (dead). Collapsing
        // the inverter feeding such a node merges fanin positions; the
        // dead cubes must stay dead, not be resurrected by the merge.
        let mut net = parse_blif(
            ".model t\n.inputs a b c\n.outputs f\n.names c x\n0 1\n\
             .names a b a x f\n1100 1\n0011 1\n1111 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        sweep(&mut net);
        net.check().unwrap();
        assert!(equivalent(&orig, &net));
    }

    #[test]
    fn fixpoint_reaches_stability() {
        let mut net = parse_blif(
            ".model t\n.inputs a b c\n.outputs f g\n.names zero\n\
             .names a zero x\n1- 1\n.names x y\n1 1\n.names y b z\n11 1\n\
             .names z c f\n1- 1\n-1 1\n.names c g\n0 1\n.end\n",
        )
        .unwrap()
        .network;
        let orig = net.clone();
        sweep(&mut net);
        net.check().unwrap();
        assert!(equivalent(&orig, &net));
        let mut again = net.clone();
        let rep2 = sweep(&mut again);
        assert_eq!(rep2, SweepReport::default(), "second sweep must be a no-op");
    }
}
