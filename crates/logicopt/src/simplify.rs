//! Per-node two-level minimization ("espresso-lite").
//!
//! EXPAND each cube against the off-set (computed by exact complement),
//! then make the cover IRREDUNDANT. This does not guarantee a minimum
//! cover like full Espresso, but removes redundant literals and cubes —
//! which is what the rugged script's `simplify` contributes before
//! decomposition.

use netlist::{Cube, Lit, Network, Sop};

/// Minimize one cover. The result is functionally equivalent, with
/// literal count less than or equal to the input's.
pub fn simplify_sop(sop: &Sop) -> Sop {
    if sop.is_zero() {
        return sop.clone();
    }
    if sop.is_tautology() {
        return Sop::one(sop.width());
    }
    let off = sop.complement();
    let mut cover = sop.clone();
    cover.make_scc_minimal();

    // EXPAND: try to free each bound literal of each cube; keep the freed
    // literal if the enlarged cube stays disjoint from the off-set.
    let mut expanded: Vec<Cube> = Vec::with_capacity(cover.cube_count());
    for cube in cover.cubes() {
        let mut c = cube.clone();
        let bound: Vec<usize> = c.bound_lits().map(|(i, _)| i).collect();
        for i in bound {
            let saved = c.lit(i);
            c.set_lit(i, Lit::Free);
            let hits_off = off.cubes().iter().any(|o| o.and(&c).is_some());
            if hits_off {
                c.set_lit(i, saved);
            }
        }
        expanded.push(c);
    }
    let mut result = Sop::from_cubes(sop.width(), expanded);
    result.make_scc_minimal();

    // IRREDUNDANT: drop any cube covered by the union of the others.
    let mut cubes: Vec<Cube> = result.cubes().to_vec();
    let mut i = 0;
    while i < cubes.len() {
        let candidate = cubes[i].clone();
        let rest: Vec<Cube> = cubes
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .map(|(_, c)| c.clone())
            .collect();
        let rest_sop = Sop::from_cubes(sop.width(), rest);
        if rest_sop.covers_cube(&candidate) {
            cubes.remove(i);
        } else {
            i += 1;
        }
    }
    Sop::from_cubes(sop.width(), cubes)
}

/// Report of a network simplify pass.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyReport {
    /// Nodes whose cover changed.
    pub nodes_changed: usize,
    /// Total literals removed.
    pub literals_removed: usize,
}

/// Simplify every logic node of the network. Also shrinks node support
/// when simplification drops all uses of a fanin.
pub fn simplify_network(net: &mut Network) -> SimplifyReport {
    let mut report = SimplifyReport::default();
    let ids: Vec<_> = net.logic_ids().collect();
    for id in ids {
        let node = net.node(id);
        let old = node.sop().expect("logic node").clone();
        let fanins = node.fanins().to_vec();
        let new = simplify_sop(&old);
        if new == old {
            continue;
        }
        let old_lits = old.literal_count();
        let new_lits = new.literal_count();
        let (shrunk, kept) = new.shrink_support();
        let kept_fanins: Vec<_> = kept.iter().map(|&i| fanins[i]).collect();
        net.replace_function(id, kept_fanins, shrunk);
        report.nodes_changed += 1;
        report.literals_removed += old_lits.saturating_sub(new_lits);
    }
    net.sweep_dangling();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    fn check_equiv(a: &Sop, b: &Sop) {
        assert!(a.equivalent(b), "covers differ: {a} vs {b}");
    }

    #[test]
    fn redundant_literal_removed() {
        // a·b + a·!b = a
        let f = Sop::parse(2, &["11", "10"]).unwrap();
        let s = simplify_sop(&f);
        check_equiv(&f, &s);
        assert_eq!(s.cube_count(), 1);
        assert_eq!(s.literal_count(), 1);
    }

    #[test]
    fn consensus_redundancy_removed() {
        // a·b + !a·c + b·c : the consensus cube b·c is redundant.
        let f = Sop::parse(3, &["11-", "0-1", "-11"]).unwrap();
        let s = simplify_sop(&f);
        check_equiv(&f, &s);
        assert_eq!(s.cube_count(), 2);
    }

    #[test]
    fn constants_are_stable() {
        assert!(simplify_sop(&Sop::zero(3)).is_zero());
        assert!(simplify_sop(&Sop::one(3)).is_tautology());
        // Hidden tautology: a + !a
        let f = Sop::parse(1, &["1", "0"]).unwrap();
        assert!(simplify_sop(&f).is_tautology());
    }

    #[test]
    fn never_increases_literals_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..50 {
            let w = rng.gen_range(1..=5);
            let ncubes = rng.gen_range(1..=6);
            let cubes: Vec<Cube> = (0..ncubes)
                .map(|_| {
                    let lits: Vec<Lit> = (0..w)
                        .map(|_| match rng.gen_range(0..3) {
                            0 => Lit::Neg,
                            1 => Lit::Pos,
                            _ => Lit::Free,
                        })
                        .collect();
                    Cube::new(lits)
                })
                .collect();
            let f = Sop::from_cubes(w, cubes);
            let s = simplify_sop(&f);
            check_equiv(&f, &s);
            assert!(s.literal_count() <= f.literal_count());
        }
    }

    #[test]
    fn network_simplify_preserves_function_and_support() {
        let mut net =
            parse_blif(".model t\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n10- 1\n.end\n")
                .unwrap()
                .network;
        let orig = net.clone();
        let rep = simplify_network(&mut net);
        net.check().unwrap();
        assert!(rep.nodes_changed >= 1);
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(orig.eval_outputs(&v), net.eval_outputs(&v));
        }
        // f should now be just `a` with support {a}.
        let f = net.find("f").unwrap();
        assert_eq!(net.node(f).fanins().len(), 1);
    }
}
