//! Benchmark circuits for the experiments.
//!
//! The paper evaluates on ISCAS-89 combinational cores and MCNC-91
//! circuits, which cannot be redistributed here. This crate provides
//! functionally meaningful stand-ins (see `DESIGN.md` for the substitution
//! rationale):
//!
//! * [`structured`] — exact constructions of classic circuit shapes:
//!   decoders (the real `cm42a` is a 4→10 decoder), ripple-carry adders,
//!   ALU slices, parity trees, comparators and mux trees;
//! * [`random_net`] — a seeded random multi-level network generator with
//!   controlled size, depth and reconvergence;
//! * [`suite`] — the named benchmark list mirroring the paper's Table 2/3
//!   circuits, each with a PI/PO/size profile matched to the original.

pub mod random_net;
pub mod structured;
pub mod suite;

pub use random_net::{random_network, RandomNetConfig};
pub use suite::{paper_suite, suite_circuit, SuiteEntry};
