//! Seeded random multi-level network generator.
//!
//! Produces networks with the statistical character of optimized MCNC/ISCAS
//! combinational logic: small SOP nodes (1–4 cubes over 2–4 fanins),
//! reconvergent fanout (fanins biased toward recent nodes, occasionally far
//! back), and a mix of unate and binate functions. Generation is fully
//! deterministic in the seed.

use netlist::{Cube, Lit, Network, NodeId, Sop};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape parameters for [`random_network`].
#[derive(Debug, Clone, Copy)]
pub struct RandomNetConfig {
    /// Number of primary inputs.
    pub inputs: usize,
    /// Number of primary outputs.
    pub outputs: usize,
    /// Number of internal logic nodes generated (before pruning dangling
    /// logic, so the final count can be slightly lower).
    pub nodes: usize,
    /// Maximum fanin per node (2..=4 is realistic post-optimization).
    pub max_fanin: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomNetConfig {
    fn default() -> Self {
        RandomNetConfig {
            inputs: 8,
            outputs: 4,
            nodes: 40,
            max_fanin: 3,
            seed: 1,
        }
    }
}

/// Generate a random combinational network.
///
/// # Panics
/// Panics if `inputs == 0`, `outputs == 0` or `max_fanin < 2`.
pub fn random_network(cfg: &RandomNetConfig) -> Network {
    assert!(cfg.inputs > 0 && cfg.outputs > 0, "need inputs and outputs");
    assert!(cfg.max_fanin >= 2, "max fanin must be at least 2");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut net = Network::new(format!("rand_{}", cfg.seed));
    let mut pool: Vec<NodeId> = (0..cfg.inputs)
        .map(|i| net.add_input(format!("pi{i}")).expect("fresh"))
        .collect();

    for k in 0..cfg.nodes {
        let fanin_ct = rng.gen_range(2..=cfg.max_fanin.min(pool.len()).max(2));
        // Bias toward recent signals for depth; occasionally reach far back
        // for reconvergence.
        let mut fanins: Vec<NodeId> = Vec::with_capacity(fanin_ct);
        while fanins.len() < fanin_ct {
            let idx = if rng.gen_bool(0.7) && pool.len() > 4 {
                let lo = pool.len().saturating_sub(8);
                rng.gen_range(lo..pool.len())
            } else {
                rng.gen_range(0..pool.len())
            };
            let cand = pool[idx];
            if !fanins.contains(&cand) {
                fanins.push(cand);
            }
        }
        let w = fanins.len();
        let sop = random_sop(&mut rng, w);
        let id = net.add_logic(format!("n{k}"), fanins, sop).expect("fresh");
        pool.push(id);
    }

    // Outputs: prefer the latest signals (circuit "roots").
    let logic: Vec<NodeId> = pool[cfg.inputs..].to_vec();
    for o in 0..cfg.outputs {
        let src = if logic.is_empty() {
            pool[rng.gen_range(0..pool.len())]
        } else if o == 0 {
            *logic.last().expect("non-empty")
        } else {
            let lo = logic.len().saturating_sub(cfg.outputs * 2);
            logic[rng.gen_range(lo..logic.len())]
        };
        net.add_output(format!("po{o}"), src);
    }
    net.sweep_dangling();
    net.check().expect("generated network is well-formed");
    net
}

/// A random non-constant SOP of the given width.
fn random_sop(rng: &mut StdRng, width: usize) -> Sop {
    loop {
        let ncubes = rng.gen_range(1..=3.min(width + 1));
        let mut cubes = Vec::with_capacity(ncubes);
        for _ in 0..ncubes {
            let mut lits = vec![Lit::Free; width];
            // Every cube binds at least one literal; density ~2/3. Positive
            // phase dominates (~75 %), as in optimized control logic, which
            // skews internal signal probabilities away from 0.5 — the
            // regime where power-aware decomposition and mapping matter.
            let forced = rng.gen_range(0..width);
            for (i, l) in lits.iter_mut().enumerate() {
                if i == forced || rng.gen_bool(0.66) {
                    *l = if rng.gen_bool(0.75) {
                        Lit::Pos
                    } else {
                        Lit::Neg
                    };
                }
            }
            cubes.push(Cube::new(lits));
        }
        let mut sop = Sop::from_cubes(width, cubes);
        sop.make_scc_minimal();
        // Reject constants and single-literal (buffer/inverter) functions.
        if sop.is_tautology() || sop.is_zero() {
            continue;
        }
        if sop.literal_count() < 2 {
            continue;
        }
        return sop;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomNetConfig {
            seed: 42,
            ..Default::default()
        };
        let a = random_network(&cfg);
        let b = random_network(&cfg);
        assert_eq!(netlist::write_blif(&a), netlist::write_blif(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_network(&RandomNetConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_network(&RandomNetConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(netlist::write_blif(&a), netlist::write_blif(&b));
    }

    #[test]
    fn respects_shape_parameters() {
        let cfg = RandomNetConfig {
            inputs: 12,
            outputs: 6,
            nodes: 80,
            max_fanin: 4,
            seed: 7,
        };
        let net = random_network(&cfg);
        assert_eq!(net.inputs().len(), 12);
        assert_eq!(net.outputs().len(), 6);
        assert!(net.logic_count() <= 80);
        assert!(
            net.logic_count() >= 20,
            "pruning should not gut the network"
        );
        for id in net.logic_ids() {
            assert!(net.node(id).fanins().len() <= 4);
        }
    }

    #[test]
    fn generated_networks_are_valid_blif_roundtrips() {
        let mut rng = StdRng::seed_from_u64(99);
        for seed in 0..5 {
            let net = random_network(&RandomNetConfig {
                seed,
                ..Default::default()
            });
            let text = netlist::write_blif(&net);
            let back = netlist::parse_blif(&text).unwrap().network;
            for _ in 0..64 {
                let pis: Vec<bool> = (0..net.inputs().len()).map(|_| rng.gen_bool(0.5)).collect();
                assert_eq!(net.eval_outputs(&pis), back.eval_outputs(&pis));
            }
        }
    }

    #[test]
    fn no_trivial_nodes() {
        let net = random_network(&RandomNetConfig {
            seed: 3,
            nodes: 60,
            ..Default::default()
        });
        for id in net.logic_ids() {
            let sop = net.node(id).sop().unwrap();
            assert!(!sop.is_zero() && !sop.is_tautology());
            assert!(sop.literal_count() >= 2);
        }
    }
}
