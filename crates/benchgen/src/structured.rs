//! Exact constructions of classic combinational circuit shapes.

use netlist::{Cube, Lit, Network, NodeId, Sop};

/// `n`-to-`outputs` line decoder (`cm42a` is `decoder(4, 10)` up to signal
/// naming: a 4-input, 10-output one-of-code decoder).
///
/// # Panics
/// Panics if `outputs > 2^n` or `n == 0`.
pub fn decoder(n: usize, outputs: usize) -> Network {
    assert!(n > 0 && outputs <= 1 << n, "decoder shape out of range");
    let mut net = Network::new(format!("dec{n}x{outputs}"));
    let pis: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    for m in 0..outputs {
        let mut cube = Cube::tautology(n);
        for (i, _) in pis.iter().enumerate() {
            cube.set_lit(i, if m >> i & 1 == 1 { Lit::Pos } else { Lit::Neg });
        }
        let id = net
            .add_logic(format!("y{m}"), pis.clone(), Sop::from_cubes(n, vec![cube]))
            .expect("fresh");
        net.add_output(format!("y{m}"), id);
    }
    net
}

/// `n`-bit ripple-carry adder: inputs `a0..`, `b0..`, `cin`; outputs
/// `s0..`, `cout`.
pub fn ripple_adder(n: usize) -> Network {
    assert!(n > 0, "adder needs at least one bit");
    let mut net = Network::new(format!("add{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let mut carry = net.add_input("cin").expect("fresh");
    for i in 0..n {
        // sum = a ^ b ^ c ; cout = ab + ac + bc
        let sum = net
            .add_logic(
                format!("s{i}"),
                vec![a[i], b[i], carry],
                Sop::parse(3, &["100", "010", "001", "111"]).expect("sop"),
            )
            .expect("fresh");
        net.add_output(format!("s{i}"), sum);
        let cout = net
            .add_logic(
                format!("c{}", i + 1),
                vec![a[i], b[i], carry],
                Sop::parse(3, &["11-", "1-1", "-11"]).expect("sop"),
            )
            .expect("fresh");
        carry = cout;
    }
    net.add_output("cout", carry);
    net
}

/// `n`-bit ALU slice: two data words, 2 select bits; op ∈ {ADD, AND, OR,
/// XOR} selected by `s1 s0`. Outputs `f0..f(n-1)` and `cout`. This is the
/// `alu2`-style workload: arithmetic carry chains mixed with logic ops and
/// output muxing.
pub fn alu(n: usize) -> Network {
    assert!(n > 0, "alu needs at least one bit");
    let mut net = Network::new(format!("alu{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let s0 = net.add_input("s0").expect("fresh");
    let s1 = net.add_input("s1").expect("fresh");
    let mut carry: Option<NodeId> = None;
    for i in 0..n {
        let and_i = net
            .add_logic(
                format!("and{i}"),
                vec![a[i], b[i]],
                Sop::parse(2, &["11"]).expect("sop"),
            )
            .expect("fresh");
        let or_i = net
            .add_logic(
                format!("or{i}"),
                vec![a[i], b[i]],
                Sop::parse(2, &["1-", "-1"]).expect("sop"),
            )
            .expect("fresh");
        let xor_i = net
            .add_logic(
                format!("xor{i}"),
                vec![a[i], b[i]],
                Sop::parse(2, &["10", "01"]).expect("sop"),
            )
            .expect("fresh");
        let (sum_i, cout_i) = match carry {
            None => {
                // half adder on bit 0 when no carry-in yet
                let c = net
                    .add_logic(
                        format!("c{i}"),
                        vec![a[i], b[i]],
                        Sop::parse(2, &["11"]).expect("sop"),
                    )
                    .expect("fresh");
                (xor_i, c)
            }
            Some(cin) => {
                let s = net
                    .add_logic(
                        format!("sum{i}"),
                        vec![a[i], b[i], cin],
                        Sop::parse(3, &["100", "010", "001", "111"]).expect("sop"),
                    )
                    .expect("fresh");
                let c = net
                    .add_logic(
                        format!("c{i}"),
                        vec![a[i], b[i], cin],
                        Sop::parse(3, &["11-", "1-1", "-11"]).expect("sop"),
                    )
                    .expect("fresh");
                (s, c)
            }
        };
        carry = Some(cout_i);
        // 4:1 mux on (s1, s0): 00=sum, 01=and, 10=or, 11=xor
        // f = !s1!s0·sum + !s1 s0·and + s1!s0·or + s1 s0·xor
        let f = net
            .add_logic(
                format!("f{i}"),
                vec![s1, s0, sum_i, and_i, or_i, xor_i],
                Sop::parse(6, &["001---", "01-1--", "10--1-", "11---1"]).expect("sop"),
            )
            .expect("fresh");
        net.add_output(format!("f{i}"), f);
    }
    net.add_output("cout", carry.expect("n > 0"));
    net
}

/// `n`-input parity tree (XOR chain) — a high-switching-activity workload.
pub fn parity(n: usize) -> Network {
    assert!(n >= 2, "parity needs at least two inputs");
    let mut net = Network::new(format!("parity{n}"));
    let pis: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("x{i}")).expect("fresh"))
        .collect();
    let mut acc = pis[0];
    for (i, &pi) in pis.iter().enumerate().skip(1) {
        acc = net
            .add_logic(
                format!("p{i}"),
                vec![acc, pi],
                Sop::parse(2, &["10", "01"]).expect("sop"),
            )
            .expect("fresh");
    }
    net.add_output("parity", acc);
    net
}

/// `n`-bit equality comparator: `eq = AND_i (a_i XNOR b_i)`.
pub fn comparator(n: usize) -> Network {
    assert!(n > 0, "comparator needs at least one bit");
    let mut net = Network::new(format!("cmp{n}"));
    let a: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("a{i}")).expect("fresh"))
        .collect();
    let b: Vec<NodeId> = (0..n)
        .map(|i| net.add_input(format!("b{i}")).expect("fresh"))
        .collect();
    let mut acc: Option<NodeId> = None;
    for i in 0..n {
        let xnor = net
            .add_logic(
                format!("e{i}"),
                vec![a[i], b[i]],
                Sop::parse(2, &["11", "00"]).expect("sop"),
            )
            .expect("fresh");
        acc = Some(match acc {
            None => xnor,
            Some(prev) => net
                .add_logic(
                    format!("acc{i}"),
                    vec![prev, xnor],
                    Sop::parse(2, &["11"]).expect("sop"),
                )
                .expect("fresh"),
        });
    }
    net.add_output("eq", acc.expect("n > 0"));
    net
}

/// Mux tree selecting one of `2^k` data inputs by `k` select lines.
pub fn mux_tree(k: usize) -> Network {
    assert!((1..=6).contains(&k), "mux tree select width out of range");
    let mut net = Network::new(format!("mux{}", 1 << k));
    let sel: Vec<NodeId> = (0..k)
        .map(|i| net.add_input(format!("s{i}")).expect("fresh"))
        .collect();
    let data: Vec<NodeId> = (0..1 << k)
        .map(|i| net.add_input(format!("d{i}")).expect("fresh"))
        .collect();
    let mut layer = data;
    for (level, &s) in sel.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for pair in 0..layer.len() / 2 {
            let m = net
                .add_logic(
                    format!("m{level}_{pair}"),
                    vec![s, layer[2 * pair], layer[2 * pair + 1]],
                    // !s·d0 + s·d1
                    Sop::parse(3, &["01-", "1-1"]).expect("sop"),
                )
                .expect("fresh");
            next.push(m);
        }
        layer = next;
    }
    net.add_output("y", layer[0]);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoder_one_hot() {
        let net = decoder(4, 10);
        net.check().unwrap();
        assert_eq!(net.inputs().len(), 4);
        assert_eq!(net.outputs().len(), 10);
        for v in 0..16u32 {
            let pis: Vec<bool> = (0..4).map(|i| v >> i & 1 == 1).collect();
            let outs = net.eval_outputs(&pis);
            for (m, &o) in outs.iter().enumerate() {
                assert_eq!(o, m as u32 == v, "minterm {m} at value {v}");
            }
        }
    }

    #[test]
    fn adder_adds() {
        let net = ripple_adder(4);
        net.check().unwrap();
        for a in 0..16u32 {
            for b in 0..16u32 {
                for cin in 0..2u32 {
                    let mut pis = Vec::new();
                    pis.extend((0..4).map(|i| a >> i & 1 == 1));
                    pis.extend((0..4).map(|i| b >> i & 1 == 1));
                    pis.push(cin == 1);
                    let outs = net.eval_outputs(&pis);
                    let mut got = 0u32;
                    for (i, &bit) in outs.iter().enumerate().take(5) {
                        if bit {
                            got |= 1 << i;
                        }
                    }
                    assert_eq!(got, a + b + cin, "a={a} b={b} cin={cin}");
                }
            }
        }
    }

    #[test]
    fn alu_ops() {
        let net = alu(2);
        net.check().unwrap();
        for a in 0..4u32 {
            for b in 0..4u32 {
                for op in 0..4u32 {
                    let mut pis = Vec::new();
                    pis.extend((0..2).map(|i| a >> i & 1 == 1));
                    pis.extend((0..2).map(|i| b >> i & 1 == 1));
                    pis.push(op & 1 == 1); // s0
                    pis.push(op >> 1 & 1 == 1); // s1
                    let outs = net.eval_outputs(&pis);
                    let expect = match op {
                        0 => (a + b) & 3,
                        1 => a & b,
                        2 => a | b,
                        _ => a ^ b,
                    };
                    let mut got = 0u32;
                    for (i, &bit) in outs.iter().enumerate().take(2) {
                        if bit {
                            got |= 1 << i;
                        }
                    }
                    assert_eq!(got, expect, "a={a} b={b} op={op}");
                }
            }
        }
    }

    #[test]
    fn parity_is_xor_reduce() {
        let net = parity(5);
        net.check().unwrap();
        for v in 0..32u32 {
            let pis: Vec<bool> = (0..5).map(|i| v >> i & 1 == 1).collect();
            assert_eq!(net.eval_outputs(&pis), vec![v.count_ones() % 2 == 1]);
        }
    }

    #[test]
    fn comparator_detects_equality() {
        let net = comparator(3);
        net.check().unwrap();
        for a in 0..8u32 {
            for b in 0..8u32 {
                let mut pis = Vec::new();
                pis.extend((0..3).map(|i| a >> i & 1 == 1));
                pis.extend((0..3).map(|i| b >> i & 1 == 1));
                assert_eq!(net.eval_outputs(&pis), vec![a == b]);
            }
        }
    }

    #[test]
    fn mux_selects() {
        let net = mux_tree(2);
        net.check().unwrap();
        for sel in 0..4u32 {
            for data in 0..16u32 {
                let mut pis = Vec::new();
                pis.extend((0..2).map(|i| sel >> i & 1 == 1));
                pis.extend((0..4).map(|i| data >> i & 1 == 1));
                assert_eq!(net.eval_outputs(&pis), vec![data >> sel & 1 == 1]);
            }
        }
    }
}
