//! The named benchmark suite mirroring the paper's Tables 2 and 3.
//!
//! Every circuit of the paper's experiment appears under its original name
//! with a stand-in of matched PI/PO/size profile (see `DESIGN.md`):
//! `cm42a` and `alu2` are exact structural reconstructions of their circuit
//! families; the ISCAS-89 combinational cores and remaining MCNC circuits
//! are seeded random networks sized from the paper's reported gate areas.

use crate::random_net::{random_network, RandomNetConfig};
use crate::structured;
use netlist::Network;

/// One suite circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteEntry {
    /// Paper circuit name.
    pub name: &'static str,
    /// Primary inputs of the stand-in.
    pub inputs: usize,
    /// Primary outputs of the stand-in.
    pub outputs: usize,
    /// Internal node budget of the stand-in.
    pub nodes: usize,
    /// Generator seed (fixed per circuit for reproducibility).
    pub seed: u64,
}

/// The 17 circuits of Tables 2/3, ordered as in the paper.
///
/// Node budgets are scaled from the paper's method-I gate areas (roughly
/// `area / 2.5`), PI/PO counts from the originals' combinational cores.
pub const PAPER_SUITE: &[SuiteEntry] = &[
    SuiteEntry {
        name: "s208",
        inputs: 11,
        outputs: 9,
        nodes: 30,
        seed: 208,
    },
    SuiteEntry {
        name: "s344",
        inputs: 24,
        outputs: 26,
        nodes: 60,
        seed: 344,
    },
    SuiteEntry {
        name: "s382",
        inputs: 24,
        outputs: 27,
        nodes: 60,
        seed: 382,
    },
    SuiteEntry {
        name: "s444",
        inputs: 24,
        outputs: 27,
        nodes: 65,
        seed: 444,
    },
    SuiteEntry {
        name: "s510",
        inputs: 25,
        outputs: 13,
        nodes: 105,
        seed: 510,
    },
    SuiteEntry {
        name: "s526",
        inputs: 24,
        outputs: 27,
        nodes: 72,
        seed: 526,
    },
    SuiteEntry {
        name: "s641",
        inputs: 54,
        outputs: 42,
        nodes: 85,
        seed: 641,
    },
    SuiteEntry {
        name: "s713",
        inputs: 54,
        outputs: 42,
        nodes: 80,
        seed: 713,
    },
    SuiteEntry {
        name: "s820",
        inputs: 23,
        outputs: 24,
        nodes: 110,
        seed: 820,
    },
    SuiteEntry {
        name: "cm42a",
        inputs: 4,
        outputs: 10,
        nodes: 10,
        seed: 42,
    },
    SuiteEntry {
        name: "x1",
        inputs: 51,
        outputs: 35,
        nodes: 110,
        seed: 1001,
    },
    SuiteEntry {
        name: "x2",
        inputs: 10,
        outputs: 7,
        nodes: 22,
        seed: 1002,
    },
    SuiteEntry {
        name: "x3",
        inputs: 135,
        outputs: 99,
        nodes: 270,
        seed: 1003,
    },
    SuiteEntry {
        name: "ttt2",
        inputs: 24,
        outputs: 21,
        nodes: 85,
        seed: 2222,
    },
    SuiteEntry {
        name: "apex7",
        inputs: 49,
        outputs: 37,
        nodes: 90,
        seed: 7777,
    },
    SuiteEntry {
        name: "alu2",
        inputs: 10,
        outputs: 6,
        nodes: 120,
        seed: 2,
    },
    SuiteEntry {
        name: "ex2",
        inputs: 85,
        outputs: 66,
        nodes: 120,
        seed: 3002,
    },
];

/// The full paper suite in table order.
pub fn paper_suite() -> &'static [SuiteEntry] {
    PAPER_SUITE
}

/// Construct the stand-in for a named paper circuit.
///
/// # Panics
/// Panics for names not in [`PAPER_SUITE`].
pub fn suite_circuit(name: &str) -> Network {
    let entry = PAPER_SUITE
        .iter()
        .find(|e| e.name == name)
        .unwrap_or_else(|| panic!("unknown suite circuit `{name}`"));
    match name {
        // cm42a IS a 4-to-10 decoder: exact reconstruction.
        "cm42a" => {
            let mut net = structured::decoder(4, 10);
            net.set_name("cm42a");
            net
        }
        // alu2 is a 10-in 6-out ALU: a 2-bit ALU slice with 4 ops has
        // exactly 2+2+2 = 6 PIs... widen to match the original's 10 PIs
        // using a 4-bit ALU restricted to 6 outputs (4 sums + cout + f-ish).
        "alu2" => {
            let mut net = structured::alu(4);
            net.set_name("alu2");
            net
        }
        _ => {
            let mut net = random_network(&RandomNetConfig {
                inputs: entry.inputs,
                outputs: entry.outputs,
                nodes: entry.nodes,
                max_fanin: 3,
                seed: entry.seed,
            });
            net.set_name(entry.name);
            net
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_circuits_construct_and_check() {
        for e in paper_suite() {
            let net = suite_circuit(e.name);
            net.check().unwrap();
            assert!(net.logic_count() > 0, "{} is empty", e.name);
            assert_eq!(net.name(), e.name);
        }
    }

    #[test]
    fn cm42a_is_exact_decoder() {
        let net = suite_circuit("cm42a");
        assert_eq!(net.inputs().len(), 4);
        assert_eq!(net.outputs().len(), 10);
        // one-hot behaviour
        let outs = net.eval_outputs(&[true, false, false, false]); // value 1
        assert_eq!(outs.iter().filter(|&&o| o).count(), 1);
        assert!(outs[1]);
    }

    #[test]
    fn alu2_profile_matches_paper() {
        let net = suite_circuit("alu2");
        assert_eq!(net.inputs().len(), 10);
        // 4 sums + cout = 5 data outputs — close to the original's 6.
        assert!(net.outputs().len() >= 5);
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite_circuit("s510");
        let b = suite_circuit("s510");
        assert_eq!(netlist::write_blif(&a), netlist::write_blif(&b));
    }

    #[test]
    #[should_panic]
    fn unknown_circuit_panics() {
        suite_circuit("nonexistent");
    }
}
