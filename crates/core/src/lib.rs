//! Power-efficient technology decomposition and mapping.
//!
//! This crate is the reproduction of the paper's primary contribution
//! (Tsui, Pedram, Despain, *Technology Decomposition and Mapping Targeting
//! Low Power Dissipation*, DAC 1993):
//!
//! * [`decomp`] — Section 2: MINPOWER tree decomposition (Huffman for
//!   quasi-linear merge functions, Modified Huffman for general ones),
//!   BOUNDED-HEIGHT MINPOWER (package-merge and feasibility-guarded
//!   greedy), and the network-level NAND decomposition with slack
//!   distribution.
//! * [`map`] — Section 3: power-efficient technology mapping with
//!   power-delay curves, pin-dependent delays, the unknown-load
//!   recalculation and the DAG heuristics.
//! * [`power`] — reporting: area / delay / average power of mapped
//!   networks under the paper's 5 V / 20 MHz environment.
//!
//! # Example: Figure 1 of the paper
//!
//! ```
//! use lowpower_core::decomp::{minpower_tree, DecompObjective, GateKind};
//! use activity::TransitionModel;
//!
//! // Decompose a 4-input AND with P = (0.3, 0.4, 0.7, 0.5), domino p-type.
//! let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
//! let tree = minpower_tree(&[0.3, 0.4, 0.7, 0.5], obj);
//! // Huffman finds the optimum 0.222 internal switching — better than both
//! // configurations shown in the paper's Figure 1 (0.246 and 0.512).
//! assert!((tree.internal_cost(obj) - 0.222).abs() < 1e-9);
//! ```

pub mod decomp;
pub mod map;
pub mod power;
