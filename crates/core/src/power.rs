//! Post-mapping evaluation: area, delay, average power of a mapped netlist.
//!
//! This is the reporting stage of the experiments (the Ghosh-style power
//! estimation under the zero-delay model): exact signal probabilities are
//! carried through the mapper, actual pin loads replace the unknown-load
//! default, and static timing uses the pin-dependent library delay model
//! (eq. 14).

use crate::map::mapper::{MappedNetwork, NetRef};
use activity::{PowerEnv, TransitionModel};
use genlib::Library;
use rand::Rng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Evaluation of one mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedReport {
    /// Total cell area.
    pub area: f64,
    /// Critical-path delay, ns (pin-dependent model, actual loads).
    pub delay: f64,
    /// Average power, µW (eq. 1, summed over all nets).
    pub power_uw: f64,
    /// Number of gate instances.
    pub gate_count: usize,
}

/// Evaluate a mapped netlist.
///
/// `po_load` is the capacitive load (in load units) attached to every
/// primary output net.
pub fn evaluate(
    m: &MappedNetwork,
    lib: &Library,
    env: &PowerEnv,
    model: TransitionModel,
    po_load: f64,
) -> MappedReport {
    let n_pi = m.pi_names.len();
    let n_inst = m.instances.len();
    // loads[0..n_pi] = PI nets, loads[n_pi..] = instance output nets.
    let slot = |r: &NetRef| match r {
        NetRef::Pi(i) => *i,
        NetRef::Inst(i) => n_pi + *i,
    };
    let mut load = vec![0.0f64; n_pi + n_inst];
    for inst in &m.instances {
        let gate = &lib.gates()[inst.gate];
        for (pin_idx, r) in inst.inputs.iter().enumerate() {
            load[slot(r)] += gate.pin(pin_idx).input_cap;
        }
    }
    for (_, r) in &m.outputs {
        load[slot(r)] += po_load;
    }

    // Static timing: instances are in topological order.
    let mut arrival = vec![0.0f64; n_pi + n_inst];
    for (i, inst) in m.instances.iter().enumerate() {
        let gate = &lib.gates()[inst.gate];
        let out_load = load[n_pi + i];
        let mut t = 0.0f64;
        for (pin_idx, r) in inst.inputs.iter().enumerate() {
            let pin = gate.pin(pin_idx);
            t = t.max(arrival[slot(r)] + pin.intrinsic + pin.drive * out_load);
        }
        arrival[n_pi + i] = t;
    }
    let delay = m
        .outputs
        .iter()
        .map(|(_, r)| arrival[slot(r)])
        .fold(0.0, f64::max);

    // Power: every gate-output net switches its load (eq. 1). Primary-input
    // nets are excluded — their charge is dissipated in the external
    // drivers, as in the paper's estimator, which reports the power of the
    // synthesized gates.
    let mut power_uw = 0.0;
    for (i, inst) in m.instances.iter().enumerate() {
        power_uw += env.average_power_uw(load[n_pi + i], model.switching(inst.p_one));
    }

    let area = m.instances.iter().map(|i| lib.gates()[i.gate].area()).sum();
    MappedReport {
        area,
        delay,
        power_uw,
        gate_count: m.instances.len(),
    }
}

/// Result of glitch-aware power simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlitchReport {
    /// Average power in µW including glitch transitions.
    pub power_uw: f64,
    /// Average transitions per net per cycle (glitches included).
    pub avg_transitions: f64,
    /// Number of vector pairs simulated.
    pub vector_pairs: usize,
}

/// Estimate average power by **event-driven timing simulation** with the
/// pin-dependent library delay model — the stand-in for the Ghosh et al.
/// estimator the paper uses for its reported numbers ("a general delay
/// model which correctly computes the Boolean conditions that cause
/// glitchings"). Unlike [`evaluate`] (zero-delay), this counts glitch
/// transitions caused by unequal path delays, which power-aware mapping
/// reduces by hiding unbalanced logic inside complex gates.
///
/// Transport-delay semantics: every input event propagates with its pin's
/// `τ + R·C_load`; output events that do not change the settled net value
/// are dropped at delivery time (approximate inertial filtering).
///
/// # Panics
/// Panics if `pi_probs.len()` differs from the PI count or `vectors < 2`.
pub fn simulate_glitch_power<R: Rng>(
    m: &MappedNetwork,
    lib: &Library,
    env: &PowerEnv,
    pi_probs: &[f64],
    vectors: usize,
    rng: &mut R,
    po_load: f64,
) -> GlitchReport {
    assert_eq!(
        pi_probs.len(),
        m.pi_names.len(),
        "PI probability count mismatch"
    );
    assert!(vectors >= 2, "need at least two vectors");
    let n_pi = m.pi_names.len();
    let n_net = n_pi + m.instances.len();
    let slot = |r: &NetRef| match r {
        NetRef::Pi(i) => *i,
        NetRef::Inst(i) => n_pi + *i,
    };
    // loads and consumer lists
    let mut load = vec![0.0f64; n_net];
    let mut consumers: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n_net];
    for (ii, inst) in m.instances.iter().enumerate() {
        let gate = &lib.gates()[inst.gate];
        for (pin_idx, r) in inst.inputs.iter().enumerate() {
            load[slot(r)] += gate.pin(pin_idx).input_cap;
            consumers[slot(r)].push((ii, pin_idx));
        }
    }
    for (_, r) in &m.outputs {
        load[slot(r)] += po_load;
    }

    // settled zero-delay evaluation for the initial state
    let eval_settled = |pis: &[bool]| -> Vec<bool> {
        let mut v = vec![false; n_net];
        v[..n_pi].copy_from_slice(pis);
        for (ii, inst) in m.instances.iter().enumerate() {
            let ins: Vec<bool> = inst.inputs.iter().map(|r| v[slot(r)]).collect();
            v[n_pi + ii] = lib.gates()[inst.gate].eval(&ins);
        }
        v
    };

    let draw = |rng: &mut R| -> Vec<bool> {
        pi_probs
            .iter()
            .map(|&p| rng.gen_bool(p.clamp(0.0, 1.0)))
            .collect()
    };

    let mut transitions = vec![0u64; n_net];
    let mut cur = eval_settled(&draw(rng));
    // femtosecond integer timestamps keep the heap totally ordered
    let to_fs = |t_ns: f64| -> u64 { (t_ns * 1.0e6) as u64 };
    let event_cap = 200 * n_net; // runaway guard (oscillation is impossible
                                 // in a DAG, but glitch trains can be long)
    for _ in 0..vectors - 1 {
        let next = draw(rng);
        let mut heap: BinaryHeap<Reverse<(u64, usize, bool)>> = BinaryHeap::new();
        for (i, (&nv, cv)) in next.iter().zip(cur[..n_pi].to_vec()).enumerate() {
            if nv != cv {
                heap.push(Reverse((0, i, nv)));
            }
        }
        let mut budget = event_cap;
        while let Some(Reverse((t, net, value))) = heap.pop() {
            if cur[net] == value {
                continue;
            }
            cur[net] = value;
            transitions[net] += 1;
            budget -= 1;
            if budget == 0 {
                break;
            }
            for &(ii, pin_idx) in &consumers[net] {
                let inst = &m.instances[ii];
                let gate = &lib.gates()[inst.gate];
                let ins: Vec<bool> = inst.inputs.iter().map(|r| cur[slot(r)]).collect();
                let out = gate.eval(&ins);
                let pin = gate.pin(pin_idx);
                let d = pin.intrinsic + pin.drive * load[n_pi + ii];
                heap.push(Reverse((t + to_fs(d), n_pi + ii, out)));
            }
        }
        // make sure the state is fully settled before the next pair
        cur = eval_settled(&next);
    }

    let pairs = vectors - 1;
    let mut power_uw = 0.0;
    let mut total_e = 0.0;
    // Gate-output nets only; PI nets are charged to their external drivers.
    for (i, &c) in transitions.iter().enumerate().skip(n_pi) {
        let e = c as f64 / pairs as f64;
        total_e += e;
        power_uw += env.average_power_uw(load[i], e);
    }
    let gate_nets = (n_net - n_pi).max(1);
    GlitchReport {
        power_uw,
        avg_transitions: total_e / gate_nets as f64,
        vector_pairs: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::mapper::{map_network, MapOptions};
    use crate::map::subject::SubjectAig;
    use activity::analyze;
    use genlib::builtin::lib2_like;
    use netlist::parse_blif;

    fn mapped(blif: &str, probs: &[f64], opts: &MapOptions) -> (MappedNetwork, Library) {
        let net = parse_blif(blif).unwrap().network;
        let act = analyze(&net, probs, TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        let lib = lib2_like();
        let m = map_network(&aig, &lib, opts).unwrap();
        (m, lib)
    }

    use genlib::Library;

    const SAMPLE: &str = ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
                          .names x c f\n1- 1\n-1 1\n.end\n";

    #[test]
    fn report_is_positive_and_consistent() {
        let (m, lib) = mapped(SAMPLE, &[0.5; 3], &MapOptions::power());
        let rep = evaluate(&m, &lib, &PowerEnv::new(), TransitionModel::StaticCmos, 1.0);
        assert!(rep.area > 0.0);
        assert!(rep.delay > 0.0);
        assert!(rep.power_uw > 0.0);
        assert_eq!(rep.gate_count, m.instances.len());
    }

    #[test]
    fn zero_activity_inputs_give_near_zero_power() {
        // P(pi)=1 for all inputs: static switching = 0 everywhere.
        let (m, lib) = mapped(SAMPLE, &[1.0, 1.0, 1.0], &MapOptions::power());
        let rep = evaluate(&m, &lib, &PowerEnv::new(), TransitionModel::StaticCmos, 1.0);
        assert!(rep.power_uw.abs() < 1e-9, "power {}", rep.power_uw);
    }

    #[test]
    fn heavier_po_load_means_more_power_and_delay() {
        let (m, lib) = mapped(SAMPLE, &[0.5; 3], &MapOptions::power());
        let env = PowerEnv::new();
        let light = evaluate(&m, &lib, &env, TransitionModel::StaticCmos, 1.0);
        let heavy = evaluate(&m, &lib, &env, TransitionModel::StaticCmos, 5.0);
        assert!(heavy.power_uw > light.power_uw);
        assert!(heavy.delay >= light.delay);
    }

    #[test]
    fn glitch_power_at_least_zero_delay_power() {
        use rand::SeedableRng;
        // Unequal path depths feed an AND: glitches add transitions, so the
        // simulated power must be >= (approximately) the zero-delay power.
        let blif = ".model t\n.inputs a b c d\n.outputs f\n\
                    .names a b x\n11 1\n.names x c y\n1- 1\n-1 1\n\
                    .names y d f\n11 1\n.end\n";
        let (m, lib) = mapped(blif, &[0.5; 4], &MapOptions::area());
        let env = PowerEnv::new();
        let zero = evaluate(&m, &lib, &env, TransitionModel::StaticCmos, 1.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        let g = simulate_glitch_power(&m, &lib, &env, &[0.5; 4], 4000, &mut rng, 1.0);
        assert!(
            g.power_uw > zero.power_uw * 0.9,
            "glitch {} vs zero-delay {}",
            g.power_uw,
            zero.power_uw
        );
        assert_eq!(g.vector_pairs, 3999);
    }

    #[test]
    fn glitch_power_deterministic_in_seed() {
        use rand::SeedableRng;
        let (m, lib) = mapped(SAMPLE, &[0.5; 3], &MapOptions::power());
        let env = PowerEnv::new();
        let mut r1 = rand::rngs::StdRng::seed_from_u64(5);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(5);
        let a = simulate_glitch_power(&m, &lib, &env, &[0.5; 3], 500, &mut r1, 1.0);
        let b = simulate_glitch_power(&m, &lib, &env, &[0.5; 3], 500, &mut r2, 1.0);
        assert_eq!(a, b);
    }

    #[test]
    fn constant_inputs_no_glitch_power() {
        use rand::SeedableRng;
        let (m, lib) = mapped(SAMPLE, &[1.0, 1.0, 1.0], &MapOptions::power());
        let env = PowerEnv::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = simulate_glitch_power(&m, &lib, &env, &[1.0; 3], 100, &mut rng, 1.0);
        assert_eq!(g.power_uw, 0.0);
    }

    #[test]
    fn domino_models_change_power() {
        let (m, lib) = mapped(SAMPLE, &[0.3, 0.3, 0.3], &MapOptions::power());
        let env = PowerEnv::new();
        let p = evaluate(&m, &lib, &env, TransitionModel::DominoP, 1.0);
        let n = evaluate(&m, &lib, &env, TransitionModel::DominoN, 1.0);
        assert!(p.power_uw != n.power_uw);
    }
}
