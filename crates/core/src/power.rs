//! Post-mapping evaluation: area, delay, average power of a mapped netlist.
//!
//! This is the reporting stage of the experiments (the Ghosh-style power
//! estimation under the zero-delay model): exact signal probabilities are
//! carried through the mapper, actual pin loads replace the unknown-load
//! default, and static timing uses the pin-dependent library delay model
//! (eq. 14).

use crate::map::mapper::{MappedNetwork, NetRef};
use activity::{PowerEnv, TransitionModel};
use genlib::Library;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Evaluation of one mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappedReport {
    /// Total cell area.
    pub area: f64,
    /// Critical-path delay, ns (pin-dependent model, actual loads).
    pub delay: f64,
    /// Average power, µW (eq. 1, summed over all nets).
    pub power_uw: f64,
    /// Number of gate instances.
    pub gate_count: usize,
}

/// Evaluate a mapped netlist.
///
/// `po_load` is the capacitive load (in load units) attached to every
/// primary output net.
pub fn evaluate(
    m: &MappedNetwork,
    lib: &Library,
    env: &PowerEnv,
    model: TransitionModel,
    po_load: f64,
) -> MappedReport {
    let n_pi = m.pi_names.len();
    let n_inst = m.instances.len();
    // loads[0..n_pi] = PI nets, loads[n_pi..] = instance output nets.
    let slot = |r: &NetRef| match r {
        NetRef::Pi(i) => *i,
        NetRef::Inst(i) => n_pi + *i,
    };
    let mut load = vec![0.0f64; n_pi + n_inst];
    for inst in &m.instances {
        let gate = &lib.gates()[inst.gate];
        for (pin_idx, r) in inst.inputs.iter().enumerate() {
            load[slot(r)] += gate.pin(pin_idx).input_cap;
        }
    }
    for (_, r) in &m.outputs {
        load[slot(r)] += po_load;
    }

    // Static timing: instances are in topological order.
    let mut arrival = vec![0.0f64; n_pi + n_inst];
    for (i, inst) in m.instances.iter().enumerate() {
        let gate = &lib.gates()[inst.gate];
        let out_load = load[n_pi + i];
        let mut t = 0.0f64;
        for (pin_idx, r) in inst.inputs.iter().enumerate() {
            let pin = gate.pin(pin_idx);
            t = t.max(arrival[slot(r)] + pin.intrinsic + pin.drive * out_load);
        }
        arrival[n_pi + i] = t;
    }
    let delay = m
        .outputs
        .iter()
        .map(|(_, r)| arrival[slot(r)])
        .fold(0.0, f64::max);

    // Power: every gate-output net switches its load (eq. 1). Primary-input
    // nets are excluded — their charge is dissipated in the external
    // drivers, as in the paper's estimator, which reports the power of the
    // synthesized gates.
    let power_uw = per_instance_power(m, lib, env, model, po_load).iter().sum();

    let area = m.instances.iter().map(|i| lib.gates()[i.gate].area()).sum();
    MappedReport {
        area,
        delay,
        power_uw,
        gate_count: m.instances.len(),
    }
}

/// Zero-delay average power of each gate instance, µW, in instance order.
///
/// The same eq. 1 estimator as [`evaluate`] — `evaluate`'s `power_uw` is
/// exactly the sum of this vector — exposed separately so per-gate power
/// can be attributed back to source nodes (QoR provenance breakdowns).
pub fn per_instance_power(
    m: &MappedNetwork,
    lib: &Library,
    env: &PowerEnv,
    model: TransitionModel,
    po_load: f64,
) -> Vec<f64> {
    let n_pi = m.pi_names.len();
    let slot = |r: &NetRef| match r {
        NetRef::Pi(i) => *i,
        NetRef::Inst(i) => n_pi + *i,
    };
    let mut load = vec![0.0f64; n_pi + m.instances.len()];
    for inst in &m.instances {
        let gate = &lib.gates()[inst.gate];
        for (pin_idx, r) in inst.inputs.iter().enumerate() {
            load[slot(r)] += gate.pin(pin_idx).input_cap;
        }
    }
    for (_, r) in &m.outputs {
        load[slot(r)] += po_load;
    }
    m.instances
        .iter()
        .enumerate()
        .map(|(i, inst)| env.average_power_uw(load[n_pi + i], model.switching(inst.p_one)))
        .collect()
}

/// Result of glitch-aware power simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlitchReport {
    /// Average power in µW including glitch transitions.
    pub power_uw: f64,
    /// Average transitions per net per cycle (glitches included).
    pub avg_transitions: f64,
    /// Number of vector pairs simulated.
    pub vector_pairs: usize,
}

/// Immutable per-run context of the glitch simulation, shared by every
/// worker thread.
struct GlitchCtx<'a> {
    m: &'a MappedNetwork,
    lib: &'a Library,
    pi_probs: &'a [f64],
    seed: u64,
    n_pi: usize,
    n_net: usize,
    /// Capacitive load per net (PI nets first, then instance outputs).
    load: Vec<f64>,
    /// `(instance, pin)` consumers per net.
    consumers: Vec<Vec<(usize, usize)>>,
}

impl GlitchCtx<'_> {
    fn slot(&self, r: &NetRef) -> usize {
        match r {
            NetRef::Pi(i) => *i,
            NetRef::Inst(i) => self.n_pi + *i,
        }
    }

    /// Input vector `v` of the seeded stream: a pure function of
    /// `(seed, v)`, so any worker can draw any vector independently.
    fn vector(&self, v: usize) -> Vec<bool> {
        let mut rng = SmallRng::seed_from_u64(par::split_seed(self.seed, v as u64));
        self.pi_probs
            .iter()
            .map(|&p| rng.gen_bool(p.clamp(0.0, 1.0)))
            .collect()
    }

    /// Settled zero-delay evaluation for a pair's initial state.
    fn eval_settled(&self, pis: &[bool]) -> Vec<bool> {
        let mut v = vec![false; self.n_net];
        v[..self.n_pi].copy_from_slice(pis);
        for (ii, inst) in self.m.instances.iter().enumerate() {
            let ins: Vec<bool> = inst.inputs.iter().map(|r| v[self.slot(r)]).collect();
            v[self.n_pi + ii] = self.lib.gates()[inst.gate].eval(&ins);
        }
        v
    }

    /// Event-driven simulation of vector pairs `[range.start, range.end)`
    /// (pair `p` transitions from vector `p` to vector `p + 1`), counting
    /// transitions per net. Pairs are independent — the serial algorithm
    /// re-settles the state between pairs anyway — so any partition of the
    /// pair space counts exactly the same transitions.
    fn simulate_pairs(&self, range: std::ops::Range<usize>) -> Vec<u64> {
        let mut transitions = vec![0u64; self.n_net];
        if range.is_empty() {
            return transitions;
        }
        // Pair and event tallies are per-range sums, so the totals are
        // invariant under any partition of the pair space (thread counts).
        obs::counter!("power.glitch.pairs", range.len() as u64);
        // femtosecond integer timestamps keep the heap totally ordered
        let to_fs = |t_ns: f64| -> u64 { (t_ns * 1.0e6) as u64 };
        let event_cap = 200 * self.n_net; // runaway guard (oscillation is
                                          // impossible in a DAG, but glitch
                                          // trains can be long)
        let mut cur = self.eval_settled(&self.vector(range.start));
        let mut heap: BinaryHeap<Reverse<(u64, usize, bool)>> = BinaryHeap::new();
        for p in range {
            let next = self.vector(p + 1);
            heap.clear();
            for (i, (&nv, cv)) in next.iter().zip(cur[..self.n_pi].to_vec()).enumerate() {
                if nv != cv {
                    heap.push(Reverse((0, i, nv)));
                }
            }
            let mut budget = event_cap;
            while let Some(Reverse((t, net, value))) = heap.pop() {
                if cur[net] == value {
                    continue;
                }
                cur[net] = value;
                transitions[net] += 1;
                budget -= 1;
                if budget == 0 {
                    break;
                }
                for &(ii, pin_idx) in &self.consumers[net] {
                    let inst = &self.m.instances[ii];
                    let gate = &self.lib.gates()[inst.gate];
                    let ins: Vec<bool> = inst.inputs.iter().map(|r| cur[self.slot(r)]).collect();
                    let out = gate.eval(&ins);
                    let pin = gate.pin(pin_idx);
                    let d = pin.intrinsic + pin.drive * self.load[self.n_pi + ii];
                    heap.push(Reverse((t + to_fs(d), self.n_pi + ii, out)));
                }
            }
            // make sure the state is fully settled before the next pair
            cur = self.eval_settled(&next);
        }
        obs::counter!("power.glitch.events", transitions.iter().sum::<u64>());
        transitions
    }
}

/// Estimate average power by **event-driven timing simulation** with the
/// pin-dependent library delay model — the stand-in for the Ghosh et al.
/// estimator the paper uses for its reported numbers ("a general delay
/// model which correctly computes the Boolean conditions that cause
/// glitchings"). Unlike [`evaluate`] (zero-delay), this counts glitch
/// transitions caused by unequal path delays, which power-aware mapping
/// reduces by hiding unbalanced logic inside complex gates.
///
/// Transport-delay semantics: every input event propagates with its pin's
/// `τ + R·C_load`; output events that do not change the settled net value
/// are dropped at delivery time (approximate inertial filtering).
///
/// The vector stream is seed-split per vector index
/// ([`par::split_seed`]), and the `vectors - 1` pairs run chunked on up to
/// `threads` workers with the integer transition tallies merged in chunk
/// order — the report is bit-identical at every thread count.
///
/// # Panics
/// Panics if `pi_probs.len()` differs from the PI count or `vectors < 2`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_glitch_power(
    m: &MappedNetwork,
    lib: &Library,
    env: &PowerEnv,
    pi_probs: &[f64],
    vectors: usize,
    seed: u64,
    po_load: f64,
    threads: usize,
) -> GlitchReport {
    assert_eq!(
        pi_probs.len(),
        m.pi_names.len(),
        "PI probability count mismatch"
    );
    assert!(vectors >= 2, "need at least two vectors");
    let n_pi = m.pi_names.len();
    let n_net = n_pi + m.instances.len();
    let mut ctx = GlitchCtx {
        m,
        lib,
        pi_probs,
        seed,
        n_pi,
        n_net,
        load: vec![0.0f64; n_net],
        consumers: vec![Vec::new(); n_net],
    };
    for (ii, inst) in m.instances.iter().enumerate() {
        let gate = &lib.gates()[inst.gate];
        for (pin_idx, r) in inst.inputs.iter().enumerate() {
            let s = ctx.slot(r);
            ctx.load[s] += gate.pin(pin_idx).input_cap;
            ctx.consumers[s].push((ii, pin_idx));
        }
    }
    for (_, r) in &m.outputs {
        let s = ctx.slot(r);
        ctx.load[s] += po_load;
    }

    let pairs = vectors - 1;
    let ranges = par::split_ranges(pairs, threads.max(1) * 4);
    let transitions = par::chunked_reduce(
        threads,
        ranges.len(),
        |i| ctx.simulate_pairs(ranges[i].clone()),
        |acc, chunk| {
            for (a, c) in acc.iter_mut().zip(chunk) {
                *a += c;
            }
        },
    )
    .unwrap_or_else(|| vec![0u64; n_net]);

    let mut power_uw = 0.0;
    let mut total_e = 0.0;
    // Gate-output nets only; PI nets are charged to their external drivers.
    for (i, &c) in transitions.iter().enumerate().skip(n_pi) {
        let e = c as f64 / pairs as f64;
        total_e += e;
        power_uw += env.average_power_uw(ctx.load[i], e);
    }
    let gate_nets = (n_net - n_pi).max(1);
    GlitchReport {
        power_uw,
        avg_transitions: total_e / gate_nets as f64,
        vector_pairs: pairs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::mapper::{map_network, MapOptions};
    use crate::map::subject::SubjectAig;
    use activity::analyze;
    use genlib::builtin::lib2_like;
    use netlist::parse_blif;

    fn mapped(blif: &str, probs: &[f64], opts: &MapOptions) -> (MappedNetwork, Library) {
        let net = parse_blif(blif).unwrap().network;
        let act = analyze(&net, probs, TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        let lib = lib2_like();
        let m = map_network(&aig, &lib, opts).unwrap();
        (m, lib)
    }

    use genlib::Library;

    const SAMPLE: &str = ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
                          .names x c f\n1- 1\n-1 1\n.end\n";

    #[test]
    fn report_is_positive_and_consistent() {
        let (m, lib) = mapped(SAMPLE, &[0.5; 3], &MapOptions::power());
        let rep = evaluate(&m, &lib, &PowerEnv::new(), TransitionModel::StaticCmos, 1.0);
        assert!(rep.area > 0.0);
        assert!(rep.delay > 0.0);
        assert!(rep.power_uw > 0.0);
        assert_eq!(rep.gate_count, m.instances.len());
    }

    #[test]
    fn zero_activity_inputs_give_near_zero_power() {
        // P(pi)=1 for all inputs: static switching = 0 everywhere.
        let (m, lib) = mapped(SAMPLE, &[1.0, 1.0, 1.0], &MapOptions::power());
        let rep = evaluate(&m, &lib, &PowerEnv::new(), TransitionModel::StaticCmos, 1.0);
        assert!(rep.power_uw.abs() < 1e-9, "power {}", rep.power_uw);
    }

    #[test]
    fn heavier_po_load_means_more_power_and_delay() {
        let (m, lib) = mapped(SAMPLE, &[0.5; 3], &MapOptions::power());
        let env = PowerEnv::new();
        let light = evaluate(&m, &lib, &env, TransitionModel::StaticCmos, 1.0);
        let heavy = evaluate(&m, &lib, &env, TransitionModel::StaticCmos, 5.0);
        assert!(heavy.power_uw > light.power_uw);
        assert!(heavy.delay >= light.delay);
    }

    #[test]
    fn glitch_power_at_least_zero_delay_power() {
        // Unequal path depths feed an AND: glitches add transitions, so the
        // simulated power must be >= (approximately) the zero-delay power.
        let blif = ".model t\n.inputs a b c d\n.outputs f\n\
                    .names a b x\n11 1\n.names x c y\n1- 1\n-1 1\n\
                    .names y d f\n11 1\n.end\n";
        let (m, lib) = mapped(blif, &[0.5; 4], &MapOptions::area());
        let env = PowerEnv::new();
        let zero = evaluate(&m, &lib, &env, TransitionModel::StaticCmos, 1.0);
        let g = simulate_glitch_power(&m, &lib, &env, &[0.5; 4], 4000, 17, 1.0, 1);
        assert!(
            g.power_uw > zero.power_uw * 0.9,
            "glitch {} vs zero-delay {}",
            g.power_uw,
            zero.power_uw
        );
        assert_eq!(g.vector_pairs, 3999);
    }

    #[test]
    fn glitch_power_deterministic_in_seed() {
        let (m, lib) = mapped(SAMPLE, &[0.5; 3], &MapOptions::power());
        let env = PowerEnv::new();
        let a = simulate_glitch_power(&m, &lib, &env, &[0.5; 3], 500, 5, 1.0, 1);
        let b = simulate_glitch_power(&m, &lib, &env, &[0.5; 3], 500, 5, 1.0, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn glitch_power_thread_invariant() {
        let (m, lib) = mapped(SAMPLE, &[0.4, 0.5, 0.6], &MapOptions::power());
        let env = PowerEnv::new();
        // Off-multiple pair counts stress the range partitioning.
        for vectors in [2usize, 5, 500, 601] {
            let base = simulate_glitch_power(&m, &lib, &env, &[0.4, 0.5, 0.6], vectors, 9, 1.0, 1);
            for threads in [2usize, 4, 7] {
                let par = simulate_glitch_power(
                    &m,
                    &lib,
                    &env,
                    &[0.4, 0.5, 0.6],
                    vectors,
                    9,
                    1.0,
                    threads,
                );
                assert_eq!(base, par, "{vectors} vectors, {threads} threads");
            }
        }
    }

    #[test]
    fn constant_inputs_no_glitch_power() {
        let (m, lib) = mapped(SAMPLE, &[1.0, 1.0, 1.0], &MapOptions::power());
        let env = PowerEnv::new();
        let g = simulate_glitch_power(&m, &lib, &env, &[1.0; 3], 100, 7, 1.0, 2);
        assert_eq!(g.power_uw, 0.0);
    }

    #[test]
    fn domino_models_change_power() {
        let (m, lib) = mapped(SAMPLE, &[0.3, 0.3, 0.3], &MapOptions::power());
        let env = PowerEnv::new();
        let p = evaluate(&m, &lib, &env, TransitionModel::DominoP, 1.0);
        let n = evaluate(&m, &lib, &env, TransitionModel::DominoN, 1.0);
        assert!(p.power_uw != n.power_uw);
    }
}
