//! Power-efficient technology mapping (Section 3 of the paper).
//!
//! The mapper follows the Chaudhary–Pedram curve paradigm with the paper's
//! power objective:
//!
//! 1. [`subject`] — the decomposed network is converted to a subject AIG
//!    (2-input AND nodes + complemented edges); every node carries its
//!    exact zero-delay signal probability.
//! 2. [`pattern`] — library gates are compiled into AIG pattern trees by
//!    enumerating the binary shapes of their AND/OR expressions.
//! 3. [`matcher`] — structural matching of patterns at subject nodes with
//!    phase bookkeeping: non-inverting-root patterns contribute to a node's
//!    positive curve, inverting-root patterns to its negative curve.
//! 4. [`curve`] — monotone non-increasing (arrival, cost) curves of
//!    non-inferior points with ε-pruning (§3.1).
//! 5. [`mapper`] — postorder curve computation (`Method 1` power
//!    bookkeeping, eq. 15; pin-dependent delays, eq. 14; unknown-load
//!    default with drive-based recalculation), preorder gate selection
//!    under required times, and the §3.3 DAG heuristics (fanout-count cost
//!    division, remapping on timing violation).
//!
//! The same machinery with an area cost function is the `ad-map` baseline
//! (methods I–III of the experiments).

pub mod curve;
pub mod mapper;
pub mod matcher;
pub mod output;
pub mod pattern;
pub mod subject;

pub use curve::{Curve, CurveDefect, Point};
pub use mapper::{map_network, MapObjective, MapOptions, MappedNetwork, PowerMethod};
pub use matcher::{Match, Matcher};
pub use pattern::PatternSet;
pub use subject::{MapError, Signal, SubjectAig};
