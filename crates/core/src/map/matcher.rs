//! Structural pattern matching on the subject AIG.

use crate::map::pattern::{PatEdge, PatNode, PatternSet};
use crate::map::subject::{AigNode, Signal, SubjectAig};

/// A successful match of a gate pattern at a subject node.
#[derive(Debug, Clone, PartialEq)]
pub struct Match {
    /// Library gate index.
    pub gate: usize,
    /// True when the match implements the complement of the node output
    /// (contributes to the negative-phase curve).
    pub root_compl: bool,
    /// For each gate input pin, the subject signal bound to it.
    pub pin_bindings: Vec<Signal>,
}

/// Reusable match-finding state: the mapper walks every AIG node in
/// postorder, and allocating a fresh match vector and binding buffer per
/// node dominated the matching cost. One `Matcher` lives for a whole
/// mapping run; its buffers are cleared, never reallocated, between nodes.
#[derive(Debug, Default)]
pub struct Matcher {
    out: Vec<Match>,
    bindings: Vec<Option<Signal>>,
}

impl Matcher {
    /// Fresh matcher with empty scratch.
    pub fn new() -> Matcher {
        Matcher::default()
    }

    /// Find all matches of all patterns rooted at AIG node `node`. The
    /// returned slice borrows this matcher's scratch and is valid until
    /// the next call.
    ///
    /// Phase rule: a pattern with `root_compl = false` implements the node
    /// output itself; with `root_compl = true` it implements the
    /// complement.
    pub fn matches_at(&mut self, aig: &SubjectAig, ps: &PatternSet, node: u32) -> &[Match] {
        self.out.clear();
        let AigNode::And { .. } = aig.nodes()[node as usize] else {
            return &self.out;
        };
        let out = &mut self.out;
        let bindings = &mut self.bindings;
        for pat in ps.patterns() {
            obs::counter!("map.matcher.attempts");
            // patterns are independent; bindings reset per pattern
            bindings.clear();
            bindings.resize(pat.pin_count, None);
            match_node(aig, &pat.root, node, bindings, &mut |b| {
                // All pins of the gate must be bound (patterns bind every
                // pin of a well-formed gate function).
                if b.iter().all(Option::is_some) {
                    let m = Match {
                        gate: pat.gate,
                        root_compl: pat.root_compl,
                        pin_bindings: b.iter().map(|s| s.expect("checked")).collect(),
                    };
                    if !out.contains(&m) {
                        obs::counter!("map.matcher.matches");
                        out.push(m);
                    }
                }
            });
        }
        &self.out
    }
}

/// One-shot convenience over [`Matcher::matches_at`] for tests and callers
/// outside the postorder hot loop.
pub fn matches_at(aig: &SubjectAig, ps: &PatternSet, node: u32) -> Vec<Match> {
    let mut m = Matcher::new();
    m.matches_at(aig, ps, node);
    m.out
}

/// Try to match pattern AND-node `pn` at subject AND node `s`, exploring
/// both child orderings; calls `emit` for every complete assignment.
fn match_node(
    aig: &SubjectAig,
    pn: &PatNode,
    s: u32,
    bindings: &mut Vec<Option<Signal>>,
    emit: &mut dyn FnMut(&Vec<Option<Signal>>),
) {
    let PatNode::And(pl, pr) = pn else {
        return; // leaf-rooted patterns are handled as inverters/buffers
    };
    let AigNode::And { a, b } = aig.nodes()[s as usize] else {
        return;
    };
    for (sa, sb) in [(a, b), (b, a)] {
        let mut trail: Vec<usize> = Vec::new();
        if bind_edge(aig, pl, sa, bindings, &mut trail) {
            let mut trail2: Vec<usize> = Vec::new();
            if bind_edge(aig, pr, sb, bindings, &mut trail2) {
                emit(bindings);
                for &t in &trail2 {
                    bindings[t] = None;
                }
            }
        }
        for &t in &trail {
            bindings[t] = None;
        }
    }
}

/// Match a pattern edge against a subject signal. Returns true on success,
/// recording newly bound pins in `trail` so the caller can backtrack.
fn bind_edge(
    aig: &SubjectAig,
    pe: &PatEdge,
    s: Signal,
    bindings: &mut Vec<Option<Signal>>,
    trail: &mut Vec<usize>,
) -> bool {
    match &pe.node {
        PatNode::Leaf(pin) => {
            // The pin must see the signal complemented iff the flags differ.
            let need = Signal {
                node: s.node,
                compl: s.compl ^ pe.compl,
            };
            match bindings[*pin] {
                Some(existing) => existing == need,
                None => {
                    bindings[*pin] = Some(need);
                    trail.push(*pin);
                    true
                }
            }
        }
        PatNode::And(..) => {
            // Internal pattern structure must line up phase-exactly.
            if s.compl != pe.compl {
                return false;
            }
            let AigNode::And { a, b } = aig.nodes()[s.node as usize] else {
                return false;
            };
            let PatNode::And(pl, pr) = &pe.node else {
                unreachable!()
            };
            for (sa, sb) in [(a, b), (b, a)] {
                let mark = trail.len();
                if bind_edge(aig, pl, sa, bindings, trail)
                    && bind_edge(aig, pr, sb, bindings, trail)
                {
                    return true;
                }
                for t in trail.drain(mark..).collect::<Vec<_>>() {
                    bindings[t] = None;
                }
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::pattern::PatternSet;
    use activity::{analyze, TransitionModel};
    use genlib::builtin::lib2_like;
    use netlist::parse_blif;

    fn aig_of(blif: &str) -> SubjectAig {
        let net = parse_blif(blif).unwrap().network;
        let probs = vec![0.5; net.inputs().len()];
        let act = analyze(&net, &probs, TransitionModel::StaticCmos);
        SubjectAig::from_network(&net, &act).unwrap()
    }

    fn names(lib: &genlib::Library, ms: &[Match]) -> Vec<String> {
        ms.iter()
            .map(|m| lib.gates()[m.gate].name().to_string())
            .collect()
    }

    #[test]
    fn and2_node_matches_and_nand() {
        let lib = lib2_like();
        let ps = PatternSet::from_library(&lib);
        let aig = aig_of(".model t\n.inputs a b\n.outputs f\n.names a b f\n11 1\n.end\n");
        let f = aig.outputs()[0].1;
        let ms = matches_at(&aig, &ps, f.node);
        let ns = names(&lib, &ms);
        // positive phase: and2; negative phase: nand2; plus nor2 on
        // complemented inputs? nor2 = !a·!b needs complemented leaf edges —
        // it matches too, binding pins to !a and !b (pos phase of AND node
        // via NOR of complements? !a·!b != a·b) — must NOT match pos.
        let and2 = ms
            .iter()
            .find(|m| lib.gates()[m.gate].name() == "and2")
            .unwrap();
        assert!(!and2.root_compl);
        let nand2 = ms
            .iter()
            .find(|m| lib.gates()[m.gate].name() == "nand2")
            .unwrap();
        assert!(nand2.root_compl);
        // or2 = !(!a·!b): matching it at AND(a,b) would bind pins to !a, !b
        // and implement !(AND) — valid as a negative-phase match computing
        // !(a·b)?? No: or2(x,y) with x=!a, y=!b gives !a+!b = !(ab). Yes —
        // legitimate. Check it is categorized as negative phase.
        if let Some(or2) = ms.iter().find(|m| lib.gates()[m.gate].name() == "or2") {
            assert!(or2.root_compl);
            assert!(or2.pin_bindings.iter().all(|s| s.compl));
        }
        assert!(ns.contains(&"and2".to_string()));
    }

    #[test]
    fn and_chain_matches_wide_nands() {
        let lib = lib2_like();
        let ps = PatternSet::from_library(&lib);
        // f = a·b·c·d as balanced AND tree of 2-input nodes
        let aig = aig_of(
            ".model t\n.inputs a b c d\n.outputs f\n.names a b x\n11 1\n\
             .names c d y\n11 1\n.names x y f\n11 1\n.end\n",
        );
        let f = aig.outputs()[0].1;
        let ms = matches_at(&aig, &ps, f.node);
        let ns = names(&lib, &ms);
        assert!(
            ns.contains(&"and4".to_string()),
            "and4 should match: {ns:?}"
        );
        assert!(
            ns.contains(&"nand4".to_string()),
            "nand4 should match: {ns:?}"
        );
        assert!(ns.contains(&"and2".to_string()));
        // aoi22 = !(ab+cd) should match the NEGATIVE phase? !(ab+cd) =
        // !(ab)·!(cd) — that's an AND of complemented ANDs, but our node is
        // AND of plain ANDs: no match. oai22 = !((a+b)(c+d)) — no. Good:
        assert!(!ns.contains(&"aoi22".to_string()));
    }

    #[test]
    fn or_of_ands_matches_aoi22() {
        let lib = lib2_like();
        let ps = PatternSet::from_library(&lib);
        // f = ab + cd
        let aig = aig_of(
            ".model t\n.inputs a b c d\n.outputs f\n.names a b x\n11 1\n\
             .names c d y\n11 1\n.names x y f\n1- 1\n-1 1\n.end\n",
        );
        let f = aig.outputs()[0].1;
        assert!(f.compl, "OR output is a complemented AND signal");
        let ms = matches_at(&aig, &ps, f.node);
        let ns = names(&lib, &ms);
        // The AND node computes !(ab+cd); aoi22 = !(ab+cd) matches the
        // positive phase of the node; ao22 matches negative.
        let aoi = ms
            .iter()
            .find(|m| lib.gates()[m.gate].name() == "aoi22")
            .unwrap();
        assert!(!aoi.root_compl);
        assert!(ns.contains(&"ao22".to_string()));
        let ao = ms
            .iter()
            .find(|m| lib.gates()[m.gate].name() == "ao22")
            .unwrap();
        assert!(ao.root_compl);
    }

    #[test]
    fn xor_structure_matches_xor_cell() {
        let lib = lib2_like();
        let ps = PatternSet::from_library(&lib);
        // f = a^b decomposed as OR(AND(a,!b), AND(!a,b))
        let aig = aig_of(
            ".model t\n.inputs a b\n.outputs f\n.names b bn\n0 1\n.names a an\n0 1\n\
             .names a bn x\n11 1\n.names an b y\n11 1\n.names x y f\n1- 1\n-1 1\n.end\n",
        );
        let f = aig.outputs()[0].1;
        let ms = matches_at(&aig, &ps, f.node);
        let ns = names(&lib, &ms);
        assert!(
            ns.contains(&"xor2".to_string()) || ns.contains(&"xnor2".to_string()),
            "xor cell should match: {ns:?}"
        );
        // pin consistency: the xor match binds exactly signals a and b.
        let xm = ms
            .iter()
            .find(|m| {
                let n = lib.gates()[m.gate].name();
                n == "xor2" || n == "xnor2"
            })
            .unwrap();
        assert_eq!(xm.pin_bindings.len(), 2);
        assert_ne!(xm.pin_bindings[0].node, xm.pin_bindings[1].node);
    }

    #[test]
    fn inconsistent_pin_bindings_rejected() {
        let lib = lib2_like();
        let ps = PatternSet::from_library(&lib);
        // f = a·!a·b-ish structure cannot appear after strashing, so craft
        // f = (a·b)·(a·c): xor-like double-leaf patterns must not bind `a`
        // to two different signals.
        let aig = aig_of(
            ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
             .names a c y\n11 1\n.names x y f\n11 1\n.end\n",
        );
        let f = aig.outputs()[0].1;
        let ms = matches_at(&aig, &ps, f.node);
        for m in &ms {
            let g = &lib.gates()[m.gate];
            // evaluate the gate on the bound signals symbolically over
            // (a,b,c) assignments and compare with f = a·b·c... only for
            // non-inverting matches of the positive phase.
            if m.root_compl {
                continue;
            }
            for bits in 0..8u32 {
                let pis: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
                let vals = aig.eval(&pis);
                let pin_vals: Vec<bool> = m
                    .pin_bindings
                    .iter()
                    .map(|s| vals[s.node as usize] ^ s.compl)
                    .collect();
                let out = g.eval(&pin_vals);
                let expect = vals[f.node as usize];
                assert_eq!(out, expect, "gate {} mis-matched", g.name());
            }
        }
    }
}
