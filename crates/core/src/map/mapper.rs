//! The mapping engine: postorder curve computation, preorder selection,
//! mapped-netlist construction (§3.2–3.3).

use crate::map::curve::{Curve, Point};
use crate::map::matcher::Matcher;
use crate::map::pattern::PatternSet;
use crate::map::subject::{AigNode, MapError, Signal, SubjectAig};
use activity::{PowerEnv, TransitionModel};
use genlib::Library;
use std::collections::HashMap;

/// What the mapper minimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapObjective {
    /// Average power under delay constraints (`pd-map`, the paper's
    /// contribution).
    Power,
    /// Area under delay constraints (`ad-map`, the Chaudhary–Pedram
    /// baseline of methods I–III).
    Area,
}

/// Power bookkeeping during mapping (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PowerMethod {
    /// Method 1 (eq. 15): accumulate the power of a match's *input* nets;
    /// the node's own output net is charged at its mapped parent. The
    /// paper's choice.
    InputLoads,
    /// Method 2 (eq. 16): charge the node's own output net with the
    /// default load. Provided for the ablation study.
    OutputLoad,
}

/// Mapper options.
#[derive(Debug, Clone)]
pub struct MapOptions {
    /// Cost objective.
    pub objective: MapObjective,
    /// Power bookkeeping method.
    pub power_method: PowerMethod,
    /// ε for curve pruning (arrival units, ns).
    pub epsilon: f64,
    /// Required time at every primary output; `None` targets the fastest
    /// achievable arrival of the slowest output (no performance
    /// degradation).
    pub required_time: Option<f64>,
    /// Transition model for switching activities.
    pub model: TransitionModel,
    /// Electrical environment.
    pub env: PowerEnv,
    /// §3.3 DAG heuristic: divide an input's accumulated cost by its fanout
    /// count at multi-fanout nodes.
    pub dag_fanout_division: bool,
    /// Capacitive load (load units) on each primary output.
    pub po_load: f64,
}

impl MapOptions {
    /// Power-objective defaults (the paper's pd-map).
    pub fn power() -> MapOptions {
        MapOptions {
            objective: MapObjective::Power,
            power_method: PowerMethod::InputLoads,
            epsilon: 0.05,
            required_time: None,
            model: TransitionModel::StaticCmos,
            env: PowerEnv::new(),
            dag_fanout_division: true,
            po_load: 1.0,
        }
    }

    /// Area-objective defaults (the ad-map baseline).
    pub fn area() -> MapOptions {
        MapOptions {
            objective: MapObjective::Area,
            ..MapOptions::power()
        }
    }
}

/// Reference to a net driver in a mapped netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetRef {
    /// Primary input by position.
    Pi(usize),
    /// Instance output by position in [`MappedNetwork::instances`].
    Inst(usize),
}

/// One mapped gate instance.
#[derive(Debug, Clone)]
pub struct MappedInstance {
    /// Instance name.
    pub name: String,
    /// Library gate index.
    pub gate: usize,
    /// Driver of each input pin, aligned with the gate's input order.
    pub inputs: Vec<NetRef>,
    /// Probability that the instance output is 1 (zero-delay, exact).
    pub p_one: f64,
    /// Provenance: name of the subject-network node whose cone this gate
    /// implements (see [`SubjectAig::source`]). Composed with the
    /// decomposition provenance map, it resolves every instance back to a
    /// node of the original optimized network.
    pub source: String,
}

/// A technology-mapped netlist.
#[derive(Debug, Clone)]
pub struct MappedNetwork {
    /// Gate instances in topological order (drivers precede consumers).
    pub instances: Vec<MappedInstance>,
    /// Primary input names.
    pub pi_names: Vec<String>,
    /// `P(pi = 1)` per primary input.
    pub pi_p_one: Vec<f64>,
    /// Primary outputs.
    pub outputs: Vec<(String, NetRef)>,
    /// Fastest achievable arrival of the slowest output in the mapper's
    /// estimated (default-load) timing space. Useful for choosing a common
    /// `required_time` across several mapping runs.
    pub estimated_fastest: f64,
    /// The required time actually targeted (estimated space).
    pub estimated_required: f64,
}

impl MappedNetwork {
    /// Evaluate the mapped netlist on a primary-input assignment.
    ///
    /// # Panics
    /// Panics if `pis.len()` differs from the PI count.
    pub fn eval_outputs(&self, lib: &Library, pis: &[bool]) -> Vec<bool> {
        assert_eq!(pis.len(), self.pi_names.len(), "PI count mismatch");
        let mut vals: Vec<bool> = Vec::with_capacity(self.instances.len());
        for inst in &self.instances {
            let ins: Vec<bool> = inst
                .inputs
                .iter()
                .map(|r| match r {
                    NetRef::Pi(i) => pis[*i],
                    NetRef::Inst(i) => vals[*i],
                })
                .collect();
            vals.push(lib.gates()[inst.gate].eval(&ins));
        }
        self.outputs
            .iter()
            .map(|(_, r)| match r {
                NetRef::Pi(i) => pis[*i],
                NetRef::Inst(i) => vals[*i],
            })
            .collect()
    }

    /// Total cell area of the mapped netlist.
    pub fn total_area(&self, lib: &Library) -> f64 {
        self.instances
            .iter()
            .map(|i| lib.gates()[i.gate].area())
            .sum()
    }
}

/// A required-time demand on a signal: `(required, load, from_same_node_aug)`.
type Demand = (f64, f64, bool);

/// Map a subject AIG onto a library.
///
/// # Errors
/// Returns [`MapError::NoInverter`] for libraries without an inverter, or
/// [`MapError::UnmappedOutput`] when some output cone admits no cover
/// (pathological libraries).
pub fn map_network(
    aig: &SubjectAig,
    lib: &Library,
    opts: &MapOptions,
) -> Result<MappedNetwork, MapError> {
    let ps = PatternSet::from_library(lib);
    if ps.inverters().is_empty() {
        return Err(MapError::NoInverter);
    }
    let c_def = lib.default_load();
    let mut curves: Vec<[Curve; 2]> = Vec::with_capacity(aig.len());
    let mut matcher = Matcher::new();
    let mut cands: Vec<f64> = Vec::new();

    // ---- postorder: curve computation -------------------------------
    let postorder_span = obs::span!("map.postorder");
    for idx in 0..aig.len() as u32 {
        let mut pos = Curve::new();
        let mut neg = Curve::new();
        match aig.nodes()[idx as usize] {
            AigNode::Pi { .. } => {
                pos.push(Point {
                    arrival: 0.0,
                    cost: 0.0,
                    drive: 0.0,
                    gate: None,
                    inputs: Vec::new(),
                });
            }
            AigNode::And { .. } => {
                for m in matcher.matches_at(aig, &ps, idx) {
                    let target = if m.root_compl { &mut neg } else { &mut pos };
                    add_match_points(
                        aig,
                        lib,
                        opts,
                        c_def,
                        &curves,
                        idx,
                        m.gate,
                        &m.pin_bindings,
                        target,
                        &mut cands,
                    );
                }
            }
        }
        pos.finalize(opts.epsilon);
        neg.finalize(opts.epsilon);
        // Phase repair: inverters bridge phases; buffers strengthen within
        // a phase. Built from the raw curves only (no inv-of-inv).
        let raw_pos = pos.cheapest().map(|(_, p)| p.clone());
        let raw_neg = neg.cheapest().map(|(_, p)| p.clone());
        let aug_neg = phase_aug_points(aig, lib, opts, c_def, &pos, idx, true, ps.inverters());
        let aug_pos = phase_aug_points(aig, lib, opts, c_def, &neg, idx, false, ps.inverters());
        for p in aug_neg {
            neg.push(p);
        }
        for p in aug_pos {
            pos.push(p);
        }
        pos.finalize(opts.epsilon);
        neg.finalize(opts.epsilon);
        // Pruning exemption: at coarse ε the merge can leave a phase with
        // only phase-repair (aug) points; a raw-only demand on that phase
        // would then dead-end and the output cone would be unmappable
        // (seen on s510 at ε = 0.5). Keep the least-power raw point alive.
        restore_raw_point(&mut pos, raw_pos);
        restore_raw_point(&mut neg, raw_neg);
        if pos.is_empty() && neg.is_empty() {
            let name = format!("aig_node_{idx}");
            return Err(MapError::UnmappedOutput(name));
        }
        obs::hist!("map.curve.points_after_prune", pos.points().len() as u64);
        obs::hist!("map.curve.points_after_prune", neg.points().len() as u64);
        curves.push([pos, neg]);
    }
    drop(postorder_span);

    // ---- required times ----------------------------------------------
    let fastest_of = |s: &Signal| -> Option<f64> {
        curves[s.node as usize][s.compl as usize]
            .fastest(opts.po_load, c_def)
            .map(|(_, p)| p.arrival_at_load(opts.po_load, c_def))
    };
    let mut worst = 0.0f64;
    for (name, s) in aig.outputs() {
        let f = fastest_of(s).ok_or_else(|| MapError::UnmappedOutput(name.clone()))?;
        worst = worst.max(f);
    }
    let required = opts.required_time.unwrap_or(worst);

    // ---- preorder: gate selection under demands -----------------------
    let preorder_span = obs::span!("map.preorder");
    let mut demands: HashMap<(u32, bool), Vec<Demand>> = HashMap::new();
    for (_, s) in aig.outputs() {
        demands.entry((s.node, s.compl)).or_default().push((
            required.max(fastest_of(s).expect("checked")),
            opts.po_load,
            false,
        ));
    }
    let mut chosen: HashMap<(u32, bool), usize> = HashMap::new();
    for idx in (0..aig.len() as u32).rev() {
        // A few phase iterations resolve same-node inverter demands.
        for _ in 0..4 {
            let mut progressed = false;
            for phase in [false, true] {
                let key = (idx, phase);
                let Some(ds) = demands.get(&key).cloned() else {
                    continue;
                };
                if ds.is_empty() {
                    continue;
                }
                let curve = &curves[idx as usize][phase as usize];
                let pick = select_point(curve, &ds, c_def);
                let Some(pick) = pick else {
                    continue;
                };
                let prev = chosen.insert(key, pick);
                if prev == Some(pick) {
                    continue;
                }
                progressed = true;
                // Emit demands for the chosen point's inputs.
                let point = &curve.points()[pick];
                if let Some(gi) = point.gate {
                    let gate = &lib.gates()[gi];
                    // Tightest requirement in default-load terms.
                    let req_def = ds
                        .iter()
                        .map(|&(r, l, _)| r - point.drive * (l - c_def))
                        .fold(f64::INFINITY, f64::min);
                    for (pin_idx, s_in) in point.inputs.iter().enumerate() {
                        let pin = gate.pin(pin_idx);
                        let r_in = req_def - (pin.intrinsic + pin.drive * c_def);
                        let same_node_aug = s_in.node == idx;
                        demands.entry((s_in.node, s_in.compl)).or_default().push((
                            r_in,
                            pin.input_cap,
                            same_node_aug,
                        ));
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        demands.remove(&(idx, false));
        demands.remove(&(idx, true));
    }
    drop(preorder_span);

    // ---- netlist construction -----------------------------------------
    let _build_span = obs::span!("map.build");
    let mut built: HashMap<(u32, bool), NetRef> = HashMap::new();
    let mut instances: Vec<MappedInstance> = Vec::new();
    fn build(
        s: Signal,
        aig: &SubjectAig,
        curves: &[[Curve; 2]],
        chosen: &HashMap<(u32, bool), usize>,
        built: &mut HashMap<(u32, bool), NetRef>,
        instances: &mut Vec<MappedInstance>,
    ) -> Result<NetRef, MapError> {
        let key = (s.node, s.compl);
        if let Some(&r) = built.get(&key) {
            return Ok(r);
        }
        if let AigNode::Pi { input } = aig.nodes()[s.node as usize] {
            if !s.compl {
                let r = NetRef::Pi(input);
                built.insert(key, r);
                return Ok(r);
            }
        }
        let pick = *chosen
            .get(&key)
            .ok_or_else(|| MapError::UnmappedOutput(format!("signal {s:?}")))?;
        // Borrow, don't clone: the curve store outlives the recursion and
        // is never mutated during netlist construction.
        let point = &curves[s.node as usize][s.compl as usize].points()[pick];
        let gi = point
            .gate
            .ok_or_else(|| MapError::UnmappedOutput(format!("signal {s:?}")))?;
        let mut ins = Vec::with_capacity(point.inputs.len());
        for &s_in in &point.inputs {
            ins.push(build(s_in, aig, curves, chosen, built, instances)?);
        }
        let name = format!(
            "g{}_{}{}",
            instances.len(),
            s.node,
            if s.compl { "n" } else { "p" }
        );
        instances.push(MappedInstance {
            name,
            gate: gi,
            inputs: ins,
            p_one: aig.p_signal(s),
            source: aig.source(s.node).to_string(),
        });
        let r = NetRef::Inst(instances.len() - 1);
        built.insert(key, r);
        Ok(r)
    }

    let mut outputs = Vec::new();
    for (name, s) in aig.outputs() {
        let r = build(*s, aig, &curves, &chosen, &mut built, &mut instances)?;
        outputs.push((name.clone(), r));
    }
    let pi_p_one: Vec<f64> = aig
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(i, n)| match n {
            AigNode::Pi { .. } => Some(aig.p_one(i as u32)),
            AigNode::And { .. } => None,
        })
        .collect();
    Ok(MappedNetwork {
        instances,
        pi_names: aig.pi_names().to_vec(),
        pi_p_one,
        outputs,
        estimated_fastest: worst,
        estimated_required: required,
    })
}

/// Re-insert the cheapest raw point (captured before the phase-repair
/// push) into a curve whose surviving points are all same-node aug points,
/// so [`select_point`]'s raw-only filter always has a candidate. A no-op
/// when any raw point survived or when the phase never had one.
fn restore_raw_point(curve: &mut Curve, cheapest_raw: Option<Point>) {
    let Some(p) = cheapest_raw else { return };
    if curve.points().iter().any(|q| !q.is_same_node_aug()) {
        return;
    }
    curve.insert_exempt(p);
}

/// Cheapest point satisfying every demand; when none does, the point
/// minimizing the worst violation. Demands flagged `from_same_node_aug`
/// restrict the choice to raw (non-phase-augmented) points, preventing
/// inverter ping-pong between the two phases of one node.
fn select_point(curve: &Curve, demands: &[Demand], c_def: f64) -> Option<usize> {
    if curve.is_empty() {
        return None;
    }
    let raw_only = demands.iter().any(|&(_, _, aug)| aug);
    let mut best: Option<(usize, f64)> = None; // (idx, cost) among feasible
    let mut fallback: Option<(usize, f64)> = None; // (idx, worst violation)
    for (i, p) in curve.points().iter().enumerate() {
        if raw_only && p.is_same_node_aug() {
            continue;
        }
        let mut worst_violation = 0.0f64;
        for &(r, l, _) in demands {
            let arr = p.arrival_at_load(l, c_def);
            worst_violation = worst_violation.max(arr - r);
        }
        if worst_violation <= 1e-9 {
            if best.is_none() || p.cost < best.expect("some").1 {
                best = Some((i, p.cost));
            }
        } else if fallback.is_none() || worst_violation < fallback.expect("some").1 {
            fallback = Some((i, worst_violation));
        }
    }
    best.or(fallback).map(|(i, _)| i)
}

/// Compute and push the curve points of one match. `cands` is caller-owned
/// scratch for the candidate arrival times, reused across every match of a
/// mapping run.
#[allow(clippy::too_many_arguments)]
fn add_match_points(
    aig: &SubjectAig,
    lib: &Library,
    opts: &MapOptions,
    c_def: f64,
    curves: &[[Curve; 2]],
    node: u32,
    gate_idx: usize,
    bindings: &[Signal],
    out: &mut Curve,
    cands: &mut Vec<f64>,
) {
    let gate = &lib.gates()[gate_idx];
    // Leaf curves must exist and be below this node (guaranteed: bindings
    // reference strictly lower nodes, or the node itself never — patterns
    // are rooted here).
    let pin_curve = |s: &Signal| &curves[s.node as usize][s.compl as usize];
    if bindings.iter().any(|s| pin_curve(s).is_empty()) {
        return;
    }
    // Candidate output arrivals.
    cands.clear();
    for (pin_idx, s) in bindings.iter().enumerate() {
        let pin = gate.pin(pin_idx);
        for p in pin_curve(s).points() {
            cands.push(p.arrival_at_load(pin.input_cap, c_def) + pin.intrinsic + pin.drive * c_def);
        }
    }
    cands.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    cands.dedup_by(|a, b| (*a - *b).abs() < 1e-12);

    let drive = gate.pins().iter().map(|p| p.drive).fold(0.0, f64::max);
    for &t in cands.iter() {
        let mut cost = match opts.objective {
            MapObjective::Area => gate.area(),
            MapObjective::Power => match opts.power_method {
                PowerMethod::InputLoads => 0.0,
                PowerMethod::OutputLoad => {
                    // Method 2: charge own output at default load.
                    let p_out = aig.p_one(node);
                    opts.env
                        .average_power_uw(c_def, opts.model.switching(p_out))
                }
            },
        };
        let mut actual_t = 0.0f64;
        let mut ok = true;
        for (pin_idx, s) in bindings.iter().enumerate() {
            let pin = gate.pin(pin_idx);
            let s = *s;
            let req = t - (pin.intrinsic + pin.drive * c_def);
            let Some((_, p)) = pin_curve(&s).best_within(req, pin.input_cap, c_def) else {
                ok = false;
                break;
            };
            actual_t = actual_t
                .max(p.arrival_at_load(pin.input_cap, c_def) + pin.intrinsic + pin.drive * c_def);
            let div = if opts.dag_fanout_division {
                aig.fanout_count(s.node).max(1) as f64
            } else {
                1.0
            };
            cost += match opts.objective {
                MapObjective::Area => p.cost / div,
                MapObjective::Power => {
                    let e_in = opts.model.switching(aig.p_signal(s));
                    let load_pw = opts.env.average_power_uw(pin.input_cap, e_in);
                    match opts.power_method {
                        // Method 1: the input-net load belongs to this gate
                        // alone — only the accumulated cone power is shared.
                        PowerMethod::InputLoads => load_pw + p.cost / div,
                        // Method 2: everything downstream was already
                        // charged; share the whole contribution.
                        PowerMethod::OutputLoad => (load_pw + p.cost) / div,
                    }
                }
            };
        }
        if !ok {
            continue;
        }
        out.push(Point {
            arrival: actual_t,
            cost,
            drive,
            gate: Some(gate_idx),
            inputs: bindings.to_vec(),
        });
    }
}

/// Points obtained by applying each inverter cell to the other phase's raw
/// curve.
#[allow(clippy::too_many_arguments)]
fn phase_aug_points(
    aig: &SubjectAig,
    lib: &Library,
    opts: &MapOptions,
    c_def: f64,
    source: &Curve,
    node: u32,
    source_is_pos: bool,
    inverters: &[usize],
) -> Vec<Point> {
    let mut out = Vec::new();
    // The inverter consumes the source-phase signal.
    let in_sig = Signal {
        node,
        compl: !source_is_pos,
    };
    for &gi in inverters {
        let gate = &lib.gates()[gi];
        let pin = gate.pin(0);
        for p in source.points() {
            let arr = p.arrival_at_load(pin.input_cap, c_def) + pin.intrinsic + pin.drive * c_def;
            let div = if opts.dag_fanout_division {
                aig.fanout_count(node).max(1) as f64
            } else {
                1.0
            };
            let cost = match opts.objective {
                MapObjective::Area => gate.area() + p.cost / div,
                MapObjective::Power => {
                    let e_in = opts.model.switching(aig.p_signal(in_sig));
                    let load_pw = opts.env.average_power_uw(pin.input_cap, e_in);
                    match opts.power_method {
                        PowerMethod::InputLoads => load_pw + p.cost / div,
                        PowerMethod::OutputLoad => {
                            let p_out = aig.p_signal(in_sig.not());
                            opts.env
                                .average_power_uw(c_def, opts.model.switching(p_out))
                                + (load_pw + p.cost) / div
                        }
                    }
                }
            };
            out.push(Point {
                arrival: arr,
                cost,
                drive: pin.drive,
                gate: Some(gi),
                inputs: vec![in_sig],
            });
        }
    }
    out
}

impl Point {
    /// True when the point is a single-input (phase-repair inverter or
    /// buffer) point, whose input is by construction the same node's other
    /// phase.
    fn is_same_node_aug(&self) -> bool {
        self.inputs.len() == 1 && self.gate.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::evaluate;
    use activity::analyze;
    use genlib::builtin::lib2_like;
    use netlist::parse_blif;

    fn subject(blif: &str, probs: &[f64]) -> (netlist::Network, SubjectAig) {
        let net = parse_blif(blif).unwrap().network;
        let act = analyze(&net, probs, TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        (net, aig)
    }

    fn check_function(net: &netlist::Network, m: &MappedNetwork, lib: &Library) {
        let n = net.inputs().len();
        assert!(n <= 12);
        for bits in 0..(1u64 << n) {
            let pis: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            // evaluate mapped netlist
            let mut vals: Vec<bool> = Vec::with_capacity(m.instances.len());
            for inst in &m.instances {
                let ins: Vec<bool> = inst
                    .inputs
                    .iter()
                    .map(|r| match r {
                        NetRef::Pi(i) => pis[*i],
                        NetRef::Inst(i) => vals[*i],
                    })
                    .collect();
                vals.push(lib.gates()[inst.gate].eval(&ins));
            }
            let got: Vec<bool> = m
                .outputs
                .iter()
                .map(|(_, r)| match r {
                    NetRef::Pi(i) => pis[*i],
                    NetRef::Inst(i) => vals[*i],
                })
                .collect();
            assert_eq!(got, net.eval_outputs(&pis), "mismatch at {pis:?}");
        }
    }

    const AND_OR: &str = ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
                          .names x c f\n1- 1\n-1 1\n.end\n";

    #[test]
    fn maps_small_network_correctly() {
        let lib = lib2_like();
        let (net, aig) = subject(AND_OR, &[0.5; 3]);
        let m = map_network(&aig, &lib, &MapOptions::power()).unwrap();
        assert!(!m.instances.is_empty());
        check_function(&net, &m, &lib);
    }

    #[test]
    fn area_map_correct_too() {
        let lib = lib2_like();
        let (net, aig) = subject(AND_OR, &[0.5; 3]);
        let m = map_network(&aig, &lib, &MapOptions::area()).unwrap();
        check_function(&net, &m, &lib);
    }

    #[test]
    fn single_gate_cover_preferred_by_area() {
        // f = ab + c should map to ao21 (area 4) rather than and2+or2
        // (area 6) under the area objective.
        let lib = lib2_like();
        let (net, aig) = subject(AND_OR, &[0.5; 3]);
        let m = map_network(&aig, &lib, &MapOptions::area()).unwrap();
        check_function(&net, &m, &lib);
        let total_area: f64 = m.instances.iter().map(|i| lib.gates()[i.gate].area()).sum();
        assert!(total_area <= 4.0 + 1e-9, "area {total_area} too big");
    }

    #[test]
    fn xor_maps_to_xor_cell() {
        let lib = lib2_like();
        let (net, aig) = subject(
            ".model t\n.inputs a b\n.outputs f\n.names b bn\n0 1\n.names a an\n0 1\n\
             .names a bn x\n11 1\n.names an b y\n11 1\n.names x y f\n1- 1\n-1 1\n.end\n",
            &[0.5, 0.5],
        );
        let m = map_network(&aig, &lib, &MapOptions::area()).unwrap();
        check_function(&net, &m, &lib);
        let names: Vec<&str> = m
            .instances
            .iter()
            .map(|i| lib.gates()[i.gate].name())
            .collect();
        assert!(
            names.contains(&"xor2") || names.contains(&"xnor2"),
            "expected an xor cell, got {names:?}"
        );
    }

    #[test]
    fn inverted_output_gets_inverter_or_inverting_gate() {
        let lib = lib2_like();
        let (net, aig) = subject(
            ".model t\n.inputs a b\n.outputs f\n.names a b x\n11 1\n.names x f\n0 1\n.end\n",
            &[0.5, 0.5],
        );
        let m = map_network(&aig, &lib, &MapOptions::power()).unwrap();
        check_function(&net, &m, &lib);
        // best cover is a single 2-input NAND (either drive strength)
        assert_eq!(m.instances.len(), 1);
        let g = &lib.gates()[m.instances[0].gate];
        assert!(g.name().starts_with("nand2"), "got {}", g.name());
    }

    #[test]
    fn power_map_no_slower_than_its_own_target() {
        let lib = lib2_like();
        let blif = ".model t\n.inputs a b c d e\n.outputs f\n\
                    .names a b x\n11 1\n.names c d y\n11 1\n\
                    .names x y z\n1- 1\n-1 1\n.names z e f\n11 1\n.end\n";
        let (net, aig) = subject(blif, &[0.5; 5]);
        let popt = MapOptions::power();
        let m = map_network(&aig, &lib, &popt).unwrap();
        check_function(&net, &m, &lib);
        let rep = evaluate(&m, &lib, &popt.env, popt.model, popt.po_load);
        // delay target was "fastest achievable at default load" — the real
        // delay (actual loads) should be in the same ballpark; sanity only:
        assert!(rep.delay > 0.0 && rep.delay < 100.0);
    }

    #[test]
    fn pd_map_spends_area_to_save_power() {
        // High-activity internal node: pd-map should hide it inside a
        // complex gate even at an area premium. Compare total power.
        let lib = lib2_like();
        let blif = ".model t\n.inputs a b c d\n.outputs f\n\
                    .names a b x\n11 1\n.names c d y\n1- 1\n-1 1\n\
                    .names x y f\n1- 1\n-1 1\n.end\n";
        let probs = [0.5, 0.5, 0.5, 0.5];
        let (net, aig) = subject(blif, &probs);
        let pm = map_network(&aig, &lib, &MapOptions::power()).unwrap();
        let am = map_network(&aig, &lib, &MapOptions::area()).unwrap();
        check_function(&net, &pm, &lib);
        check_function(&net, &am, &lib);
        let env = PowerEnv::new();
        let pr = evaluate(&pm, &lib, &env, TransitionModel::StaticCmos, 1.0);
        let ar = evaluate(&am, &lib, &env, TransitionModel::StaticCmos, 1.0);
        assert!(
            pr.power_uw <= ar.power_uw + 1e-9,
            "pd-map power {} must not exceed ad-map power {}",
            pr.power_uw,
            ar.power_uw
        );
    }

    #[test]
    fn shared_node_mapped_once() {
        let lib = lib2_like();
        let blif = ".model t\n.inputs a b c\n.outputs f g\n.names a b x\n11 1\n\
                    .names x c f\n11 1\n.names x c g\n1- 1\n-1 1\n.end\n";
        let (net, aig) = subject(blif, &[0.5; 3]);
        let m = map_network(&aig, &lib, &MapOptions::power()).unwrap();
        check_function(&net, &m, &lib);
    }
}
