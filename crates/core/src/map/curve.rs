//! Power-delay (and area-delay) curves of non-inferior points (§3.1).

use crate::map::subject::Signal;

/// One mapping solution at a node: arrival time at the node output under
/// the default load, accumulated cost (average power in µW, or area) of the
/// mapped transitive fanin *excluding* the node's own output net
/// (Method 1), the drive resistance of the producing gate (for unknown-load
/// recalculation), and enough bookkeeping to rebuild the mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct Point {
    /// Arrival time at the output, computed with the default load.
    pub arrival: f64,
    /// Accumulated cost of the mapped cone (µW or area units).
    pub cost: f64,
    /// Drive resistance of the gate producing this point (ns per load
    /// unit); arrival shifts by `drive · Δload` when the real load differs
    /// from the default (§3.2.3).
    pub drive: f64,
    /// Library gate index; `None` for primary-input source points.
    pub gate: Option<usize>,
    /// For each gate pin: the bound subject signal. The concrete point on
    /// each input curve is re-selected during the preorder pass from the
    /// propagated required time (§3.2.2), so no index is stored.
    pub inputs: Vec<Signal>,
}

impl Point {
    /// Arrival as seen through a pin of capacitance `load` when the curve
    /// was computed assuming `default_load`.
    pub fn arrival_at_load(&self, load: f64, default_load: f64) -> f64 {
        self.arrival + self.drive * (load - default_load)
    }
}

/// One violation of the finalized-curve invariant, reported by
/// [`Curve::invariant_defects`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveDefect {
    /// A point carries a NaN or infinite arrival, cost or drive.
    NonFinite {
        /// Index of the offending point.
        point: usize,
    },
    /// The point's arrival is not strictly greater than its predecessor's.
    ArrivalNotIncreasing {
        /// Index of the offending point.
        point: usize,
    },
    /// The point's cost is not strictly smaller than its predecessor's —
    /// the point is dominated.
    CostNotDecreasing {
        /// Index of the offending point.
        point: usize,
    },
}

/// A monotone non-increasing curve of non-inferior `(arrival, cost)` points,
/// sorted by increasing arrival and strictly decreasing cost.
#[derive(Debug, Clone, Default)]
pub struct Curve {
    points: Vec<Point>,
}

impl Curve {
    /// Empty curve.
    pub fn new() -> Curve {
        Curve { points: Vec::new() }
    }

    /// The points, sorted by arrival.
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// True when the curve has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Add a candidate point, maintaining the non-inferior invariant by
    /// **dominance-pruned insertion**: a binary search finds the arrival
    /// position, the candidate is dropped when an existing no-later point
    /// is already no-costlier, and any existing points the candidate
    /// dominates are removed. The curve stays sorted by strictly
    /// increasing arrival / strictly decreasing cost at all times, so
    /// [`Curve::finalize`] no longer needs to sort or Pareto-prune.
    pub fn push(&mut self, p: Point) {
        // First index whose (arrival, cost) is lexicographically >= p's:
        // everything before it is strictly earlier-or-cheaper.
        let pos = self
            .points
            .partition_point(|q| (q.arrival, q.cost) < (p.arrival, p.cost));
        // Dominated by a predecessor (no-later arrival, no-cheaper cost
        // within the dedup margin): drop. The predecessor check suffices —
        // costs before `pos` decrease, so its cost is the minimum so far.
        if let Some(prev) = pos.checked_sub(1).map(|i| &self.points[i]) {
            if p.cost >= prev.cost - 1e-12 {
                obs::counter!("map.curve.dominated_drops");
                return;
            }
        }
        // Remove the successors the candidate dominates: they arrive no
        // earlier and cost at least `p.cost - 1e-12`. Costs decrease with
        // index, so the dominated points form a prefix of the suffix.
        let mut end = pos;
        while end < self.points.len() && self.points[end].cost >= p.cost - 1e-12 {
            end += 1;
        }
        obs::counter!("map.curve.pushes");
        if end == pos {
            self.points.insert(pos, p);
        } else {
            self.points[pos] = p;
            self.points.drain(pos + 1..end);
        }
    }

    /// Append a point verbatim, bypassing the dominance pruning of
    /// [`Curve::push`]. Exists so lint tests can materialize curves that
    /// violate the invariant; never call it from mapping code.
    pub fn push_unpruned_for_test(&mut self, p: Point) {
        self.points.push(p);
    }

    /// Insert a point at its sorted arrival position, **exempt from
    /// dominance pruning** — the point stays even when an existing point
    /// dominates it, and no existing point is removed. The pruning
    /// exemption of §3.1 (see `map_network`): when ε-merging leaves a
    /// phase with only phase-repair inverter points, the least-power raw
    /// point is re-inserted through this so raw-only demands always have
    /// a candidate. The exempt point never displaces an ordinary
    /// selection: every query scans all points and it costs at least as
    /// much as the survivor that pruned it.
    pub fn insert_exempt(&mut self, p: Point) {
        let pos = self
            .points
            .partition_point(|q| (q.arrival, q.cost) < (p.arrival, p.cost));
        obs::counter!("map.curve.exempt_inserts");
        self.points.insert(pos, p);
    }

    /// Hard cap on curve size after pruning; beyond it the curve is thinned
    /// by keeping the fastest point, the cheapest point and an evenly
    /// spread selection in between. Keeps the postorder pass near-linear.
    pub const MAX_POINTS: usize = 24;

    /// Prune inferior points and ε-merge near-duplicates (§3.1): a point is
    /// dropped when another point has both no-worse arrival and no-worse
    /// cost; afterwards points within `epsilon` in arrival keep only the
    /// cheapest representative; finally the curve is thinned to
    /// [`Curve::MAX_POINTS`].
    pub fn finalize(&mut self, epsilon: f64) {
        if self.points.is_empty() {
            return;
        }
        // Dominance pruning already happened incrementally in `push`
        // (sorted, strictly decreasing cost), so only the ε-merge and the
        // thinning remain — both run in place, allocation-free.
        //
        // ε-merge: within an arrival window keep the last (cheapest)
        // point — replacing loses a little speed, never power.
        if epsilon > 0.0 {
            let mut write = 0;
            for read in 0..self.points.len() {
                if write > 0 && self.points[read].arrival - self.points[write - 1].arrival < epsilon
                {
                    self.points.swap(write - 1, read);
                } else {
                    self.points.swap(write, read);
                    write += 1;
                }
            }
            self.points.truncate(write);
        }
        if self.points.len() > Self::MAX_POINTS {
            // Keep the fastest and cheapest endpoints plus an even spread:
            // source indices grow at least as fast as destinations, so the
            // compaction never reads an overwritten slot.
            let n = self.points.len();
            for k in 0..Self::MAX_POINTS {
                let idx = k * (n - 1) / (Self::MAX_POINTS - 1);
                self.points.swap(k, idx);
            }
            self.points.truncate(Self::MAX_POINTS);
            self.points
                .dedup_by(|a, b| a.arrival == b.arrival && a.cost == b.cost);
        }
        debug_assert!(
            self.invariant_violation().is_none(),
            "finalize broke the curve invariant: {:?}",
            self.invariant_violation()
        );
    }

    /// All violations of the non-inferiority invariant that must hold after
    /// [`Curve::finalize`]: every field finite, arrivals strictly
    /// increasing, costs strictly decreasing (so no point dominates
    /// another). `point` indexes the offending entry of [`Curve::points`].
    /// Shared by the `finalize` debug assertion and the `CRV*` lint rules.
    pub fn invariant_defects(&self) -> Vec<CurveDefect> {
        let mut defects = Vec::new();
        for (i, p) in self.points.iter().enumerate() {
            if !p.arrival.is_finite() || !p.cost.is_finite() || !p.drive.is_finite() {
                defects.push(CurveDefect::NonFinite { point: i });
            }
        }
        for (i, w) in self.points.windows(2).enumerate() {
            if w[1].arrival <= w[0].arrival {
                defects.push(CurveDefect::ArrivalNotIncreasing { point: i + 1 });
            }
            if w[1].cost >= w[0].cost {
                defects.push(CurveDefect::CostNotDecreasing { point: i + 1 });
            }
        }
        defects
    }

    /// First invariant defect rendered as text; `None` when the curve is
    /// well-formed. Convenience wrapper over [`Curve::invariant_defects`].
    pub fn invariant_violation(&self) -> Option<String> {
        self.invariant_defects().first().map(|d| match *d {
            CurveDefect::NonFinite { point } => {
                let p = &self.points[point];
                format!(
                    "point {point} has a non-finite field (arrival {}, cost {}, drive {})",
                    p.arrival, p.cost, p.drive
                )
            }
            CurveDefect::ArrivalNotIncreasing { point } => format!(
                "arrivals not strictly increasing at point {point}: {} after {}",
                self.points[point].arrival,
                self.points[point - 1].arrival
            ),
            CurveDefect::CostNotDecreasing { point } => format!(
                "costs not strictly decreasing at point {point}: {} after {} (point is dominated)",
                self.points[point].cost,
                self.points[point - 1].cost
            ),
        })
    }

    /// Best (cheapest) point whose arrival at the given pin load meets
    /// `required`; `None` when no point qualifies.
    pub fn best_within(
        &self,
        required: f64,
        load: f64,
        default_load: f64,
    ) -> Option<(usize, &Point)> {
        self.points
            .iter()
            .enumerate()
            .filter(|(_, p)| p.arrival_at_load(load, default_load) <= required + 1e-9)
            .min_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).expect("finite"))
    }

    /// The fastest point (minimum arrival at the given load).
    pub fn fastest(&self, load: f64, default_load: f64) -> Option<(usize, &Point)> {
        self.points.iter().enumerate().min_by(|a, b| {
            a.1.arrival_at_load(load, default_load)
                .partial_cmp(&b.1.arrival_at_load(load, default_load))
                .expect("finite")
        })
    }

    /// The cheapest point irrespective of timing.
    pub fn cheapest(&self) -> Option<(usize, &Point)> {
        self.points
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.cost.partial_cmp(&b.1.cost).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(arrival: f64, cost: f64) -> Point {
        Point {
            arrival,
            cost,
            drive: 1.0,
            gate: None,
            inputs: Vec::new(),
        }
    }

    #[test]
    fn finalize_keeps_pareto_frontier() {
        let mut c = Curve::new();
        c.push(pt(1.0, 10.0));
        c.push(pt(2.0, 5.0));
        c.push(pt(1.5, 12.0)); // inferior: slower than 1.0 and costlier
        c.push(pt(3.0, 5.0)); // inferior: same cost as 2.0 but slower
        c.push(pt(4.0, 1.0));
        c.finalize(0.0);
        let arr: Vec<f64> = c.points().iter().map(|p| p.arrival).collect();
        assert_eq!(arr, vec![1.0, 2.0, 4.0]);
        // strictly decreasing costs
        let costs: Vec<f64> = c.points().iter().map(|p| p.cost).collect();
        assert!(costs.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn epsilon_merges_close_points() {
        let mut c = Curve::new();
        c.push(pt(1.00, 10.0));
        c.push(pt(1.05, 9.0));
        c.push(pt(2.0, 5.0));
        c.finalize(0.1);
        assert_eq!(c.points().len(), 2);
        assert_eq!(c.points()[0].cost, 9.0);
    }

    #[test]
    fn best_within_respects_load_shift() {
        let mut c = Curve::new();
        let mut fast = pt(1.0, 10.0);
        fast.drive = 2.0;
        let mut slow = pt(2.0, 5.0);
        slow.drive = 0.1;
        c.push(fast);
        c.push(slow);
        c.finalize(0.0);
        // at default load: cheapest within 2.0 is the slow point
        let (_, p) = c.best_within(2.0, 1.0, 1.0).unwrap();
        assert_eq!(p.cost, 5.0);
        // heavy load (Δ=2): fast point shifts to 1+2·2=5, slow to 2+0.2=2.2;
        // requirement 2.3 still admits the slow point only.
        let (_, p) = c.best_within(2.3, 3.0, 1.0).unwrap();
        assert_eq!(p.cost, 5.0);
        // requirement 2.0 at heavy load admits nothing.
        assert!(c.best_within(2.0, 3.0, 1.0).is_none());
    }

    #[test]
    fn invariant_violation_detects_breaks() {
        let mut good = Curve::new();
        good.push(pt(1.0, 10.0));
        good.push(pt(2.0, 5.0));
        assert!(good.invariant_violation().is_none());

        let mut dominated = Curve::new();
        dominated.push_unpruned_for_test(pt(1.0, 10.0));
        dominated.push_unpruned_for_test(pt(2.0, 10.0)); // slower, not cheaper
        assert!(dominated
            .invariant_violation()
            .unwrap()
            .contains("dominated"));

        let mut unsorted = Curve::new();
        unsorted.push_unpruned_for_test(pt(2.0, 5.0));
        unsorted.push_unpruned_for_test(pt(1.0, 10.0));
        assert!(unsorted
            .invariant_violation()
            .unwrap()
            .contains("strictly increasing"));

        let mut nan = Curve::new();
        nan.push_unpruned_for_test(pt(f64::NAN, 1.0));
        assert!(nan.invariant_violation().unwrap().contains("non-finite"));
    }

    /// The pre-insertion-pruning `finalize`: sort, batch Pareto prune,
    /// ε-merge, thin. Kept as the oracle for the incremental rewrite.
    fn finalize_reference(mut points: Vec<Point>, epsilon: f64) -> Vec<Point> {
        if points.is_empty() {
            return points;
        }
        points.sort_by(|a, b| {
            (a.arrival, a.cost)
                .partial_cmp(&(b.arrival, b.cost))
                .expect("finite")
        });
        let mut kept: Vec<Point> = Vec::with_capacity(points.len());
        let mut best_cost = f64::INFINITY;
        for p in points {
            if p.cost < best_cost - 1e-12 {
                best_cost = p.cost;
                kept.push(p);
            }
        }
        if epsilon > 0.0 {
            let mut merged: Vec<Point> = Vec::with_capacity(kept.len());
            for p in kept {
                if let Some(last) = merged.last() {
                    if p.arrival - last.arrival < epsilon {
                        merged.pop();
                    }
                }
                merged.push(p);
            }
            kept = merged;
        }
        if kept.len() > Curve::MAX_POINTS {
            let n = kept.len();
            let mut thinned: Vec<Point> = Vec::with_capacity(Curve::MAX_POINTS);
            for k in 0..Curve::MAX_POINTS {
                let idx = k * (n - 1) / (Curve::MAX_POINTS - 1);
                thinned.push(kept[idx].clone());
            }
            thinned.dedup_by(|a, b| a.arrival == b.arrival && a.cost == b.cost);
            kept = thinned;
        }
        kept
    }

    #[test]
    fn push_finalize_matches_batch_reference_on_random_curves() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xCA11ED);
        for case in 0..300 {
            let n = rng.gen_range(0usize..80);
            let epsilon = [0.0, 0.05, 0.5][case % 3];
            let pts: Vec<Point> = (0..n)
                .map(|_| pt(rng.gen_range(0.0..10.0), rng.gen_range(0.0..100.0)))
                .collect();
            let mut c = Curve::new();
            for p in &pts {
                c.push(p.clone());
            }
            c.finalize(epsilon);
            let want = finalize_reference(pts, epsilon);
            let got: Vec<(f64, f64)> = c.points().iter().map(|p| (p.arrival, p.cost)).collect();
            let want: Vec<(f64, f64)> = want.iter().map(|p| (p.arrival, p.cost)).collect();
            assert_eq!(got, want, "case {case} (n={n}, ε={epsilon})");
        }
    }

    #[test]
    fn push_prunes_incrementally() {
        let mut c = Curve::new();
        c.push(pt(2.0, 5.0));
        c.push(pt(1.0, 10.0)); // out-of-order insert: lands first
        c.push(pt(1.5, 12.0)); // dominated by (1.0, 10.0): dropped
        c.push(pt(3.0, 5.0)); // dominated by (2.0, 5.0): dropped
        c.push(pt(0.5, 4.0)); // dominates everything: curve collapses
        let got: Vec<(f64, f64)> = c.points().iter().map(|p| (p.arrival, p.cost)).collect();
        assert_eq!(got, vec![(0.5, 4.0)]);
        assert!(c.invariant_violation().is_none());
    }

    #[test]
    fn fastest_and_cheapest() {
        let mut c = Curve::new();
        c.push(pt(1.0, 10.0));
        c.push(pt(2.0, 5.0));
        c.finalize(0.0);
        assert_eq!(c.fastest(1.0, 1.0).unwrap().1.arrival, 1.0);
        assert_eq!(c.cheapest().unwrap().1.cost, 5.0);
    }
}
