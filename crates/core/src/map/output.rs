//! Output formats for mapped netlists.

use crate::map::mapper::{MappedNetwork, NetRef};
use genlib::Library;
use netlist::{Cube, Lit, Network, NodeId, Sop};
use std::collections::BTreeMap;
use std::fmt::Write as _;

impl MappedNetwork {
    /// Histogram of library cells used, by cell name.
    pub fn gate_histogram(&self, lib: &Library) -> BTreeMap<String, usize> {
        let mut h = BTreeMap::new();
        for inst in &self.instances {
            *h.entry(lib.gates()[inst.gate].name().to_string())
                .or_insert(0) += 1;
        }
        h
    }

    /// Serialize the mapped netlist as structural BLIF: one `.names` block
    /// per gate instance (minterm cover of the cell function), preserving
    /// instance names and output names. The result parses back through
    /// [`netlist::parse_blif`] with identical function.
    ///
    /// # Panics
    /// Panics if a cell has more than 16 inputs (truth-table enumeration).
    pub fn to_blif(&self, lib: &Library, model_name: &str) -> String {
        let mut out = String::new();
        let _ = writeln!(out, ".model {model_name}");
        let _ = writeln!(out, ".inputs {}", self.pi_names.join(" "));
        let po_names: Vec<&str> = self.outputs.iter().map(|(n, _)| n.as_str()).collect();
        let _ = writeln!(out, ".outputs {}", po_names.join(" "));
        let net_name = |r: &NetRef| -> String {
            match r {
                NetRef::Pi(i) => self.pi_names[*i].clone(),
                NetRef::Inst(i) => self.instances[*i].name.clone(),
            }
        };
        for inst in &self.instances {
            let gate = &lib.gates()[inst.gate];
            let k = gate.inputs().len();
            assert!(k <= 16, "cell too wide for truth-table emission");
            let ins: Vec<String> = inst.inputs.iter().map(&net_name).collect();
            let _ = writeln!(out, "# cell {}", gate.name());
            let _ = writeln!(out, ".names {} {}", ins.join(" "), inst.name);
            for bits in 0..(1u32 << k) {
                let assignment: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                if gate.eval(&assignment) {
                    let row: String = assignment
                        .iter()
                        .map(|&v| if v { '1' } else { '0' })
                        .collect();
                    let _ = writeln!(out, "{row} 1");
                }
            }
        }
        for (name, r) in &self.outputs {
            let src = net_name(r);
            if src != *name {
                let _ = writeln!(out, ".names {src} {name}\n1 1");
            }
        }
        out.push_str(".end\n");
        out
    }

    /// Reconstruct a [`Network`] view of the mapped netlist: one SOP node
    /// per gate instance (minterm cover of the cell function), preserving
    /// primary-input, instance, and output names. The result computes the
    /// same function as [`MappedNetwork::eval_outputs`] and is the bridge
    /// into the `verify` equivalence checker.
    ///
    /// # Panics
    /// Panics if a cell has more than 16 inputs (truth-table enumeration)
    /// or if instance/input names collide — both indicate a corrupt mapped
    /// netlist.
    pub fn to_network(&self, lib: &Library, model_name: &str) -> Network {
        let mut net = Network::new(model_name);
        let pis: Vec<NodeId> = self
            .pi_names
            .iter()
            .map(|n| {
                net.add_input(n)
                    .expect("duplicate PI name in mapped netlist")
            })
            .collect();
        let mut insts: Vec<NodeId> = Vec::with_capacity(self.instances.len());
        for inst in &self.instances {
            let gate = &lib.gates()[inst.gate];
            let k = gate.inputs().len();
            assert!(k <= 16, "cell too wide for truth-table emission");
            let fanins: Vec<NodeId> = inst
                .inputs
                .iter()
                .map(|r| match r {
                    NetRef::Pi(i) => pis[*i],
                    NetRef::Inst(i) => insts[*i],
                })
                .collect();
            let mut cubes = Vec::new();
            for bits in 0..(1u32 << k) {
                let assignment: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                if gate.eval(&assignment) {
                    let lits = assignment
                        .iter()
                        .map(|&v| if v { Lit::Pos } else { Lit::Neg })
                        .collect();
                    cubes.push(Cube::new(lits));
                }
            }
            let sop = Sop::from_cubes(k, cubes);
            insts.push(
                net.add_logic(&inst.name, fanins, sop)
                    .expect("duplicate instance name in mapped netlist"),
            );
        }
        for (name, r) in &self.outputs {
            let node = match r {
                NetRef::Pi(i) => pis[*i],
                NetRef::Inst(i) => insts[*i],
            };
            net.add_output(name, node);
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use crate::map::mapper::{map_network, MapOptions};
    use crate::map::subject::SubjectAig;
    use activity::{analyze, TransitionModel};
    use genlib::builtin::lib2_like;
    use netlist::parse_blif;

    #[test]
    fn blif_roundtrip_preserves_function() {
        let blif = ".model t\n.inputs a b c d\n.outputs f g\n.names a b x\n11 1\n\
                    .names c d y\n1- 1\n-1 1\n.names x y f\n11 1\n.names x c g\n0- 1\n-0 1\n.end\n";
        let net = parse_blif(blif).unwrap().network;
        let act = analyze(&net, &[0.5; 4], TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        let lib = lib2_like();
        let mapped = map_network(&aig, &lib, &MapOptions::power()).unwrap();

        let text = mapped.to_blif(&lib, "t_mapped");
        let back = parse_blif(&text).unwrap().network;
        for bits in 0..16u32 {
            let pis: Vec<bool> = (0..4).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                back.eval_outputs(&pis),
                mapped.eval_outputs(&lib, &pis),
                "at {pis:?}"
            );
            assert_eq!(back.eval_outputs(&pis), net.eval_outputs(&pis));
        }
    }

    #[test]
    fn network_view_matches_mapped_eval() {
        let blif = ".model t\n.inputs a b c\n.outputs f g\n.names a b x\n11 1\n\
                    .names x c f\n1- 1\n-1 1\n.names a c g\n0- 1\n-0 1\n.end\n";
        let net = parse_blif(blif).unwrap().network;
        let act = analyze(&net, &[0.5; 3], TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        let lib = lib2_like();
        let mapped = map_network(&aig, &lib, &MapOptions::power()).unwrap();

        let view = mapped.to_network(&lib, "t_mapped");
        assert_eq!(view.inputs().len(), mapped.pi_names.len());
        assert_eq!(view.outputs().len(), mapped.outputs.len());
        for bits in 0..8u32 {
            let pis: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                view.eval_outputs(&pis),
                mapped.eval_outputs(&lib, &pis),
                "at {pis:?}"
            );
        }
    }

    #[test]
    fn histogram_counts_cells() {
        let blif = ".model t\n.inputs a b\n.outputs f\n.names a b x\n11 1\n.names x f\n0 1\n.end\n";
        let net = parse_blif(blif).unwrap().network;
        let act = analyze(&net, &[0.5; 2], TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        let lib = lib2_like();
        let mapped = map_network(&aig, &lib, &MapOptions::area()).unwrap();
        let h = mapped.gate_histogram(&lib);
        let total: usize = h.values().sum();
        assert_eq!(total, mapped.instances.len());
        assert!(total >= 1);
    }
}
