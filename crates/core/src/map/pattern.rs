//! Library gates compiled into AIG pattern trees.
//!
//! Each gate's Boolean expression is normalized (NNF, flattened n-ary
//! AND/OR) and every binary-tree shape of its n-ary operators is
//! enumerated, producing a set of AND/complement pattern trees. A pattern
//! whose root carries a complement ("inverting-root") matches the *negative*
//! phase of a subject node.

use genlib::{Expr, Library};
use std::collections::HashSet;

/// A pattern tree node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatNode {
    /// Gate input pin (position in the gate's input list).
    Leaf(usize),
    /// AND of two edges.
    And(Box<PatEdge>, Box<PatEdge>),
}

/// An edge to a pattern node, possibly complemented.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PatEdge {
    /// Complement flag.
    pub compl: bool,
    /// Target node.
    pub node: PatNode,
}

impl PatEdge {
    fn not(mut self) -> PatEdge {
        self.compl = !self.compl;
        self
    }

    fn canonical(&self) -> String {
        let c = if self.compl { "!" } else { "" };
        match &self.node {
            PatNode::Leaf(i) => format!("{c}{i}"),
            PatNode::And(a, b) => {
                let (sa, sb) = (a.canonical(), b.canonical());
                if sa <= sb {
                    format!("{c}({sa}*{sb})")
                } else {
                    format!("{c}({sb}*{sa})")
                }
            }
        }
    }
}

/// One compiled pattern of a gate.
#[derive(Debug, Clone)]
pub struct Pattern {
    /// Index of the gate in the [`PatternSet`]'s library.
    pub gate: usize,
    /// True when the pattern root is complemented (NAND/NOR/AOI/OAI/XOR…):
    /// such patterns implement the *complement* of the subject AND node
    /// they match at, i.e. contribute to its negative-phase curve.
    pub root_compl: bool,
    /// Root node (always an [`PatNode::And`]; single-leaf gates are kept in
    /// [`PatternSet::inverters`]/[`PatternSet::buffers`] instead).
    pub root: PatNode,
    /// Number of gate input pins.
    pub pin_count: usize,
}

/// All patterns of a library plus the special single-input cells.
#[derive(Debug, Clone)]
pub struct PatternSet {
    patterns: Vec<Pattern>,
    inverters: Vec<usize>,
    buffers: Vec<usize>,
}

/// Cap on shapes enumerated per gate (guards degenerate libraries).
const MAX_SHAPES_PER_GATE: usize = 256;

impl PatternSet {
    /// Compile every gate of the library.
    pub fn from_library(lib: &Library) -> PatternSet {
        let mut patterns = Vec::new();
        let mut inverters = Vec::new();
        let mut buffers = Vec::new();
        for (gi, gate) in lib.gates().iter().enumerate() {
            if gate.is_inverter() {
                inverters.push(gi);
                continue;
            }
            if gate.is_buffer() {
                buffers.push(gi);
                continue;
            }
            if gate.inputs().is_empty() {
                continue; // constant cells are not used by the tree mapper
            }
            let shapes = shapes_of(&gate.function().normalize());
            let mut seen: HashSet<String> = HashSet::new();
            for e in shapes {
                if !seen.insert(e.canonical()) {
                    continue;
                }
                match e.node {
                    PatNode::Leaf(_) => {} // single-literal functions handled above
                    PatNode::And(..) => patterns.push(Pattern {
                        gate: gi,
                        root_compl: e.compl,
                        root: e.node,
                        pin_count: gate.inputs().len(),
                    }),
                }
            }
        }
        PatternSet {
            patterns,
            inverters,
            buffers,
        }
    }

    /// Compiled AND-rooted patterns.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Library indices of inverter cells.
    pub fn inverters(&self) -> &[usize] {
        &self.inverters
    }

    /// Library indices of buffer cells.
    pub fn buffers(&self) -> &[usize] {
        &self.buffers
    }
}

/// All binary shapes of an NNF expression, as pattern edges.
fn shapes_of(e: &Expr) -> Vec<PatEdge> {
    match e {
        Expr::Var(i) => vec![PatEdge {
            compl: false,
            node: PatNode::Leaf(*i),
        }],
        Expr::Not(inner) => shapes_of(inner).into_iter().map(PatEdge::not).collect(),
        Expr::And(kids) => nary_shapes(kids, false),
        Expr::Or(kids) => {
            // a + b = !(!a · !b): AND over complemented children, root
            // complemented.
            nary_shapes(kids, true)
        }
        Expr::Zero | Expr::One => Vec::new(),
    }
}

/// Binary shapes of an n-ary AND (or, with `or_mode`, OR via De Morgan).
fn nary_shapes(kids: &[Expr], or_mode: bool) -> Vec<PatEdge> {
    let child_shapes: Vec<Vec<PatEdge>> = kids
        .iter()
        .map(|k| {
            let mut s = shapes_of(k);
            if or_mode {
                s = s.into_iter().map(PatEdge::not).collect();
            }
            s
        })
        .collect();
    // Enumerate merge histories over the children; each child contributes
    // each of its own shapes.
    let items: Vec<Vec<PatEdge>> = child_shapes;
    let mut out = Vec::new();
    merge_histories(&items, &mut out);
    if or_mode {
        out = out.into_iter().map(PatEdge::not).collect();
    }
    out
}

fn merge_histories(items: &[Vec<PatEdge>], out: &mut Vec<PatEdge>) {
    fn rec(items: Vec<Vec<PatEdge>>, out: &mut Vec<PatEdge>) {
        if out.len() >= MAX_SHAPES_PER_GATE {
            return;
        }
        if items.len() == 1 {
            out.extend(items.into_iter().next().expect("one item"));
            return;
        }
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                let mut rest: Vec<Vec<PatEdge>> = Vec::with_capacity(items.len() - 1);
                for (k, it) in items.iter().enumerate() {
                    if k != i && k != j {
                        rest.push(it.clone());
                    }
                }
                // merged alternatives: cross product of the two item shape sets
                let mut merged: Vec<PatEdge> = Vec::new();
                for a in &items[i] {
                    for b in &items[j] {
                        merged.push(PatEdge {
                            compl: false,
                            node: PatNode::And(Box::new(a.clone()), Box::new(b.clone())),
                        });
                    }
                }
                rest.push(merged);
                rec(rest, out);
            }
        }
    }
    rec(items.to_vec(), out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use genlib::builtin::lib2_like;

    fn set() -> (genlib::Library, PatternSet) {
        let lib = lib2_like();
        let ps = PatternSet::from_library(&lib);
        (lib, ps)
    }

    fn patterns_for<'a>(lib: &genlib::Library, ps: &'a PatternSet, name: &str) -> Vec<&'a Pattern> {
        let gi = lib.gates().iter().position(|g| g.name() == name).unwrap();
        ps.patterns().iter().filter(|p| p.gate == gi).collect()
    }

    #[test]
    fn inverters_and_buffers_split_out() {
        let (lib, ps) = set();
        assert_eq!(ps.inverters().len(), 3);
        assert_eq!(ps.buffers().len(), 1);
        for &i in ps.inverters() {
            assert!(lib.gates()[i].is_inverter());
        }
    }

    #[test]
    fn nand2_is_single_inverting_and() {
        let (lib, ps) = set();
        let pats = patterns_for(&lib, &ps, "nand2");
        assert_eq!(pats.len(), 1);
        assert!(pats[0].root_compl);
        match &pats[0].root {
            PatNode::And(a, b) => {
                assert!(!a.compl && !b.compl);
                assert!(matches!(a.node, PatNode::Leaf(_)));
                assert!(matches!(b.node, PatNode::Leaf(_)));
            }
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn nor2_has_complemented_leaves_noninverting_root() {
        let (lib, ps) = set();
        let pats = patterns_for(&lib, &ps, "nor2");
        // !(a+b) = !a·!b : root AND not complemented, both leaf edges
        // complemented.
        assert_eq!(pats.len(), 1);
        assert!(!pats[0].root_compl);
        match &pats[0].root {
            PatNode::And(a, b) => assert!(a.compl && b.compl),
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn nand4_enumerates_shapes() {
        let (lib, ps) = set();
        let pats = patterns_for(&lib, &ps, "nand4");
        // binary shapes of a 4-ary AND after canonical dedup: the balanced
        // one and the skewed ones — with labelled leaves there are 15 merge
        // histories but canonical form (sibling-order invariant) leaves 15
        // distinct shapes? No: labelled trees over 4 distinct leaves up to
        // sibling order = 15. All have root_compl = true.
        assert_eq!(pats.len(), 15);
        assert!(pats.iter().all(|p| p.root_compl));
    }

    #[test]
    fn aoi21_pattern_structure() {
        let (lib, ps) = set();
        let pats = patterns_for(&lib, &ps, "aoi21");
        // !(ab + c) = !(ab)·!c : root AND non-complemented, one edge is a
        // complemented AND, the other a complemented leaf.
        assert_eq!(pats.len(), 1);
        let p = &pats[0];
        assert!(!p.root_compl);
        match &p.root {
            PatNode::And(x, y) => {
                let (leaf_edge, and_edge) = if matches!(x.node, PatNode::Leaf(_)) {
                    (x, y)
                } else {
                    (y, x)
                };
                assert!(leaf_edge.compl);
                assert!(and_edge.compl);
                assert!(matches!(and_edge.node, PatNode::And(..)));
            }
            other => panic!("unexpected root {other:?}"),
        }
    }

    #[test]
    fn xor_has_multiple_leaf_occurrences() {
        let (lib, ps) = set();
        let pats = patterns_for(&lib, &ps, "xor2");
        assert!(!pats.is_empty());
        fn count_leaves(n: &PatNode) -> usize {
            match n {
                PatNode::Leaf(_) => 1,
                PatNode::And(a, b) => count_leaves(&a.node) + count_leaves(&b.node),
            }
        }
        for p in &pats {
            assert_eq!(count_leaves(&p.root), 4, "xor pattern binds 4 leaf slots");
        }
    }

    #[test]
    fn every_multi_input_gate_has_patterns() {
        let (lib, ps) = set();
        for (gi, g) in lib.gates().iter().enumerate() {
            if g.inputs().len() >= 2 {
                assert!(
                    ps.patterns().iter().any(|p| p.gate == gi),
                    "gate {} has no pattern",
                    g.name()
                );
            }
        }
    }
}
