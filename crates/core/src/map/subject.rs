//! Subject graphs: AND-inverter form of a decomposed network.

use activity::ActivityMap;
use netlist::{Network, NodeId};
use std::collections::HashMap;
use std::fmt;

/// A signal: an AIG node, possibly complemented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Signal {
    /// AIG node index.
    pub node: u32,
    /// True when the signal is the complement of the node output.
    pub compl: bool,
}

impl Signal {
    /// The complemented signal.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Signal {
        Signal {
            node: self.node,
            compl: !self.compl,
        }
    }
}

/// One AIG node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AigNode {
    /// Primary input (index into the original network's input list).
    Pi {
        /// Position in [`SubjectAig::pi_names`].
        input: usize,
    },
    /// 2-input AND over two signals.
    And {
        /// First input signal.
        a: Signal,
        /// Second input signal.
        b: Signal,
    },
}

/// Error converting a network into a subject graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The network contains a node the mapper cannot handle (constants or
    /// nodes wider than 2 inputs) — run sweep + decomposition first.
    UnsupportedNode(String),
    /// The library misses a required cell (an inverter).
    NoInverter,
    /// A primary output could not be mapped.
    UnmappedOutput(String),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::UnsupportedNode(n) => {
                write!(
                    f,
                    "node `{n}` is not 2-input AND/OR/INV/BUF; decompose and sweep first"
                )
            }
            MapError::NoInverter => write!(f, "library has no inverter cell"),
            MapError::UnmappedOutput(n) => write!(f, "primary output `{n}` has no mapping"),
        }
    }
}

impl std::error::Error for MapError {}

/// The subject AIG with per-node exact signal probabilities.
#[derive(Debug, Clone)]
pub struct SubjectAig {
    nodes: Vec<AigNode>,
    p_one: Vec<f64>,
    pi_names: Vec<String>,
    outputs: Vec<(String, Signal)>,
    strash: HashMap<(Signal, Signal), u32>,
    fanout_count: Vec<usize>,
    /// Per-node provenance: name of the source network node whose
    /// conversion created the AIG node (PIs carry their own name; a
    /// structurally-hashed AND keeps its first creator).
    source: Vec<String>,
}

impl SubjectAig {
    /// Convert a decomposed network (2-input AND/OR, INV, BUF nodes) into a
    /// subject AIG. `act` must be the activity map of `net` (exact BDD
    /// probabilities); AIG node probabilities are derived from it so domino
    /// phase asymmetries are preserved.
    ///
    /// # Errors
    /// Returns [`MapError::UnsupportedNode`] for constants or wide nodes.
    pub fn from_network(net: &Network, act: &ActivityMap) -> Result<SubjectAig, MapError> {
        let mut aig = SubjectAig {
            nodes: Vec::new(),
            p_one: Vec::new(),
            pi_names: Vec::new(),
            outputs: Vec::new(),
            strash: HashMap::new(),
            fanout_count: Vec::new(),
            source: Vec::new(),
        };
        let mut sig_of: HashMap<NodeId, Signal> = HashMap::new();
        for (i, &pi) in net.inputs().iter().enumerate() {
            aig.pi_names.push(net.node(pi).name().to_string());
            let n = aig.push(AigNode::Pi { input: i }, act.p_one(pi));
            aig.source.push(net.node(pi).name().to_string());
            sig_of.insert(
                pi,
                Signal {
                    node: n,
                    compl: false,
                },
            );
        }
        for id in net.topo_order().expect("acyclic") {
            let node = net.node(id);
            let Some(sop) = node.sop() else { continue };
            let fi = node.fanins();
            let sig = match (fi.len(), sop) {
                (1, s) => {
                    let src = sig_of[&fi[0]];
                    if s.eval(&[true]) && !s.eval(&[false]) {
                        src // buffer
                    } else if !s.eval(&[true]) && s.eval(&[false]) {
                        src.not() // inverter
                    } else {
                        return Err(MapError::UnsupportedNode(node.name().to_string()));
                    }
                }
                (2, s) => {
                    let (sa, sb) = (sig_of[&fi[0]], sig_of[&fi[1]]);
                    let tt: Vec<bool> =
                        [(false, false), (true, false), (false, true), (true, true)]
                            .iter()
                            .map(|&(x, y)| s.eval(&[x, y]))
                            .collect();
                    let p = act.p_one(id);
                    match tt.as_slice() {
                        // AND
                        [false, false, false, true] => aig.and(sa, sb, p),
                        // OR = !( !a · !b )
                        [false, true, true, true] => aig.and(sa.not(), sb.not(), 1.0 - p).not(),
                        // NAND
                        [true, true, true, false] => aig.and(sa, sb, 1.0 - p).not(),
                        // NOR
                        [true, false, false, false] => aig.and(sa.not(), sb.not(), p),
                        _ => return Err(MapError::UnsupportedNode(node.name().to_string())),
                    }
                }
                _ => return Err(MapError::UnsupportedNode(node.name().to_string())),
            };
            // Any AND nodes the conversion just created belong to this
            // network node's cone.
            while aig.source.len() < aig.nodes.len() {
                aig.source.push(node.name().to_string());
            }
            sig_of.insert(id, sig);
        }
        for (name, o) in net.outputs() {
            aig.outputs.push((name.clone(), sig_of[o]));
        }
        aig.count_fanouts();
        Ok(aig)
    }

    fn push(&mut self, node: AigNode, p_one: f64) -> u32 {
        self.nodes.push(node);
        self.p_one.push(p_one);
        (self.nodes.len() - 1) as u32
    }

    /// Create (or reuse, via structural hashing) `AND(a, b)` and return its
    /// non-complemented signal. `p_one_out` is the exact probability of the
    /// AND output being 1.
    fn and(&mut self, a: Signal, b: Signal, p_one_out: f64) -> Signal {
        let key = if a <= b { (a, b) } else { (b, a) };
        if let Some(&n) = self.strash.get(&key) {
            return Signal {
                node: n,
                compl: false,
            };
        }
        let n = self.push(AigNode::And { a: key.0, b: key.1 }, p_one_out);
        self.strash.insert(key, n);
        Signal {
            node: n,
            compl: false,
        }
    }

    fn count_fanouts(&mut self) {
        let mut fc = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            if let AigNode::And { a, b } = n {
                fc[a.node as usize] += 1;
                fc[b.node as usize] += 1;
            }
        }
        for (_, s) in &self.outputs {
            fc[s.node as usize] += 1;
        }
        self.fanout_count = fc;
    }

    /// Nodes in index order (a valid topological order by construction).
    pub fn nodes(&self) -> &[AigNode] {
        &self.nodes
    }

    /// Number of AIG nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the AIG is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// `P(node output = 1)` for the non-complemented node output.
    pub fn p_one(&self, node: u32) -> f64 {
        self.p_one[node as usize]
    }

    /// `P(signal = 1)` with the complement applied.
    pub fn p_signal(&self, s: Signal) -> f64 {
        if s.compl {
            1.0 - self.p_one(s.node)
        } else {
            self.p_one(s.node)
        }
    }

    /// Primary input names.
    pub fn pi_names(&self) -> &[String] {
        &self.pi_names
    }

    /// Primary outputs as `(name, signal)`.
    pub fn outputs(&self) -> &[(String, Signal)] {
        &self.outputs
    }

    /// Number of consumers of a node (either phase), POs included.
    pub fn fanout_count(&self, node: u32) -> usize {
        self.fanout_count[node as usize]
    }

    /// Provenance of an AIG node: the name of the network node whose
    /// conversion created it (a PI's own name for PI nodes).
    pub fn source(&self, node: u32) -> &str {
        &self.source[node as usize]
    }

    /// Evaluate the whole AIG on a PI assignment; returns node values.
    pub fn eval(&self, pis: &[bool]) -> Vec<bool> {
        assert_eq!(pis.len(), self.pi_names.len(), "PI count mismatch");
        let mut v = vec![false; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            v[i] = match *n {
                AigNode::Pi { input } => pis[input],
                AigNode::And { a, b } => {
                    (v[a.node as usize] ^ a.compl) && (v[b.node as usize] ^ b.compl)
                }
            };
        }
        v
    }

    /// Evaluate the primary outputs on a PI assignment.
    pub fn eval_outputs(&self, pis: &[bool]) -> Vec<bool> {
        let v = self.eval(pis);
        self.outputs
            .iter()
            .map(|&(_, s)| v[s.node as usize] ^ s.compl)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use activity::{analyze, TransitionModel};
    use netlist::parse_blif;

    fn decomposed_sample() -> Network {
        // AND/OR/INV network: f = (a·b) + !c ; g = !(a·b)
        parse_blif(
            ".model s\n.inputs a b c\n.outputs f g\n\
             .names a b x\n11 1\n\
             .names c ci\n0 1\n\
             .names x ci f\n1- 1\n-1 1\n\
             .names x g\n0 1\n.end\n",
        )
        .unwrap()
        .network
    }

    #[test]
    fn functional_equivalence() {
        let net = decomposed_sample();
        let act = analyze(&net, &[0.5; 3], TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(aig.eval_outputs(&v), net.eval_outputs(&v), "at {v:?}");
        }
    }

    #[test]
    fn inverters_do_not_create_nodes() {
        let net = decomposed_sample();
        let act = analyze(&net, &[0.5; 3], TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        // nodes: 3 PIs + AND(a,b) + OR(x, !c) = 5 (inverters are edges).
        assert_eq!(aig.len(), 5);
    }

    #[test]
    fn probabilities_match_bdd_analysis() {
        let net = decomposed_sample();
        let probs = [0.3, 0.7, 0.2];
        let act = analyze(&net, &probs, TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        // The OR output signal probability must equal the BDD value at f.
        let f_sig = aig.outputs().iter().find(|(n, _)| n == "f").unwrap().1;
        let f_id = net.find("f").unwrap();
        assert!((aig.p_signal(f_sig) - act.p_one(f_id)).abs() < 1e-9);
    }

    #[test]
    fn constants_rejected() {
        let net = parse_blif(".model c\n.inputs a\n.outputs k\n.names k\n1\n.end\n")
            .unwrap()
            .network;
        let act = analyze(&net, &[0.5], TransitionModel::StaticCmos);
        assert!(matches!(
            SubjectAig::from_network(&net, &act),
            Err(MapError::UnsupportedNode(_))
        ));
    }

    #[test]
    fn structural_hashing_shares_ands() {
        // two nodes computing a·b share one AIG node
        let net = parse_blif(
            ".model s\n.inputs a b\n.outputs f g\n.names a b f\n11 1\n\
             .names a b g\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let act = analyze(&net, &[0.5, 0.5], TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        assert_eq!(aig.len(), 3); // 2 PIs + 1 AND
    }

    #[test]
    fn fanout_counts() {
        let net = decomposed_sample();
        let act = analyze(&net, &[0.5; 3], TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&net, &act).unwrap();
        // x = AND(a,b) feeds the OR node and output g: fanout 2.
        let g_sig = aig.outputs().iter().find(|(n, _)| n == "g").unwrap().1;
        assert_eq!(aig.fanout_count(g_sig.node), 2);
    }
}
