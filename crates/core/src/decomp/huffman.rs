//! Huffman's algorithm (Algorithm 2.1) for quasi-linear merge functions.

use crate::decomp::objective::DecompObjective;
use crate::decomp::tree::DecompTree;

/// Build a decomposition tree by Huffman's rule: repeatedly merge the two
/// items with the smallest keys, where the key is
/// [`DecompObjective::huffman_key`]. Optimal for quasi-linear objectives
/// (Theorem 2.2 — the domino dynamic cases, eqs. 5–6); a heuristic
/// otherwise.
///
/// # Panics
/// Panics if `probs` is empty.
pub fn huffman_tree(probs: &[f64], obj: DecompObjective) -> DecompTree {
    assert!(!probs.is_empty(), "need at least one leaf");
    let mut items: Vec<DecompTree> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| DecompTree::leaf(i, p))
        .collect();
    while items.len() > 1 {
        // Find the two smallest keys. O(n) per step is fine for the widths
        // seen in node decomposition; the classic O(n log n) heap version
        // changes nothing observable.
        let mut i0 = 0;
        for i in 1..items.len() {
            if obj.huffman_key(items[i].p_root()) < obj.huffman_key(items[i0].p_root()) {
                i0 = i;
            }
        }
        let a = items.swap_remove(i0);
        let mut i1 = 0;
        for i in 1..items.len() {
            if obj.huffman_key(items[i].p_root()) < obj.huffman_key(items[i1].p_root()) {
                i1 = i;
            }
        }
        let b = items.swap_remove(i1);
        obs::counter!("decomp.huffman.merges");
        items.push(DecompTree::merge(a, b, obj));
    }
    items.pop().expect("one tree remains")
}

/// MINPOWER tree decomposition: Huffman for quasi-linear objectives,
/// Modified Huffman (Algorithm 2.2) otherwise. This is the dispatch the
/// paper prescribes in Section 2.1.
pub fn minpower_tree(probs: &[f64], obj: DecompObjective) -> DecompTree {
    if obj.quasi_linear() {
        huffman_tree(probs, obj)
    } else {
        crate::decomp::modified::modified_huffman_tree(probs, obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::exhaustive::exhaustive_minpower;
    use crate::decomp::objective::GateKind;
    use activity::TransitionModel;

    #[test]
    fn figure1_inputs_give_optimal_0222() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let t = huffman_tree(&[0.3, 0.4, 0.7, 0.5], obj);
        assert!((t.internal_cost(obj) - 0.222).abs() < 1e-12);
        // Strictly better than both configurations of Figure 1.
        assert!(t.internal_cost(obj) < 0.246);
    }

    #[test]
    fn huffman_matches_exhaustive_for_domino_p() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        for _ in 0..100 {
            let n = rng.gen_range(2..=6);
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..0.99)).collect();
            let h = huffman_tree(&probs, obj);
            let (best, _) = exhaustive_minpower(&probs, obj);
            assert!(
                h.internal_cost(obj) <= best + 1e-9,
                "Huffman {} vs optimum {} on {probs:?}",
                h.internal_cost(obj),
                best
            );
        }
    }

    #[test]
    fn huffman_matches_exhaustive_for_domino_n_or() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let obj = DecompObjective::new(TransitionModel::DominoN, GateKind::Or);
        for _ in 0..100 {
            let n = rng.gen_range(2..=5);
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..0.99)).collect();
            let h = huffman_tree(&probs, obj);
            let (best, _) = exhaustive_minpower(&probs, obj);
            assert!(h.internal_cost(obj) <= best + 1e-9);
        }
    }

    #[test]
    fn single_leaf_tree() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let t = huffman_tree(&[0.4], obj);
        assert_eq!(t.leaf_count(), 1);
        assert_eq!(t.height(), 0);
        assert_eq!(t.internal_cost(obj), 0.0);
    }

    #[test]
    fn tree_has_all_leaves_once() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let t = huffman_tree(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7], obj);
        let depths = t.leaf_depths();
        assert_eq!(depths.len(), 7);
        assert!(depths.iter().all(|&d| d != usize::MAX));
    }

    #[test]
    fn minpower_dispatch() {
        let dom = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let sta = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
        let probs = [0.3, 0.5, 0.7];
        // both return a valid 3-leaf tree
        assert_eq!(minpower_tree(&probs, dom).leaf_count(), 3);
        assert_eq!(minpower_tree(&probs, sta).leaf_count(), 3);
    }
}
