//! Power-efficient technology decomposition (Section 2 of the paper).
//!
//! The MINPOWER problem: decompose a wide AND/OR node into a tree of
//! 2-input gates minimizing the *sum of switching activities of internal
//! nodes*. Depending on the merge function this is solved by
//!
//! * [`huffman`] — Huffman's algorithm, optimal for quasi-linear merge
//!   functions (domino dynamic CMOS, uncorrelated inputs; Theorem 2.2);
//! * [`modified`] — the Modified Huffman greedy (Algorithm 2.2) for general
//!   merge functions (static CMOS, correlated inputs);
//! * [`bounded`] — BOUNDED-HEIGHT MINPOWER (Section 2.2): the classic
//!   package-merge for linear weights plus a feasibility-guarded greedy for
//!   general merge functions;
//! * [`exhaustive`] — exact optimum by enumerating all merge histories
//!   (the oracle behind Table 1 and the property tests);
//! * [`network`] — the network-level NAND decomposition with slack
//!   distribution (Section 2.3).

pub mod bounded;
pub mod exhaustive;
pub mod huffman;
pub mod modified;
pub mod network;
pub mod objective;
pub mod package_merge;
pub mod tree;

pub use bounded::{bounded_minpower_tree, min_height};
pub use exhaustive::exhaustive_minpower;
pub use huffman::{huffman_tree, minpower_tree};
pub use modified::{modified_huffman_correlated, modified_huffman_tree};
pub use network::{decompose_network, DecompOptions, DecompStyle, DecomposedNetwork};
pub use objective::{DecompObjective, GateKind};
pub use package_merge::package_merge_levels;
pub use tree::DecompTree;
