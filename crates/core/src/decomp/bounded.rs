//! BOUNDED-HEIGHT MINPOWER tree decomposition (Section 2.2).
//!
//! For general merge functions the paper replaces the PACKAGE step of
//! Larmore–Hirschberg with a minimum-`F` pairing and calls the result a
//! heuristic. We implement the equivalent *feasibility-guarded greedy*:
//! repeatedly merge the minimum-`F` pair subject to the invariant that the
//! remaining items can still be combined within the height bound. The
//! feasibility test is exact (merging the two shallowest items is optimal
//! for height — `F(x,y) = max(x,y)+1` is quasi-linear, as Section 2.1
//! notes), so the greedy always returns a tree meeting the bound whenever
//! one exists. The classic package-merge for linear weights lives in
//! [`crate::decomp::package_merge`].

use crate::decomp::objective::DecompObjective;
use crate::decomp::tree::DecompTree;

/// Minimum achievable tree height when combining items of the given
/// heights: repeatedly merge the two shallowest (Huffman on
/// `F(x,y) = max(x,y) + 1`).
pub fn min_height(heights: &[usize]) -> usize {
    assert!(!heights.is_empty(), "need at least one item");
    let mut hs: Vec<usize> = heights.to_vec();
    hs.sort_unstable_by(|a, b| b.cmp(a)); // descending; pop from the back
    while hs.len() > 1 {
        let a = hs.pop().expect("non-empty");
        let b = hs.pop().expect("non-empty");
        let m = a.max(b) + 1;
        // insert keeping descending order
        let pos = hs.partition_point(|&x| x > m);
        hs.insert(pos, m);
    }
    hs[0]
}

/// Build a MINPOWER tree whose height does not exceed `bound`.
///
/// Greedy: at each step, among all pairs `(i, j)` ordered by merged-node
/// switching activity `F_ij`, merge the first pair for which the resulting
/// item multiset still satisfies `min_height ≤ bound`.
///
/// Returns `None` when the bound is infeasible (`bound < ceil(log2 n)`).
///
/// # Panics
/// Panics if `probs` is empty.
pub fn bounded_minpower_tree(
    probs: &[f64],
    obj: DecompObjective,
    bound: usize,
) -> Option<DecompTree> {
    bounded_minpower_tree_with_heights(probs, &vec![0; probs.len()], obj, bound)
}

/// [`bounded_minpower_tree`] for leaves that already sit at non-zero
/// heights (e.g. cube roots whose AND trees were built first, or negated
/// literals behind an inverter). The bound applies to the overall tree:
/// a leaf with initial height `h` at depth `d` contributes `h + d`.
///
/// # Panics
/// Panics if `probs` and `leaf_heights` lengths differ or are empty.
pub fn bounded_minpower_tree_with_heights(
    probs: &[f64],
    leaf_heights: &[usize],
    obj: DecompObjective,
    bound: usize,
) -> Option<DecompTree> {
    assert!(!probs.is_empty(), "need at least one leaf");
    assert_eq!(probs.len(), leaf_heights.len(), "height per leaf required");
    let mut items: Vec<(DecompTree, usize)> = probs
        .iter()
        .zip(leaf_heights)
        .enumerate()
        .map(|(i, (&p, &h))| (DecompTree::leaf(i, p), h))
        .collect();
    if min_height(leaf_heights) > bound {
        return None;
    }
    while items.len() > 1 {
        // Rank all pairs by F.
        let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                pairs.push((
                    obj.pair_cost(items[i].0.p_root(), items[j].0.p_root()),
                    i,
                    j,
                ));
            }
        }
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite costs"));
        let mut chosen: Option<(usize, usize)> = None;
        for &(_, i, j) in &pairs {
            let merged_h = items[i].1.max(items[j].1) + 1;
            if merged_h > bound {
                continue;
            }
            let mut hs: Vec<usize> = Vec::with_capacity(items.len() - 1);
            for (k, (_, h)) in items.iter().enumerate() {
                if k != i && k != j {
                    hs.push(*h);
                }
            }
            hs.push(merged_h);
            if min_height(&hs) <= bound {
                chosen = Some((i, j));
                break;
            }
        }
        let (i, j) = chosen.expect("feasible state always admits a feasible merge");
        let (b, hb) = items.swap_remove(j);
        let (a, ha) = items.swap_remove(i);
        items.push((DecompTree::merge(a, b, obj), ha.max(hb) + 1));
    }
    let (mut tree, h) = items.pop().expect("one tree remains");
    debug_assert!(h <= bound);
    improve_by_leaf_swaps(&mut tree, leaf_heights, obj);
    Some(tree)
}

/// Hill-climbing post-pass: try swapping pairs of leaves with equal initial
/// heights (which preserves every node height and thus the bound) and keep
/// swaps that reduce the internal switching cost. Repairs the myopia of the
/// greedy pairing under tight bounds.
fn improve_by_leaf_swaps(tree: &mut DecompTree, leaf_heights: &[usize], obj: DecompObjective) {
    let n = leaf_heights.len();
    if n < 3 {
        return;
    }
    let mut cost = tree.internal_cost(obj);
    loop {
        let mut improved = false;
        for a in 0..n {
            for b in a + 1..n {
                if leaf_heights[a] != leaf_heights[b] {
                    continue;
                }
                let mut trial = tree.clone();
                trial.swap_leaves(a, b, obj);
                let c = trial.internal_cost(obj);
                if c + 1e-12 < cost {
                    *tree = trial;
                    cost = c;
                    improved = true;
                }
            }
        }
        if !improved {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::exhaustive::{exhaustive_bounded_minpower, exhaustive_minpower};
    use crate::decomp::objective::GateKind;
    use activity::TransitionModel;

    #[test]
    fn min_height_balanced() {
        assert_eq!(min_height(&[0, 0, 0, 0]), 2);
        assert_eq!(min_height(&[0, 0, 0, 0, 0]), 3);
        assert_eq!(min_height(&[0]), 0);
        assert_eq!(min_height(&[2, 0, 0]), 3);
        assert_eq!(min_height(&[3, 3]), 4);
    }

    #[test]
    fn respects_bound_and_feasibility() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let probs = [0.3, 0.4, 0.7, 0.5];
        assert!(bounded_minpower_tree(&probs, obj, 1).is_none());
        for bound in 2..=3 {
            let t = bounded_minpower_tree(&probs, obj, bound).expect("feasible");
            assert!(t.height() <= bound);
            assert_eq!(t.leaf_count(), 4);
        }
    }

    #[test]
    fn loose_bound_recovers_unbounded_optimum_for_domino() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        for _ in 0..50 {
            let n = rng.gen_range(2..=6);
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..0.99)).collect();
            let t = bounded_minpower_tree(&probs, obj, n).expect("bound n is always feasible");
            let (best, _) = exhaustive_minpower(&probs, obj);
            assert!(
                (t.internal_cost(obj) - best).abs() < 1e-9,
                "with a loose bound the greedy must equal Huffman's optimum"
            );
        }
    }

    #[test]
    fn near_optimal_under_tight_bounds() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
        let mut optimal = 0;
        let mut total = 0;
        for _ in 0..100 {
            let n = rng.gen_range(3..=6);
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..0.99)).collect();
            let bound = (n as f64).log2().ceil() as usize;
            let t = bounded_minpower_tree(&probs, obj, bound).expect("balanced is feasible");
            assert!(t.height() <= bound);
            let (best, _) = exhaustive_bounded_minpower(&probs, obj, bound).expect("feasible");
            assert!(t.internal_cost(obj) >= best - 1e-9);
            total += 1;
            if t.internal_cost(obj) <= best + 1e-9 {
                optimal += 1;
            }
        }
        assert!(
            optimal * 100 / total >= 70,
            "only {optimal}/{total} optimal"
        );
    }

    #[test]
    fn bound_one_with_two_leaves() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let t = bounded_minpower_tree(&[0.2, 0.9], obj, 1).expect("feasible");
        assert_eq!(t.height(), 1);
    }
}
