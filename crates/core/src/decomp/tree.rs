//! Decomposition trees.

use crate::decomp::objective::DecompObjective;

/// A binary decomposition tree over `n` leaves.
///
/// Nodes are stored in an arena; internal nodes carry the 1-probability of
/// their output signal as computed by the objective used to build the tree.
#[derive(Debug, Clone, PartialEq)]
pub struct DecompTree {
    nodes: Vec<TreeNode>,
    root: usize,
    leaf_count: usize,
}

/// One node of a [`DecompTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TreeNode {
    /// Leaf `i` with 1-probability `p`.
    Leaf {
        /// Index of the leaf in the original weight list.
        input: usize,
        /// 1-probability of the leaf signal.
        p: f64,
    },
    /// Internal 2-input gate.
    Internal {
        /// Left child arena index.
        left: usize,
        /// Right child arena index.
        right: usize,
        /// 1-probability of the gate output.
        p: f64,
    },
}

impl DecompTree {
    /// A tree with a single leaf (no internal nodes).
    pub fn leaf(input: usize, p: f64) -> DecompTree {
        DecompTree {
            nodes: vec![TreeNode::Leaf { input, p }],
            root: 0,
            leaf_count: 1,
        }
    }

    /// Merge two trees under a new internal node whose probability is
    /// computed by `obj`.
    pub fn merge(a: DecompTree, b: DecompTree, obj: DecompObjective) -> DecompTree {
        let p = obj.merge_p(a.p_root(), b.p_root());
        let mut nodes = a.nodes;
        let offset = nodes.len();
        let a_root = a.root;
        nodes.extend(b.nodes.into_iter().map(|n| match n {
            TreeNode::Leaf { input, p } => TreeNode::Leaf { input, p },
            TreeNode::Internal { left, right, p } => TreeNode::Internal {
                left: left + offset,
                right: right + offset,
                p,
            },
        }));
        let b_root = b.root + offset;
        nodes.push(TreeNode::Internal {
            left: a_root,
            right: b_root,
            p,
        });
        DecompTree {
            root: nodes.len() - 1,
            leaf_count: a.leaf_count + b.leaf_count,
            nodes,
        }
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaf_count
    }

    /// Arena nodes.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Arena index of the root.
    pub fn root(&self) -> usize {
        self.root
    }

    /// 1-probability at the root.
    pub fn p_root(&self) -> f64 {
        self.p_of(self.root)
    }

    fn p_of(&self, idx: usize) -> f64 {
        match self.nodes[idx] {
            TreeNode::Leaf { p, .. } | TreeNode::Internal { p, .. } => p,
        }
    }

    /// Swap the leaf positions of inputs `a` and `b` (exchanging both the
    /// `input` indices and leaf probabilities), then recompute internal
    /// probabilities bottom-up with `obj`.
    ///
    /// # Panics
    /// Panics if either input index is not a leaf of the tree.
    pub fn swap_leaves(&mut self, a: usize, b: usize, obj: DecompObjective) {
        let mut ia = None;
        let mut ib = None;
        for (idx, n) in self.nodes.iter().enumerate() {
            if let TreeNode::Leaf { input, .. } = n {
                if *input == a {
                    ia = Some(idx);
                } else if *input == b {
                    ib = Some(idx);
                }
            }
        }
        let (ia, ib) = (ia.expect("leaf a present"), ib.expect("leaf b present"));
        let (pa, pb) = (self.p_of(ia), self.p_of(ib));
        self.nodes[ia] = TreeNode::Leaf { input: b, p: pb };
        self.nodes[ib] = TreeNode::Leaf { input: a, p: pa };
        self.recompute_probs(obj);
    }

    /// Recompute internal probabilities bottom-up (children always precede
    /// parents in arena order by construction).
    pub fn recompute_probs(&mut self, obj: DecompObjective) {
        for idx in 0..self.nodes.len() {
            if let TreeNode::Internal { left, right, .. } = self.nodes[idx] {
                let p = obj.merge_p(self.p_of(left), self.p_of(right));
                if let TreeNode::Internal { p: rp, .. } = &mut self.nodes[idx] {
                    *rp = p;
                }
            }
        }
    }

    /// Replace the root's stored 1-probability (used by correlation-aware
    /// construction, where the merge probability comes from a joint rather
    /// than a product).
    pub fn with_root_p(mut self, p: f64) -> DecompTree {
        match &mut self.nodes[self.root] {
            TreeNode::Leaf { p: rp, .. } | TreeNode::Internal { p: rp, .. } => *rp = p,
        }
        self
    }

    /// Sum of switching activities of **internal** nodes — the MINPOWER
    /// objective `G = Σ W_i` of Section 2.1.
    pub fn internal_cost(&self, obj: DecompObjective) -> f64 {
        self.nodes
            .iter()
            .filter_map(|n| match n {
                TreeNode::Internal { p, .. } => Some(obj.cost(*p)),
                TreeNode::Leaf { .. } => None,
            })
            .sum()
    }

    /// Total switching (internal nodes plus leaves) — the `SR` quantity of
    /// Figure 1.
    pub fn total_cost(&self, obj: DecompObjective) -> f64 {
        self.nodes
            .iter()
            .map(|n| match n {
                TreeNode::Internal { p, .. } | TreeNode::Leaf { p, .. } => obj.cost(*p),
            })
            .sum()
    }

    /// Height of the tree in gate levels (a single leaf has height 0).
    pub fn height(&self) -> usize {
        self.height_of(self.root)
    }

    fn height_of(&self, idx: usize) -> usize {
        match self.nodes[idx] {
            TreeNode::Leaf { .. } => 0,
            TreeNode::Internal { left, right, .. } => {
                1 + self.height_of(left).max(self.height_of(right))
            }
        }
    }

    /// Depth of each leaf, indexed by original leaf input index.
    ///
    /// # Panics
    /// Panics if leaf input indices are not `0..leaf_count`.
    pub fn leaf_depths(&self) -> Vec<usize> {
        let mut depths = vec![usize::MAX; self.leaf_count];
        let mut stack = vec![(self.root, 0usize)];
        while let Some((idx, d)) = stack.pop() {
            match self.nodes[idx] {
                TreeNode::Leaf { input, .. } => {
                    assert!(input < self.leaf_count, "leaf index out of range");
                    depths[input] = d;
                }
                TreeNode::Internal { left, right, .. } => {
                    stack.push((left, d + 1));
                    stack.push((right, d + 1));
                }
            }
        }
        depths
    }

    /// Canonical parenthesized form, for deduplication and debugging.
    /// Children are ordered, so this identifies the *shape with leaf
    /// assignment* up to sibling order.
    pub fn canonical_string(&self) -> String {
        fn rec(t: &DecompTree, idx: usize) -> String {
            match t.nodes[idx] {
                TreeNode::Leaf { input, .. } => format!("{input}"),
                TreeNode::Internal { left, right, .. } => {
                    let a = rec(t, left);
                    let b = rec(t, right);
                    if a <= b {
                        format!("({a},{b})")
                    } else {
                        format!("({b},{a})")
                    }
                }
            }
        }
        rec(self, self.root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::objective::GateKind;
    use activity::TransitionModel;

    fn obj() -> DecompObjective {
        DecompObjective::new(TransitionModel::DominoP, GateKind::And)
    }

    fn chain_abcd() -> DecompTree {
        // ((a·b)·c)·d with P = 0.3, 0.4, 0.7, 0.5 — configuration A of Fig. 1.
        let o = obj();
        let ab = DecompTree::merge(DecompTree::leaf(0, 0.3), DecompTree::leaf(1, 0.4), o);
        let abc = DecompTree::merge(ab, DecompTree::leaf(2, 0.7), o);
        DecompTree::merge(abc, DecompTree::leaf(3, 0.5), o)
    }

    #[test]
    fn figure1_configuration_a() {
        let t = chain_abcd();
        let o = obj();
        // internal: 0.12 + 0.084 + 0.042 = 0.246; leaves: 1.9; SR(A) = 2.146.
        assert!((t.internal_cost(o) - 0.246).abs() < 1e-12);
        assert!((t.total_cost(o) - 2.146).abs() < 1e-12);
        assert_eq!(t.height(), 3);
        assert_eq!(t.leaf_depths(), vec![3, 3, 2, 1]);
    }

    #[test]
    fn figure1_configuration_b() {
        // (a·b)·(c·d) — configuration B.
        let o = obj();
        let ab = DecompTree::merge(DecompTree::leaf(0, 0.3), DecompTree::leaf(1, 0.4), o);
        let cd = DecompTree::merge(DecompTree::leaf(2, 0.7), DecompTree::leaf(3, 0.5), o);
        let t = DecompTree::merge(ab, cd, o);
        assert!((t.total_cost(o) - 2.412).abs() < 1e-12);
        assert_eq!(t.height(), 2);
    }

    #[test]
    fn canonical_string_is_sibling_order_invariant() {
        let o = obj();
        let t1 = DecompTree::merge(DecompTree::leaf(0, 0.5), DecompTree::leaf(1, 0.5), o);
        let t2 = DecompTree::merge(DecompTree::leaf(1, 0.5), DecompTree::leaf(0, 0.5), o);
        assert_eq!(t1.canonical_string(), t2.canonical_string());
    }

    #[test]
    fn or_tree_probability() {
        let o = DecompObjective::new(TransitionModel::StaticCmos, GateKind::Or);
        let t = DecompTree::merge(DecompTree::leaf(0, 0.3), DecompTree::leaf(1, 0.4), o);
        assert!((t.p_root() - 0.58).abs() < 1e-12);
    }
}
