//! Network-level power-efficient technology decomposition (Section 2.3).
//!
//! Converts an optimized Boolean network into a network of 2-input AND/OR
//! gates and inverters (the pre-mapping "NAND decomposition" — the mapper's
//! subject graph builder performs the mechanical AND/OR→NAND2/INV
//! conversion). Each node's SOP is decomposed as an OR tree of AND trees;
//! tree shapes are chosen per [`DecompStyle`]:
//!
//! * `Conventional` — arrival-balanced trees (the SIS `tech_decomp`
//!   analogue: merge the two earliest-arriving signals first),
//! * `MinPower` — unrestricted MINPOWER trees (§2.1),
//! * `BoundedMinPower` — MINPOWER followed by the slack-driven
//!   re-decomposition loop of §2.3 under the unit-delay model.
//!
//! Unit-delay arrival levels are tracked through the whole build: every
//! tree leaf carries the absolute arrival level of its signal, so balanced
//! trees are balanced *in time* (not merely in shape) and height bounds are
//! bounds on the root arrival. The §2.3 loop computes exact slacks on the
//! decomposed network and re-decomposes the most negative-slack node with
//! its root's required time as the bound; this subsumes the paper's
//! `depth_surplus`-proportional slack distribution (which estimates the
//! same per-node budget without exact timing — see DESIGN.md §5), and the
//! surplus values are still reported in [`DecomposedNetwork::node_heights`].

use crate::decomp::bounded::{bounded_minpower_tree_with_heights, min_height};
use crate::decomp::huffman::minpower_tree;
use crate::decomp::modified::modified_huffman_correlated;
use crate::decomp::objective::{DecompObjective, GateKind};
use crate::decomp::tree::{DecompTree, TreeNode};
use activity::{analyze, ActivityMap, CorrelationMatrix, NetworkBdds, TransitionModel};
use netlist::traversal::{unit_arrival_times, unit_slacks};
use netlist::{Lit, Network, NodeId, Sop};
use std::collections::{HashMap, HashSet};

/// Tree-shape policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecompStyle {
    /// Arrival-balanced trees, power-oblivious (conventional `tech_decomp`).
    Conventional,
    /// Unrestricted MINPOWER decomposition.
    MinPower,
    /// MINPOWER with the §2.3 bounded-height timing recovery loop.
    BoundedMinPower,
}

/// Options for [`decompose_network`].
#[derive(Debug, Clone)]
pub struct DecompOptions {
    /// Tree-shape policy.
    pub style: DecompStyle,
    /// Transition model used for switching costs.
    pub model: TransitionModel,
    /// `P(input = 1)` per primary input; `None` means 0.5 everywhere.
    pub pi_probs: Option<Vec<f64>>,
    /// Required time (in unit-delay levels) at every primary output for the
    /// bounded style. `None` uses the depth of the conventional balanced
    /// decomposition — i.e. "no slower than the conventional result".
    pub required_time: Option<i64>,
    /// Use exact pairwise signal correlations (global-BDD joints) and the
    /// Modified Huffman algorithm of eqs. 7–9 when building the AND trees,
    /// instead of the independence assumption. Applies to the MinPower
    /// style (OR trees and bounded re-decomposition keep independence).
    pub use_correlations: bool,
}

impl DecompOptions {
    /// Options with the given style, static CMOS model, uniform input
    /// probabilities and default timing target.
    pub fn new(style: DecompStyle) -> DecompOptions {
        DecompOptions {
            style,
            model: TransitionModel::StaticCmos,
            pi_probs: None,
            required_time: None,
            use_correlations: false,
        }
    }
}

/// Result of network decomposition.
#[derive(Debug)]
pub struct DecomposedNetwork {
    /// The AND/OR/INV network (every logic node has ≤ 2 inputs).
    pub network: Network,
    /// Per-original-node `(name, root arrival level, balanced-height
    /// estimate)` — the difference of the last two is the paper's
    /// `depth_surplus`.
    pub node_heights: Vec<(String, usize, usize)>,
    /// Root-arrival bounds applied by the bounded pass (empty otherwise).
    pub applied_bounds: HashMap<String, usize>,
    /// Depth (unit-delay levels) of the decomposed network.
    pub depth: i64,
    /// Provenance: decomposed logic-node name → name of the original node
    /// whose decomposition emitted it. Tree gates (`d_*`, later possibly
    /// renamed) and aliasing buffers map to the node being decomposed;
    /// shared inverters (`inv_*`) map to the node that *drives* them.
    /// Primary inputs are their own provenance and are omitted.
    pub provenance: HashMap<String, String>,
}

/// Per-node tree policy used by the builder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NodePolicy {
    Balanced,
    MinPower,
    /// Bound on the *absolute arrival level* of the node's root.
    Bounded(usize),
}

/// Decompose `net` according to `opts`.
///
/// # Panics
/// Panics if the network is cyclic or `pi_probs` has the wrong length.
pub fn decompose_network(net: &Network, opts: &DecompOptions) -> DecomposedNetwork {
    let pi_probs = opts
        .pi_probs
        .clone()
        .unwrap_or_else(|| vec![0.5; net.inputs().len()]);
    let act = analyze(net, &pi_probs, opts.model);
    let mut corr = if opts.use_correlations {
        Some(NetworkBdds::build(net, &pi_probs))
    } else {
        None
    };

    match opts.style {
        DecompStyle::Conventional => build(net, &act, opts.model, corr.as_mut(), &|_| {
            NodePolicy::Balanced
        }),
        DecompStyle::MinPower => build(net, &act, opts.model, corr.as_mut(), &|_| {
            NodePolicy::MinPower
        }),
        DecompStyle::BoundedMinPower => bounded_decompose(net, &act, corr.as_mut(), opts),
    }
}

/// The §2.3 loop: unrestricted MINPOWER first; while the unit-delay
/// requirement is violated, re-decompose the most negative-slack original
/// node with its root's exact required time as the arrival bound.
fn bounded_decompose(
    net: &Network,
    act: &ActivityMap,
    mut corr: Option<&mut NetworkBdds>,
    opts: &DecompOptions,
) -> DecomposedNetwork {
    let balanced = build(net, act, opts.model, None, &|_| NodePolicy::Balanced);
    let required = opts.required_time.unwrap_or(balanced.depth);

    let mut bounds: HashMap<NodeId, usize> = HashMap::new();
    let mut redecomposed: HashSet<NodeId> = HashSet::new();
    let mut current = build(
        net,
        act,
        opts.model,
        corr.as_deref_mut(),
        &policy_fn(&bounds),
    );

    loop {
        if current.depth <= required {
            break;
        }
        obs::counter!("decomp.slack.iterations");
        let zeros = vec![0i64; current.network.inputs().len()];
        let reqs = vec![required; current.network.outputs().len()];
        let slack = unit_slacks(&current.network, &zeros, &reqs);
        let arrival = unit_arrival_times(&current.network, &zeros);

        // Most negative slack at an original node's root, among nodes not
        // yet re-decomposed; ties broken toward higher fanout (the paper:
        // "the node shared by a maximum number of paths is processed
        // first").
        let mut cand: Option<(i64, i64, NodeId)> = None;
        for id in net.logic_ids() {
            if redecomposed.contains(&id) {
                continue;
            }
            let Some(root) = current.network.find(net.node(id).name()) else {
                continue; // e.g. constant nodes
            };
            let s = slack[root.index()];
            if s >= 0 || s == i64::MAX {
                continue;
            }
            let key = (s, -(net.node(id).fanouts().len() as i64));
            if cand.is_none() || (key.0, key.1) < (cand.expect("some").0, cand.expect("some").1) {
                cand = Some((key.0, key.1, id));
            }
        }
        let Some((_, _, n)) = cand else { break };
        obs::counter!("decomp.redecomp.rounds");
        redecomposed.insert(n);
        let root = current
            .network
            .find(net.node(n).name())
            .expect("candidate had a root");
        // Exact required arrival level at this node's root.
        let bound = (arrival[root.index()] + slack[root.index()]).max(0) as usize;
        bounds.insert(n, bound);
        current = build(
            net,
            act,
            opts.model,
            corr.as_deref_mut(),
            &policy_fn(&bounds),
        );
    }

    current.applied_bounds = bounds
        .iter()
        .map(|(id, b)| (net.node(*id).name().to_string(), *b))
        .collect();
    current
}

fn policy_fn(bounds: &HashMap<NodeId, usize>) -> impl Fn(NodeId) -> NodePolicy + '_ {
    move |id| match bounds.get(&id) {
        Some(&b) => NodePolicy::Bounded(b),
        None => NodePolicy::MinPower,
    }
}

const AND2: &[&str] = &["11"];
const OR2: &[&str] = &["1-", "-1"];
const INV: &[&str] = &["0"];

/// Build the decomposed network with a per-original-node policy. With
/// `corr`, AND trees of MinPower-policy nodes use the correlation-aware
/// Modified Huffman construction (eqs. 7–9) seeded with exact joint
/// probabilities from the original network's global BDDs.
fn build(
    net: &Network,
    act: &ActivityMap,
    model: TransitionModel,
    mut corr: Option<&mut NetworkBdds>,
    policy: &dyn Fn(NodeId) -> NodePolicy,
) -> DecomposedNetwork {
    let mut out = Network::new(format!("{}_decomp", net.name()));
    // original node -> node in `out` carrying its function
    let mut root: HashMap<NodeId, NodeId> = HashMap::new();
    // inverter cache in `out`
    let mut inv_cache: HashMap<NodeId, NodeId> = HashMap::new();
    // absolute unit-delay arrival level of every `out` node
    let mut level: HashMap<NodeId, usize> = HashMap::new();
    let mut node_heights = Vec::new();
    // `out` node -> original node it descends from (provenance)
    let mut prov: HashMap<NodeId, NodeId> = HashMap::new();
    // fresh tree gates of the original node currently being decomposed
    let mut created: Vec<NodeId> = Vec::new();

    for &pi in net.inputs() {
        let id = out
            .add_input(net.node(pi).name().to_string())
            .expect("unique input name");
        root.insert(pi, id);
        level.insert(id, 0);
    }

    let and_obj = DecompObjective::new(model, GateKind::And);
    let or_obj = DecompObjective::new(model, GateKind::Or);

    for id in net.topo_order().expect("acyclic") {
        let node = net.node(id);
        let Some(sop) = node.sop() else { continue };
        let pol = policy(id);
        let fanins = node.fanins();

        // Constants.
        if sop.is_zero() || sop.has_tautology_cube() {
            let w = if sop.is_zero() {
                Sop::zero(0)
            } else {
                Sop::one(0)
            };
            let nid = out
                .add_logic(node.name().to_string(), vec![], w)
                .expect("unique node name");
            root.insert(id, nid);
            level.insert(nid, 0);
            prov.insert(nid, id);
            node_heights.push((node.name().to_string(), 0, 0));
            continue;
        }

        // Split the arrival budget between the cube AND trees and the OR
        // tree above them (bounded style only).
        let (and_pol, or_pol) = match pol {
            NodePolicy::Bounded(l) => {
                let m = sop.cube_count();
                let or_levels = if m <= 1 {
                    0
                } else {
                    (m as f64).log2().ceil() as usize
                };
                (
                    NodePolicy::Bounded(l.saturating_sub(or_levels)),
                    NodePolicy::Bounded(l),
                )
            }
            p => (p, p),
        };

        // Literal leaves per cube: (out node, p_one, arrival level), plus
        // the original source signal for correlation lookups.
        let mut cube_roots: Vec<(NodeId, f64, usize)> = Vec::new();
        for cube in sop.cubes() {
            let mut leaves: Vec<(NodeId, f64, usize)> = Vec::new();
            let mut sources: Vec<(NodeId, bool)> = Vec::new();
            for (pos, lit) in cube.bound_lits() {
                let src_orig = fanins[pos];
                let src = root[&src_orig];
                let p_src = act.p_one(src_orig);
                match lit {
                    Lit::Pos => {
                        leaves.push((src, p_src, level[&src]));
                        sources.push((src_orig, true));
                    }
                    Lit::Neg => {
                        let inv = *inv_cache.entry(src).or_insert_with(|| {
                            let name = out.fresh_name("inv_");
                            let inv = out
                                .add_logic(name, vec![src], Sop::parse(1, INV).expect("inv sop"))
                                .expect("fresh name");
                            level.insert(inv, level[&src] + 1);
                            // Shared across consumers: attributed to the
                            // driver, not the node being decomposed.
                            prov.insert(inv, src_orig);
                            inv
                        });
                        leaves.push((inv, 1.0 - p_src, level[&inv]));
                        sources.push((src_orig, false));
                    }
                    Lit::Free => unreachable!(),
                }
            }
            let correlated = match (&mut corr, and_pol) {
                (Some(bdds), NodePolicy::MinPower) if leaves.len() >= 3 => {
                    Some(correlated_and_tree(bdds, &sources, and_obj))
                }
                _ => None,
            };
            let (cube_node, p_cube, l_cube) = match correlated {
                Some(tree) => {
                    let p = tree.p_root();
                    let (root_node, lv) =
                        instantiate(&mut out, &mut level, &tree, &leaves, AND2, &mut created);
                    (root_node, p, lv)
                }
                None => emit_tree(
                    &mut out,
                    &mut level,
                    &leaves,
                    and_obj,
                    and_pol,
                    AND2,
                    &mut created,
                ),
            };
            cube_roots.push((cube_node, p_cube, l_cube));
        }

        // OR tree over cube roots.
        let (node_root, _p, _l_root) = emit_tree(
            &mut out,
            &mut level,
            &cube_roots,
            or_obj,
            or_pol,
            OR2,
            &mut created,
        );

        // Rename / alias the root to the original node's name.
        let final_id = alias_with_name(&mut out, &mut level, node_root, node.name());
        root.insert(id, final_id);
        for c in created.drain(..) {
            prov.insert(c, id);
        }
        prov.insert(final_id, id);

        // Balanced-height reference of this node in isolation (for the
        // depth_surplus report).
        let hb = balanced_height_estimate(sop);
        node_heights.push((node.name().to_string(), level[&final_id], hb));
    }

    for (name, o) in net.outputs() {
        out.add_output(name.clone(), root[o]);
    }
    out.check()
        .expect("decomposed network must be structurally sound");
    obs::counter!("decomp.nodes.emitted", out.logic_ids().count() as u64);
    let depth = netlist::traversal::depth(&out);
    // Renames are done: freeze the provenance map under final names.
    let provenance = prov
        .iter()
        .map(|(nid, orig)| {
            (
                out.node(*nid).name().to_string(),
                net.node(*orig).name().to_string(),
            )
        })
        .collect();
    DecomposedNetwork {
        network: out,
        node_heights,
        applied_bounds: HashMap::new(),
        depth,
        provenance,
    }
}

/// Emit a tree over `leaves` (node, probability, arrival level) into the
/// network; returns `(root node, root probability, root arrival level)`.
fn emit_tree(
    out: &mut Network,
    level: &mut HashMap<NodeId, usize>,
    leaves: &[(NodeId, f64, usize)],
    obj: DecompObjective,
    pol: NodePolicy,
    gate_sop: &[&str],
    created: &mut Vec<NodeId>,
) -> (NodeId, f64, usize) {
    assert!(!leaves.is_empty(), "tree needs leaves");
    if leaves.len() == 1 {
        return leaves[0];
    }
    let probs: Vec<f64> = leaves.iter().map(|&(_, p, _)| p).collect();
    let heights: Vec<usize> = leaves.iter().map(|&(_, _, h)| h).collect();
    let tree = match pol {
        NodePolicy::Balanced => balanced_tree(&probs, &heights, obj),
        NodePolicy::MinPower => minpower_tree(&probs, obj),
        NodePolicy::Bounded(bound) => {
            let feasible = min_height(&heights).max(bound);
            bounded_minpower_tree_with_heights(&probs, &heights, obj, feasible)
                .expect("bound made feasible by construction")
        }
    };
    let (root, root_level) = instantiate(out, level, &tree, leaves, gate_sop, created);
    (root, tree.p_root(), root_level)
}

/// Materialize a [`DecompTree`] as 2-input gates; returns `(root, level)`.
fn instantiate(
    out: &mut Network,
    level: &mut HashMap<NodeId, usize>,
    tree: &DecompTree,
    leaves: &[(NodeId, f64, usize)],
    gate_sop: &[&str],
    created: &mut Vec<NodeId>,
) -> (NodeId, usize) {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        out: &mut Network,
        level: &mut HashMap<NodeId, usize>,
        tree: &DecompTree,
        idx: usize,
        leaves: &[(NodeId, f64, usize)],
        gate_sop: &[&str],
        created: &mut Vec<NodeId>,
    ) -> (NodeId, usize) {
        match tree.nodes()[idx] {
            TreeNode::Leaf { input, .. } => (leaves[input].0, leaves[input].2),
            TreeNode::Internal { left, right, .. } => {
                let (l, ll) = rec(out, level, tree, left, leaves, gate_sop, created);
                let (r, lr) = rec(out, level, tree, right, leaves, gate_sop, created);
                let name = out.fresh_name("d_");
                let sop = Sop::parse(2, gate_sop).expect("gate sop");
                let id = out.add_logic(name, vec![l, r], sop).expect("fresh name");
                let lv = ll.max(lr) + 1;
                level.insert(id, lv);
                created.push(id);
                (id, lv)
            }
        }
    }
    rec(out, level, tree, tree.root(), leaves, gate_sop, created)
}

/// Give `node` the name `name` in `out`. Fresh tree roots (`d_*` names)
/// are renamed in place; shared nodes (inputs, cached inverters, leaf
/// passthroughs) get an aliasing buffer instead, since they may serve
/// several original nodes.
fn alias_with_name(
    out: &mut Network,
    level: &mut HashMap<NodeId, usize>,
    node: NodeId,
    name: &str,
) -> NodeId {
    if out.node(node).name() == name {
        return node;
    }
    if out.node(node).name().starts_with("d_") {
        out.rename_node(node, name)
            .expect("original names are unique");
        return node;
    }
    let sop = Sop::parse(1, &["1"]).expect("buffer sop");
    let buf = out
        .add_logic(name.to_string(), vec![node], sop)
        .expect("original names are unique");
    level.insert(buf, level[&node] + 1);
    buf
}

/// Build a correlation-aware AND tree over literal signals using the
/// Modified Huffman algorithm with exact pairwise joints (eqs. 7–9). Each
/// source is `(original node, phase)`; phase `false` means the literal is
/// the complement of the node signal.
fn correlated_and_tree(
    bdds: &mut NetworkBdds,
    sources: &[(NodeId, bool)],
    obj: DecompObjective,
) -> DecompTree {
    let n = sources.len();
    let p: Vec<f64> = sources
        .iter()
        .map(|&(s, phase)| {
            let ps = bdds.p_one(s);
            if phase {
                ps
            } else {
                1.0 - ps
            }
        })
        .collect();
    let mut joint = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                joint[i][j] = p[i];
                continue;
            }
            let (si, phi) = sources[i];
            let (sj, phj) = sources[j];
            let pi_pos = bdds.p_one(si);
            let pj_pos = bdds.p_one(sj);
            let j_pos = bdds.joint(si, sj); // P(si=1 ∧ sj=1)
                                            // Transform through the literal phases.
            let v = match (phi, phj) {
                (true, true) => j_pos,
                (true, false) => pi_pos - j_pos,
                (false, true) => pj_pos - j_pos,
                (false, false) => 1.0 - pi_pos - pj_pos + j_pos,
            };
            joint[i][j] = v.clamp(0.0, p[i].min(p[j]));
        }
    }
    let matrix = CorrelationMatrix::new(p, joint);
    modified_huffman_correlated(&matrix, obj)
}

/// Balanced reference height `H_n` of a node's decomposition in isolation
/// (AND trees of each cube + OR tree), counting inverters as one level.
fn balanced_height_estimate(sop: &Sop) -> usize {
    let mut max_cube = 0usize;
    for cube in sop.cubes() {
        let hs: Vec<usize> = cube
            .bound_lits()
            .map(|(_, l)| if l == Lit::Neg { 1 } else { 0 })
            .collect();
        if !hs.is_empty() {
            max_cube = max_cube.max(min_height(&hs));
        }
    }
    let m = sop.cube_count();
    if m <= 1 {
        max_cube
    } else {
        let cube_heights = vec![max_cube; m];
        min_height(&cube_heights)
    }
}

/// Arrival-balanced (power-oblivious) tree: repeatedly merge the two
/// earliest-arriving items — minimizes the root arrival (`F(x,y) =
/// max(x,y)+1` is quasi-linear, §2.1).
fn balanced_tree(probs: &[f64], heights: &[usize], obj: DecompObjective) -> DecompTree {
    let mut items: Vec<(DecompTree, usize)> = probs
        .iter()
        .zip(heights)
        .enumerate()
        .map(|(i, (&p, &h))| (DecompTree::leaf(i, p), h))
        .collect();
    while items.len() > 1 {
        let mut i0 = 0;
        for i in 1..items.len() {
            if items[i].1 < items[i0].1 {
                i0 = i;
            }
        }
        let (a, ha) = items.remove(i0);
        let mut i1 = 0;
        for i in 1..items.len() {
            if items[i].1 < items[i1].1 {
                i1 = i;
            }
        }
        let (b, hb) = items.remove(i1);
        items.push((DecompTree::merge(a, b, obj), ha.max(hb) + 1));
    }
    items.pop().expect("one tree").0
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    fn equivalent(a: &Network, b: &Network) -> bool {
        let n = a.inputs().len();
        for bits in 0..(1u64 << n) {
            let v: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            if a.eval_outputs(&v) != b.eval_outputs(&v) {
                return false;
            }
        }
        true
    }

    fn sample() -> Network {
        parse_blif(
            ".model s\n.inputs a b c d e\n.outputs f g\n\
             .names a b c d x\n1111 1\n\
             .names x e f\n10 1\n01 1\n\
             .names a b c d e g\n11--- 1\n--111 1\n.end\n",
        )
        .unwrap()
        .network
    }

    #[test]
    fn all_styles_preserve_function() {
        let net = sample();
        for style in [
            DecompStyle::Conventional,
            DecompStyle::MinPower,
            DecompStyle::BoundedMinPower,
        ] {
            let d = decompose_network(&net, &DecompOptions::new(style));
            d.network.check().unwrap();
            assert!(
                equivalent(&net, &d.network),
                "style {style:?} broke function"
            );
        }
    }

    #[test]
    fn all_nodes_have_at_most_two_inputs() {
        let net = sample();
        let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
        for id in d.network.logic_ids() {
            assert!(d.network.node(id).fanins().len() <= 2);
        }
    }

    #[test]
    fn minpower_beats_or_ties_conventional_on_switching() {
        let net = sample();
        let probs = vec![0.2, 0.8, 0.3, 0.9, 0.5];
        let mk = |style| DecompOptions {
            style,
            model: TransitionModel::StaticCmos,
            pi_probs: Some(probs.clone()),
            required_time: None,
            use_correlations: false,
        };
        let conv = decompose_network(&net, &mk(DecompStyle::Conventional));
        let mp = decompose_network(&net, &mk(DecompStyle::MinPower));
        let total = |d: &DecomposedNetwork| {
            let a = analyze(&d.network, &probs, TransitionModel::StaticCmos);
            a.total_switching(d.network.logic_ids())
        };
        let (tc, tm) = (total(&conv), total(&mp));
        assert!(
            tm <= tc + 1e-9,
            "minpower total switching {tm} must not exceed conventional {tc}"
        );
    }

    #[test]
    fn bounded_meets_balanced_depth() {
        let net = sample();
        let conv = decompose_network(&net, &DecompOptions::new(DecompStyle::Conventional));
        let bounded = decompose_network(&net, &DecompOptions::new(DecompStyle::BoundedMinPower));
        assert!(
            bounded.depth <= conv.depth,
            "bounded depth {} must meet conventional depth {}",
            bounded.depth,
            conv.depth
        );
    }

    #[test]
    fn bounded_recovers_skewed_timing_on_wide_nodes() {
        // A wide AND node whose minpower tree is a chain: the bounded pass
        // must pull the depth back to the conventional level.
        let mut blif = String::from(".model w\n.inputs ");
        for i in 0..8 {
            blif.push_str(&format!("x{i} "));
        }
        blif.push_str("\n.outputs o\n.names ");
        for i in 0..8 {
            blif.push_str(&format!("x{i} "));
        }
        blif.push_str("o\n11111111 1\n.end\n");
        let net = parse_blif(&blif).unwrap().network;
        // Non-uniform probabilities force a skewed minpower chain.
        let probs: Vec<f64> = (0..8).map(|i| 0.1 + 0.1 * i as f64).collect();
        let mk = |style| DecompOptions {
            style,
            model: TransitionModel::StaticCmos,
            pi_probs: Some(probs.clone()),
            required_time: None,
            use_correlations: false,
        };
        let conv = decompose_network(&net, &mk(DecompStyle::Conventional));
        let mp = decompose_network(&net, &mk(DecompStyle::MinPower));
        let bh = decompose_network(&net, &mk(DecompStyle::BoundedMinPower));
        assert!(mp.depth > conv.depth, "test premise: minpower is deeper");
        assert!(bh.depth <= conv.depth, "bounded must recover timing");
        assert!(equivalent(&net, &bh.network));
    }

    #[test]
    fn explicit_required_time_is_respected_when_feasible() {
        let net = sample();
        let conv = decompose_network(&net, &DecompOptions::new(DecompStyle::Conventional));
        let opts = DecompOptions {
            style: DecompStyle::BoundedMinPower,
            model: TransitionModel::StaticCmos,
            pi_probs: None,
            required_time: Some(conv.depth),
            use_correlations: false,
        };
        let d = decompose_network(&net, &opts);
        assert!(d.depth <= conv.depth);
        d.network.check().unwrap();
    }

    #[test]
    fn constants_survive_decomposition() {
        let net = parse_blif(
            ".model c\n.inputs a\n.outputs f one\n.names one\n1\n\
             .names a one f\n11 1\n.end\n",
        )
        .unwrap()
        .network;
        let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
        d.network.check().unwrap();
        assert_eq!(d.network.eval_outputs(&[true]), vec![true, true]);
        assert_eq!(d.network.eval_outputs(&[false]), vec![false, true]);
    }

    #[test]
    fn wide_single_cube_becomes_and_tree() {
        let net = parse_blif(
            ".model w\n.inputs a b c d e f g h\n.outputs o\n\
             .names a b c d e f g h o\n11111111 1\n.end\n",
        )
        .unwrap()
        .network;
        let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
        assert!(equivalent(&net, &d.network));
        // 8-input AND => 7 AND2 gates.
        let and2 = d
            .network
            .logic_ids()
            .filter(|&id| d.network.node(id).fanins().len() == 2)
            .count();
        assert_eq!(and2, 7);
    }

    #[test]
    fn correlated_decomposition_pairs_anticorrelated_signals() {
        // x = a·b and y = a·!b are mutually exclusive: P(x ∧ y) = 0. A
        // correlation-aware AND tree must merge them first, making the
        // subtree output constant-0-probability; the independence-based
        // tree cannot see this.
        let net = parse_blif(
            ".model c\n.inputs a b c d\n.outputs f\n\
             .names a b x\n11 1\n.names a b y\n10 1\n\
             .names x y c d f\n1111 1\n.end\n",
        )
        .unwrap()
        .network;
        let probs = vec![0.5; 4];
        let base = DecompOptions {
            style: DecompStyle::MinPower,
            model: TransitionModel::StaticCmos,
            pi_probs: Some(probs.clone()),
            required_time: None,
            use_correlations: false,
        };
        let indep = decompose_network(&net, &base);
        let corr = decompose_network(
            &net,
            &DecompOptions {
                use_correlations: true,
                ..base.clone()
            },
        );
        assert!(equivalent(&net, &indep.network));
        assert!(equivalent(&net, &corr.network));
        // Exact switching of the correlated result must not exceed the
        // independent result (it can exploit the mutual exclusion).
        let total = |d: &DecomposedNetwork| {
            let a = analyze(&d.network, &probs, TransitionModel::StaticCmos);
            a.total_switching(d.network.logic_ids())
        };
        assert!(
            total(&corr) <= total(&indep) + 1e-9,
            "correlated {} vs independent {}",
            total(&corr),
            total(&indep)
        );
    }

    #[test]
    fn conventional_is_arrival_balanced() {
        // Wide AND fed by another AND: the late signal must be merged last.
        let net = parse_blif(
            ".model t\n.inputs a b c d\n.outputs o\n.names a b x\n11 1\n\
             .names x c d o\n111 1\n.end\n",
        )
        .unwrap()
        .network;
        let d = decompose_network(&net, &DecompOptions::new(DecompStyle::Conventional));
        // depth must be 3: c·d at level 1, (c·d)·x at level 2... x itself is
        // level 1, so ((c·d)·x) = level 2 and o is that root => total 2? The
        // x tree root is the `x`-named node at level 1; merging (c,d) first
        // gives level 2, then with x gives level 3.
        assert!(d.depth <= 3, "arrival-balanced depth {} too deep", d.depth);
    }
}
