//! The Larmore–Hirschberg package-merge algorithm (Algorithm 2.3).
//!
//! Solves the length-limited Huffman problem exactly for *linear* weights:
//! given `n` weights and a height bound `L`, find leaf levels `l_i ≤ L`
//! satisfying Kraft equality and minimizing `Σ w_i·l_i`. This is the
//! BOUNDED-HEIGHT MINSUM primitive of Section 2.2; the paper's generalized
//! (heuristic) variant for non-linear merge functions is realized by
//! [`crate::decomp::bounded::bounded_minpower_tree`].

/// An item of the Coin Collector's instance: width `2^(-level)` and the
/// accumulated weight of the leaves packaged inside it.
#[derive(Debug, Clone)]
struct Item {
    weight: f64,
    /// Leaf indices packaged in this item (each occurrence deepens the leaf).
    leaves: Vec<usize>,
}

/// Compute optimal leaf levels for the length-limited Huffman problem.
///
/// Returns `None` when the bound is infeasible (`2^L < n`); otherwise
/// `levels[i]` is the depth of leaf `i` in an optimal tree: the levels
/// satisfy the Kraft equality `Σ 2^(−l_i) = 1` and minimize `Σ w_i·l_i`.
///
/// # Panics
/// Panics if `weights` is empty or `max_level == 0` with more than one leaf.
pub fn package_merge_levels(weights: &[f64], max_level: usize) -> Option<Vec<usize>> {
    let n = weights.len();
    assert!(n > 0, "need at least one leaf");
    if n == 1 {
        return Some(vec![0]);
    }
    if max_level >= 64 || (1usize << max_level.min(63)) < n {
        if max_level >= 64 {
            // effectively unbounded; cap at n-1 which any Huffman tree meets
            return package_merge_levels(weights, n - 1);
        }
        return None;
    }

    // Package-merge: build lists level by level from the deepest (width
    // 2^-L) to width 2^-1, packaging pairs and merging with the fresh leaf
    // items of the next width. Selecting the first 2n−2 items of the final
    // width-2^-1 list yields the optimal nodeset; each time leaf i appears
    // in the selection, its level increases by one.
    let mut levels = vec![0usize; n];
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[a].partial_cmp(&weights[b]).expect("finite weights"));
    let fresh_items = || -> Vec<Item> {
        order
            .iter()
            .map(|&i| Item {
                weight: weights[i],
                leaves: vec![i],
            })
            .collect()
    };

    let mut list: Vec<Item> = fresh_items(); // width 2^-L
    for _ in 1..max_level {
        // PACKAGE: combine consecutive pairs.
        let mut packaged: Vec<Item> = Vec::with_capacity(list.len() / 2);
        let mut it = list.into_iter();
        while let (Some(a), Some(b)) = (it.next(), it.next()) {
            let mut leaves = a.leaves;
            leaves.extend(b.leaves);
            obs::counter!("decomp.package_merge.packages");
            packaged.push(Item {
                weight: a.weight + b.weight,
                leaves,
            });
        }
        // MERGE with fresh leaf items of the shallower width.
        let mut merged = fresh_items();
        merged.extend(packaged);
        merged.sort_by(|a, b| a.weight.partial_cmp(&b.weight).expect("finite weights"));
        list = merged;
    }

    // Take the 2n−2 smallest items of the width-2^-1 list.
    if list.len() < 2 * n - 2 {
        return None;
    }
    for item in list.iter().take(2 * n - 2) {
        for &leaf in &item.leaves {
            levels[leaf] += 1;
        }
    }
    debug_assert!({
        let kraft: f64 = levels.iter().map(|&l| 0.5f64.powi(l as i32)).sum();
        (kraft - 1.0).abs() < 1e-9
    });
    Some(levels)
}

/// `Σ w_i·l_i` for a level assignment.
pub fn weighted_path_length(weights: &[f64], levels: &[usize]) -> f64 {
    weights
        .iter()
        .zip(levels)
        .map(|(&w, &l)| w * l as f64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force optimal bounded-height MINSUM by enumerating all merge
    /// histories with a height cap.
    fn brute(weights: &[f64], bound: usize) -> Option<f64> {
        #[derive(Clone)]
        struct T {
            w: f64,
            h: usize,
            sum: f64, // Σ w_i l_i accumulated as merges happen
        }
        fn rec(items: Vec<T>, bound: usize, best: &mut Option<f64>) {
            if items.len() == 1 {
                if items[0].h <= bound {
                    let s = items[0].sum;
                    if best.is_none() || s < best.expect("some") {
                        *best = Some(s);
                    }
                }
                return;
            }
            for i in 0..items.len() {
                for j in i + 1..items.len() {
                    let mut next: Vec<T> = items
                        .iter()
                        .enumerate()
                        .filter(|&(k, _)| k != i && k != j)
                        .map(|(_, t)| t.clone())
                        .collect();
                    let merged = T {
                        w: items[i].w + items[j].w,
                        h: items[i].h.max(items[j].h) + 1,
                        // every leaf inside gains one level => add merged weight
                        sum: items[i].sum + items[j].sum + items[i].w + items[j].w,
                    };
                    if merged.h <= bound {
                        next.push(merged);
                        rec(next, bound, best);
                    }
                }
            }
        }
        let items: Vec<T> = weights.iter().map(|&w| T { w, h: 0, sum: 0.0 }).collect();
        let mut best = None;
        rec(items, bound, &mut best);
        best
    }

    #[test]
    fn unbounded_matches_huffman() {
        // L = n-1 never constrains; result must equal classic Huffman cost.
        let w = [0.1, 0.2, 0.3, 0.4];
        let levels = package_merge_levels(&w, 3).expect("feasible");
        let cost = weighted_path_length(&w, &levels);
        // Huffman: merge .1+.2=.3, then .3+.3=.6, then .6+.4=1.0 →
        // levels (3,3,2,1)? cost = .1*3+.2*3+.3*2+.4*1 = 1.9
        assert!((cost - 1.9).abs() < 1e-12);
    }

    #[test]
    fn tight_bound_forces_balanced() {
        let w = [0.05, 0.05, 0.4, 0.5];
        let levels = package_merge_levels(&w, 2).expect("feasible");
        assert_eq!(levels, vec![2, 2, 2, 2]);
    }

    #[test]
    fn infeasible_bound() {
        assert!(package_merge_levels(&[1.0; 5], 2).is_none());
    }

    #[test]
    fn matches_bruteforce_randomized() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        for _ in 0..60 {
            let n = rng.gen_range(2..=6);
            let w: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..1.0)).collect();
            let min_l = (n as f64).log2().ceil() as usize;
            let bound = rng.gen_range(min_l..=n);
            let levels = package_merge_levels(&w, bound).expect("feasible bound");
            assert!(levels.iter().all(|&l| l <= bound));
            let cost = weighted_path_length(&w, &levels);
            let opt = brute(&w, bound).expect("feasible");
            assert!(
                (cost - opt).abs() < 1e-9,
                "package-merge {cost} vs brute {opt} for w={w:?} L={bound}"
            );
        }
    }

    #[test]
    fn kraft_equality_holds() {
        let w = [0.3, 0.1, 0.2, 0.15, 0.25];
        for bound in 3..=4 {
            let levels = package_merge_levels(&w, bound).expect("feasible");
            let kraft: f64 = levels.iter().map(|&l| 0.5f64.powi(l as i32)).sum();
            assert!((kraft - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn single_leaf() {
        assert_eq!(package_merge_levels(&[0.7], 0).expect("trivial"), vec![0]);
    }
}
