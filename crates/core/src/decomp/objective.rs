//! Merge objectives: how probabilities combine and what an internal node
//! costs, per design style (eqs. 5, 6, 10, 11 of the paper).

use activity::TransitionModel;

/// The gate type a tree is decomposed into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// 2-input AND tree.
    And,
    /// 2-input OR tree.
    Or,
}

/// A decomposition objective: transition model + gate kind.
///
/// Weights are signal 1-probabilities. [`DecompObjective::merge_p`] gives
/// the 1-probability of a merged internal node and
/// [`DecompObjective::cost`] its switching activity:
///
/// * domino p-type: `E = p` (eq. 5 context),
/// * domino n-type: `E = 1 − p` (eq. 6 context),
/// * static CMOS: `E = 2·p·(1−p)` (eqs. 10–11 under temporal
///   independence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DecompObjective {
    /// Transition model.
    pub model: TransitionModel,
    /// Gate kind of the tree.
    pub gate: GateKind,
}

impl DecompObjective {
    /// Construct an objective.
    pub fn new(model: TransitionModel, gate: GateKind) -> DecompObjective {
        DecompObjective { model, gate }
    }

    /// 1-probability of the output of a 2-input gate over independent
    /// inputs with 1-probabilities `pa`, `pb`.
    pub fn merge_p(&self, pa: f64, pb: f64) -> f64 {
        match self.gate {
            GateKind::And => pa * pb,
            GateKind::Or => pa + pb - pa * pb,
        }
    }

    /// Switching activity of a node with 1-probability `p`.
    pub fn cost(&self, p: f64) -> f64 {
        self.model.switching(p)
    }

    /// Switching activity of the merged node — the pairwise `F` value
    /// minimized by the (Modified) Huffman algorithms.
    pub fn pair_cost(&self, pa: f64, pb: f64) -> f64 {
        self.cost(self.merge_p(pa, pb))
    }

    /// True when the merge function is quasi-linear *and* the node cost is
    /// monotone in the Huffman key, so plain Huffman is optimal
    /// (Theorem 2.2: the domino cases).
    pub fn quasi_linear(&self) -> bool {
        matches!(
            self.model,
            TransitionModel::DominoP | TransitionModel::DominoN
        )
    }

    /// The sort key under which Huffman's "merge the two smallest" rule is
    /// optimal for quasi-linear objectives.
    ///
    /// * p-type: cost is `p`; merging small `p` first keeps internal
    ///   probabilities small (φ(x) = −log x for AND).
    /// * n-type: cost is `1 − p`; the symmetric argument applies to the
    ///   0-probabilities.
    pub fn huffman_key(&self, p: f64) -> f64 {
        match self.model {
            TransitionModel::DominoP => match self.gate {
                GateKind::And => p,
                GateKind::Or => p,
            },
            TransitionModel::DominoN => 1.0 - p,
            // Static is not quasi-linear; the key is only used as a
            // heuristic tie-break if Huffman is forced on it.
            TransitionModel::StaticCmos => self.model.switching(p),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_probabilities() {
        let and = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        assert!((and.merge_p(0.3, 0.4) - 0.12).abs() < 1e-12);
        let or = DecompObjective::new(TransitionModel::DominoP, GateKind::Or);
        assert!((or.merge_p(0.3, 0.4) - 0.58).abs() < 1e-12);
    }

    #[test]
    fn costs_by_model() {
        let p = 0.25;
        assert!(
            (DecompObjective::new(TransitionModel::DominoP, GateKind::And).cost(p) - 0.25).abs()
                < 1e-12
        );
        assert!(
            (DecompObjective::new(TransitionModel::DominoN, GateKind::And).cost(p) - 0.75).abs()
                < 1e-12
        );
        assert!(
            (DecompObjective::new(TransitionModel::StaticCmos, GateKind::And).cost(p)
                - 2.0 * 0.25 * 0.75)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn quasi_linearity_classification() {
        assert!(DecompObjective::new(TransitionModel::DominoP, GateKind::And).quasi_linear());
        assert!(DecompObjective::new(TransitionModel::DominoN, GateKind::Or).quasi_linear());
        assert!(!DecompObjective::new(TransitionModel::StaticCmos, GateKind::And).quasi_linear());
    }
}
