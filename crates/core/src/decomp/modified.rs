//! The Modified Huffman greedy (Algorithm 2.2) for general merge functions.

use crate::decomp::objective::{DecompObjective, GateKind};
use crate::decomp::tree::DecompTree;
use activity::CorrelationMatrix;

/// Algorithm 2.2: among all current items, merge the pair with the minimum
/// merged-node switching activity `F_ij`; repeat. `O(n² log n)` with a
/// candidate list; this implementation recomputes candidates in `O(n²)` per
/// step, which is equivalent for the widths arising in node decomposition.
///
/// # Panics
/// Panics if `probs` is empty.
pub fn modified_huffman_tree(probs: &[f64], obj: DecompObjective) -> DecompTree {
    assert!(!probs.is_empty(), "need at least one leaf");
    let mut items: Vec<DecompTree> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| DecompTree::leaf(i, p))
        .collect();
    while items.len() > 1 {
        let (mut bi, mut bj, mut bf) = (0usize, 1usize, f64::INFINITY);
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                let f = obj.pair_cost(items[i].p_root(), items[j].p_root());
                if f < bf {
                    (bi, bj, bf) = (i, j, f);
                }
            }
        }
        // Remove the higher index first so the lower stays valid.
        let b = items.swap_remove(bj);
        let a = items.swap_remove(bi);
        items.push(DecompTree::merge(a, b, obj));
    }
    items.pop().expect("one tree remains")
}

/// Modified Huffman for **correlated** inputs (eqs. 7–9): pair costs use the
/// joint probabilities tracked by a [`CorrelationMatrix`], and after each
/// merge the matrix is updated with the eq. 9 heuristic.
///
/// Only AND trees are supported directly (the paper's case); decompose OR
/// trees by complementing the signals first (De Morgan).
///
/// # Panics
/// Panics if the matrix is empty or `obj.gate` is not [`GateKind::And`].
pub fn modified_huffman_correlated(matrix: &CorrelationMatrix, obj: DecompObjective) -> DecompTree {
    assert!(!matrix.is_empty(), "need at least one leaf");
    assert_eq!(
        obj.gate,
        GateKind::And,
        "correlated decomposition is defined on AND trees"
    );
    let mut m = matrix.clone();
    // items[k] = tree whose root corresponds to matrix signal k.
    let mut items: Vec<DecompTree> = (0..m.len())
        .map(|i| DecompTree::leaf(i, m.p_one(i)))
        .collect();
    while items.len() > 1 {
        let (mut bi, mut bj, mut bf) = (0usize, 1usize, f64::INFINITY);
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                // eq. (7): W_o = w_i · w_{j|i} = joint probability.
                let p = m.and_probability(i, j);
                let f = obj.cost(p);
                if f < bf {
                    (bi, bj, bf) = (i, j, f);
                }
            }
        }
        let p_merged = m.and_probability(bi, bj);
        let mapping = m.merge_and(bi, bj);
        // Reorder items to match the matrix's new indexing.
        let old_items = std::mem::take(&mut items);
        let mut new_items: Vec<Option<DecompTree>> = vec![None; m.len()];
        let mut merged_pair: Vec<DecompTree> = Vec::with_capacity(2);
        for (old_idx, item) in old_items.into_iter().enumerate() {
            match mapping[old_idx] {
                Some(new_idx) => new_items[new_idx] = Some(item),
                None => merged_pair.push(item),
            }
        }
        let b = merged_pair.pop().expect("two merged items");
        let a = merged_pair.pop().expect("two merged items");
        let mut t = DecompTree::merge(a, b, obj);
        // Override the root probability with the correlation-aware value.
        t = t.with_root_p(p_merged);
        let last = new_items.len() - 1;
        new_items[last] = Some(t);
        items = new_items.into_iter().map(|o| o.expect("filled")).collect();
    }
    items.pop().expect("one tree remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::exhaustive::exhaustive_minpower;
    use activity::TransitionModel;

    #[test]
    fn static_and_often_matches_exhaustive() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
        let mut optimal = 0usize;
        let trials = 200usize;
        for _ in 0..trials {
            let n = rng.gen_range(3..=5);
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..0.99)).collect();
            let t = modified_huffman_tree(&probs, obj);
            let (best, _) = exhaustive_minpower(&probs, obj);
            assert!(
                t.internal_cost(obj) >= best - 1e-9,
                "greedy beat the oracle?"
            );
            if t.internal_cost(obj) <= best + 1e-9 {
                optimal += 1;
            }
        }
        // The paper's Table 1 reports 88–100 % optimality; require a sane
        // lower bound here.
        assert!(
            optimal * 100 / trials >= 80,
            "only {optimal}/{trials} optimal"
        );
    }

    #[test]
    fn greedy_first_merge_is_min_pair() {
        let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
        // With these probabilities the min-F pair is (0.1, 0.1):
        // F = 2·0.01·0.99 ≈ 0.0198, smaller than any pair involving 0.5.
        let t = modified_huffman_tree(&[0.1, 0.5, 0.1], obj);
        let depths = t.leaf_depths();
        assert_eq!(depths[1], 1, "0.5 leaf must sit at the root level");
    }

    #[test]
    fn correlated_reduces_to_independent() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let probs = [0.3, 0.4, 0.7, 0.5];
        let m = CorrelationMatrix::independent(&probs);
        let tc = modified_huffman_correlated(&m, obj);
        let ti = modified_huffman_tree(&probs, obj);
        assert!((tc.internal_cost(obj) - ti.internal_cost(obj)).abs() < 1e-9);
        assert!((tc.p_root() - probs.iter().product::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn correlated_exploits_correlation() {
        // Signals 0 and 1 are perfectly anti-correlated: P(0∧1) = 0, so the
        // greedy must merge them first (zero switching at the AND).
        let p = vec![0.5, 0.5, 0.9];
        let joint = vec![
            vec![0.5, 0.0, 0.45],
            vec![0.0, 0.5, 0.45],
            vec![0.45, 0.45, 0.9],
        ];
        let m = CorrelationMatrix::new(p, joint);
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let t = modified_huffman_correlated(&m, obj);
        let depths = t.leaf_depths();
        assert_eq!(depths[0], 2);
        assert_eq!(depths[1], 2);
        assert_eq!(depths[2], 1);
        assert!(
            t.p_root() <= 1e-12,
            "root of AND over anti-correlated pair is 0"
        );
    }
}
