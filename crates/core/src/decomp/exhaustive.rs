//! Exact MINPOWER by exhaustive enumeration of merge histories.
//!
//! There are `(2n−3)!! = 1, 3, 15, 105, 945, …` distinct unordered binary
//! trees over `n` labelled leaves; for the small `n` used in node
//! decomposition (and in the paper's Table 1, `n ≤ 6`) full enumeration is
//! cheap. This is the oracle against which the Huffman and Modified Huffman
//! algorithms are scored.

use crate::decomp::objective::DecompObjective;
use crate::decomp::tree::DecompTree;

/// Return `(optimal internal cost, an optimal tree)`.
///
/// # Panics
/// Panics if `probs` is empty or `probs.len() > 10` (enumeration explodes).
pub fn exhaustive_minpower(probs: &[f64], obj: DecompObjective) -> (f64, DecompTree) {
    assert!(!probs.is_empty(), "need at least one leaf");
    assert!(
        probs.len() <= 10,
        "exhaustive enumeration capped at 10 leaves"
    );
    let items: Vec<DecompTree> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| DecompTree::leaf(i, p))
        .collect();
    let mut best: Option<(f64, DecompTree)> = None;
    search(items, 0.0, obj, &mut best);
    best.expect("at least one tree")
}

/// Exact optimum among trees whose height does not exceed `height_bound` —
/// the oracle for BOUNDED-HEIGHT MINPOWER. Returns `None` when no tree fits
/// (bound below `ceil(log2 n)`).
pub fn exhaustive_bounded_minpower(
    probs: &[f64],
    obj: DecompObjective,
    height_bound: usize,
) -> Option<(f64, DecompTree)> {
    assert!(!probs.is_empty(), "need at least one leaf");
    assert!(
        probs.len() <= 10,
        "exhaustive enumeration capped at 10 leaves"
    );
    let items: Vec<DecompTree> = probs
        .iter()
        .enumerate()
        .map(|(i, &p)| DecompTree::leaf(i, p))
        .collect();
    let mut best: Option<(f64, DecompTree)> = None;
    search_bounded(items, 0.0, obj, height_bound, &mut best);
    best
}

fn search(
    items: Vec<DecompTree>,
    cost_so_far: f64,
    obj: DecompObjective,
    best: &mut Option<(f64, DecompTree)>,
) {
    if items.len() == 1 {
        let tree = items.into_iter().next().expect("one item");
        if best.as_ref().is_none_or(|(c, _)| cost_so_far < *c) {
            *best = Some((cost_so_far, tree));
        }
        return;
    }
    if best.as_ref().is_some_and(|(c, _)| cost_so_far >= *c) {
        return; // branch and bound: costs only grow
    }
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let mut next: Vec<DecompTree> = Vec::with_capacity(items.len() - 1);
            for (k, t) in items.iter().enumerate() {
                if k != i && k != j {
                    next.push(t.clone());
                }
            }
            let merged = DecompTree::merge(items[i].clone(), items[j].clone(), obj);
            let step = obj.cost(merged.p_root());
            next.push(merged);
            search(next, cost_so_far + step, obj, best);
        }
    }
}

fn search_bounded(
    items: Vec<DecompTree>,
    cost_so_far: f64,
    obj: DecompObjective,
    bound: usize,
    best: &mut Option<(f64, DecompTree)>,
) {
    if items.len() == 1 {
        let tree = items.into_iter().next().expect("one item");
        if tree.height() <= bound && best.as_ref().is_none_or(|(c, _)| cost_so_far < *c) {
            *best = Some((cost_so_far, tree));
        }
        return;
    }
    if best.as_ref().is_some_and(|(c, _)| cost_so_far >= *c) {
        return;
    }
    // Prune: if even the balanced completion overflows the bound, stop.
    if crate::decomp::bounded::min_height(&items.iter().map(DecompTree::height).collect::<Vec<_>>())
        > bound
    {
        return;
    }
    for i in 0..items.len() {
        for j in i + 1..items.len() {
            let mut next: Vec<DecompTree> = Vec::with_capacity(items.len() - 1);
            for (k, t) in items.iter().enumerate() {
                if k != i && k != j {
                    next.push(t.clone());
                }
            }
            let merged = DecompTree::merge(items[i].clone(), items[j].clone(), obj);
            let step = obj.cost(merged.p_root());
            next.push(merged);
            search_bounded(next, cost_so_far + step, obj, bound, best);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::objective::GateKind;
    use activity::TransitionModel;

    #[test]
    fn figure1_optimum() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let (best, tree) = exhaustive_minpower(&[0.3, 0.4, 0.7, 0.5], obj);
        assert!((best - 0.222).abs() < 1e-12);
        assert!((tree.internal_cost(obj) - best).abs() < 1e-12);
    }

    #[test]
    fn two_leaves_trivial() {
        let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
        let (best, tree) = exhaustive_minpower(&[0.5, 0.5], obj);
        assert!((best - obj.pair_cost(0.5, 0.5)).abs() < 1e-12);
        assert_eq!(tree.height(), 1);
    }

    #[test]
    fn bounded_matches_unbounded_when_loose() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let probs = [0.3, 0.4, 0.7, 0.5];
        let (u, _) = exhaustive_minpower(&probs, obj);
        let (b, t) = exhaustive_bounded_minpower(&probs, obj, 3).expect("feasible");
        assert!((u - b).abs() < 1e-12);
        assert!(t.height() <= 3);
    }

    #[test]
    fn bounded_height_2_forces_balanced() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        let probs = [0.3, 0.4, 0.7, 0.5];
        let (b, t) = exhaustive_bounded_minpower(&probs, obj, 2).expect("feasible");
        assert_eq!(t.height(), 2);
        // The best balanced pairing: min over the 3 pairings.
        // (ab)(cd): 0.12+0.35+0.042  = 0.512
        // (ac)(bd): 0.21+0.20+0.042  = 0.452
        // (ad)(bc): 0.15+0.28+0.042  = 0.472
        assert!((b - 0.452).abs() < 1e-12);
    }

    #[test]
    fn infeasible_bound_returns_none() {
        let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
        assert!(exhaustive_bounded_minpower(&[0.5; 4], obj, 1).is_none());
    }

    #[test]
    fn bounded_cost_monotone_in_bound() {
        let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
        let probs = [0.9, 0.8, 0.2, 0.3, 0.6];
        let mut last = f64::INFINITY;
        for bound in [3usize, 4, 5] {
            let (c, _) = exhaustive_bounded_minpower(&probs, obj, bound).expect("feasible");
            assert!(c <= last + 1e-12, "cost must not grow as the bound loosens");
            last = c;
        }
    }
}
