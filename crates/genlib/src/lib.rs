//! Gate libraries in Berkeley `genlib` format.
//!
//! Provides the [`Library`]/[`Gate`] model used by the technology mapper,
//! a full parser for genlib text (including multi-`PIN` gates and Boolean
//! expressions with `!`, `'`, `*`, `+`, parentheses and implicit AND), and
//! an embedded `lib2`-like library ([`builtin::lib2_like`]) whose gate mix,
//! areas, pin capacitances and pin-dependent delays follow the ranges of the
//! classic SIS `lib2.genlib`.
//!
//! # Example
//!
//! ```
//! use genlib::Library;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let lib = Library::parse("GATE nand2 2.0 O=!(a*b); PIN * INV 1.0 999 0.6 1.0 0.6 1.0\n")?;
//! let g = lib.find("nand2").expect("gate exists");
//! assert_eq!(g.inputs().len(), 2);
//! assert!(!g.eval(&[true, true]));
//! assert!(g.eval(&[true, false]));
//! # Ok(())
//! # }
//! ```

pub mod builtin;
pub mod expr;
pub mod library;
pub mod parse;

pub use expr::Expr;
pub use library::{Gate, Library, Pin};
pub use parse::ParseGenlibError;
