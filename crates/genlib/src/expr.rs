//! Boolean expression ASTs for genlib gate functions.

use std::fmt;

/// A Boolean expression over named inputs, as written in a genlib `GATE`
/// line. AND/OR are kept n-ary and flattened; this is the form the pattern
/// generator consumes when enumerating NAND2/INV decompositions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Constant 0 (`CONST0`).
    Zero,
    /// Constant 1 (`CONST1`).
    One,
    /// Input by position in the gate's input list.
    Var(usize),
    /// Complement.
    Not(Box<Expr>),
    /// n-ary conjunction.
    And(Vec<Expr>),
    /// n-ary disjunction.
    Or(Vec<Expr>),
}

impl Expr {
    /// Evaluate over an input assignment.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        match self {
            Expr::Zero => false,
            Expr::One => true,
            Expr::Var(i) => inputs[*i],
            Expr::Not(e) => !e.eval(inputs),
            Expr::And(es) => es.iter().all(|e| e.eval(inputs)),
            Expr::Or(es) => es.iter().any(|e| e.eval(inputs)),
        }
    }

    /// Number of leaf (variable) occurrences.
    pub fn leaf_count(&self) -> usize {
        match self {
            Expr::Zero | Expr::One => 0,
            Expr::Var(_) => 1,
            Expr::Not(e) => e.leaf_count(),
            Expr::And(es) | Expr::Or(es) => es.iter().map(Expr::leaf_count).sum(),
        }
    }

    /// Flatten nested AND-of-AND / OR-of-OR and push negations to the
    /// leaves (negation-normal form), preserving semantics.
    pub fn normalize(&self) -> Expr {
        fn nnf(e: &Expr, neg: bool) -> Expr {
            match e {
                Expr::Zero => {
                    if neg {
                        Expr::One
                    } else {
                        Expr::Zero
                    }
                }
                Expr::One => {
                    if neg {
                        Expr::Zero
                    } else {
                        Expr::One
                    }
                }
                Expr::Var(i) => {
                    if neg {
                        Expr::Not(Box::new(Expr::Var(*i)))
                    } else {
                        Expr::Var(*i)
                    }
                }
                Expr::Not(inner) => nnf(inner, !neg),
                Expr::And(es) => {
                    let kids: Vec<Expr> = es.iter().map(|k| nnf(k, neg)).collect();
                    if neg {
                        flatten_or(kids)
                    } else {
                        flatten_and(kids)
                    }
                }
                Expr::Or(es) => {
                    let kids: Vec<Expr> = es.iter().map(|k| nnf(k, neg)).collect();
                    if neg {
                        flatten_and(kids)
                    } else {
                        flatten_or(kids)
                    }
                }
            }
        }
        fn flatten_and(kids: Vec<Expr>) -> Expr {
            let mut out = Vec::new();
            for k in kids {
                match k {
                    Expr::And(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            if out.len() == 1 {
                out.pop().expect("non-empty")
            } else {
                Expr::And(out)
            }
        }
        fn flatten_or(kids: Vec<Expr>) -> Expr {
            let mut out = Vec::new();
            for k in kids {
                match k {
                    Expr::Or(inner) => out.extend(inner),
                    other => out.push(other),
                }
            }
            if out.len() == 1 {
                out.pop().expect("non-empty")
            } else {
                Expr::Or(out)
            }
        }
        nnf(self, false)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Zero => write!(f, "CONST0"),
            Expr::One => write!(f, "CONST1"),
            Expr::Var(i) => write!(f, "x{i}"),
            Expr::Not(e) => write!(f, "!({e})"),
            Expr::And(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
            Expr::Or(es) => {
                write!(f, "(")?;
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        // !(a*b) + c
        let e = Expr::Or(vec![
            Expr::Not(Box::new(Expr::And(vec![Expr::Var(0), Expr::Var(1)]))),
            Expr::Var(2),
        ]);
        assert!(e.eval(&[false, true, false]));
        assert!(!e.eval(&[true, true, false]));
        assert!(e.eval(&[true, true, true]));
    }

    #[test]
    fn normalize_pushes_negation_and_flattens() {
        // !(a + (b + c)) -> !a * !b * !c (flattened)
        let e = Expr::Not(Box::new(Expr::Or(vec![
            Expr::Var(0),
            Expr::Or(vec![Expr::Var(1), Expr::Var(2)]),
        ])));
        let n = e.normalize();
        match &n {
            Expr::And(kids) => assert_eq!(kids.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        for bits in 0..8u32 {
            let v: Vec<bool> = (0..3).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(e.eval(&v), n.eval(&v));
        }
    }

    #[test]
    fn double_negation_cancels() {
        let e = Expr::Not(Box::new(Expr::Not(Box::new(Expr::Var(0)))));
        assert_eq!(e.normalize(), Expr::Var(0));
    }
}
