//! The embedded `lib2`-like library.
//!
//! Reconstructed stand-in for SIS `lib2.genlib` (the original file is not
//! redistributable here): the same *kind* of cell mix — inverters/buffers in
//! several drive strengths, NAND/NOR 2–4, AND/OR 2–4, AOI/OAI 21/22, AO/OA
//! 21/22, XOR/XNOR, MUX — with areas, pin capacitances, intrinsic delays and
//! drive resistances in lib2's value ranges. See `DESIGN.md` for the
//! substitution rationale.

use crate::library::Library;

/// Genlib source text of the embedded library.
pub const LIB2_LIKE_GENLIB: &str = r#"
# lib2-like standard-cell library (reconstructed stand-in)
# PIN fields: name phase input-load max-load rise-block rise-fanout fall-block fall-fanout

GATE inv1   1.0  O=!a;          PIN a INV 1.0 999 0.40 1.00 0.35 0.95
GATE inv2   2.0  O=!a;          PIN a INV 2.0 999 0.45 0.50 0.40 0.48
GATE inv4   3.0  O=!a;          PIN a INV 4.0 999 0.50 0.25 0.45 0.24
GATE buf2   2.0  O=a;           PIN a NONINV 1.0 999 0.90 0.50 0.85 0.48

GATE nand2  2.0  O=!(a*b);      PIN a INV 1.0 999 0.60 1.00 0.55 0.95
                                PIN b INV 1.0 999 0.62 1.02 0.57 0.97
GATE nand2x2 3.0 O=!(a*b);      PIN * INV 2.0 999 0.70 0.50 0.64 0.48
GATE nand3  3.0  O=!(a*b*c);    PIN * INV 1.4 999 0.90 1.20 0.82 1.10
GATE nand4  4.0  O=!(a*b*c*d);  PIN * INV 1.8 999 1.20 1.40 1.10 1.30

GATE nor2   2.0  O=!(a+b);      PIN a INV 1.1 999 0.80 1.20 0.72 1.10
                                PIN b INV 1.1 999 0.82 1.22 0.74 1.12
GATE nor2x2 3.0  O=!(a+b);      PIN * INV 2.2 999 0.90 0.60 0.82 0.55
GATE nor3   3.0  O=!(a+b+c);    PIN * INV 1.5 999 1.20 1.50 1.10 1.40
GATE nor4   4.0  O=!(a+b+c+d);  PIN * INV 1.9 999 1.60 1.80 1.45 1.65

GATE and2   3.0  O=a*b;         PIN * NONINV 1.0 999 1.00 0.90 0.95 0.85
GATE and3   4.0  O=a*b*c;       PIN * NONINV 1.2 999 1.30 0.95 1.20 0.90
GATE and4   5.0  O=a*b*c*d;     PIN * NONINV 1.4 999 1.60 1.00 1.50 0.95

GATE or2    3.0  O=a+b;         PIN * NONINV 1.0 999 1.20 0.90 1.10 0.85
GATE or3    4.0  O=a+b+c;       PIN * NONINV 1.2 999 1.50 0.95 1.40 0.90
GATE or4    5.0  O=a+b+c+d;     PIN * NONINV 1.4 999 1.80 1.00 1.70 0.95

GATE aoi21  3.0  O=!(a*b+c);    PIN a INV 1.3 999 1.00 1.30 0.92 1.20
                                PIN b INV 1.3 999 1.02 1.32 0.94 1.22
                                PIN c INV 1.4 999 0.80 1.25 0.74 1.15
GATE aoi22  4.0  O=!(a*b+c*d);  PIN * INV 1.5 999 1.20 1.40 1.10 1.30
GATE oai21  3.0  O=!((a+b)*c);  PIN a INV 1.3 999 1.10 1.30 1.00 1.20
                                PIN b INV 1.3 999 1.12 1.32 1.02 1.22
                                PIN c INV 1.4 999 0.90 1.25 0.82 1.15
GATE oai22  4.0  O=!((a+b)*(c+d)); PIN * INV 1.5 999 1.30 1.40 1.20 1.30

GATE ao21   4.0  O=a*b+c;       PIN * NONINV 1.2 999 1.40 0.95 1.30 0.90
GATE ao22   5.0  O=a*b+c*d;     PIN * NONINV 1.3 999 1.60 1.00 1.50 0.95
GATE oa21   4.0  O=(a+b)*c;     PIN * NONINV 1.2 999 1.50 0.95 1.40 0.90
GATE oa22   5.0  O=(a+b)*(c+d); PIN * NONINV 1.3 999 1.70 1.00 1.60 0.95

GATE xor2   5.0  O=a*!b+!a*b;   PIN * UNKNOWN 1.9 999 1.80 1.10 1.70 1.05
GATE xnor2  5.0  O=a*b+!a*!b;   PIN * UNKNOWN 1.9 999 1.90 1.10 1.80 1.05
GATE mux21  6.0  O=a*s+b*!s;    PIN a NONINV 1.2 999 1.60 1.00 1.50 0.95
                                PIN s UNKNOWN 1.6 999 1.80 1.10 1.70 1.05
                                PIN b NONINV 1.2 999 1.62 1.02 1.52 0.97
"#;

/// Parse and return the embedded `lib2`-like library.
///
/// # Panics
/// Never in practice: the embedded text is validated by this crate's tests.
pub fn lib2_like() -> Library {
    Library::parse(LIB2_LIKE_GENLIB).expect("embedded library must parse")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_has_expected_cells() {
        let lib = lib2_like();
        for name in [
            "inv1", "inv2", "inv4", "buf2", "nand2", "nand3", "nand4", "nor2", "nor3", "nor4",
            "and2", "and3", "and4", "or2", "or3", "or4", "aoi21", "aoi22", "oai21", "oai22",
            "ao21", "ao22", "oa21", "oa22", "xor2", "xnor2", "mux21",
        ] {
            assert!(lib.find(name).is_some(), "missing cell `{name}`");
        }
    }

    #[test]
    fn stronger_inverters_drive_better_but_load_more() {
        let lib = lib2_like();
        let i1 = lib.find("inv1").unwrap();
        let i4 = lib.find("inv4").unwrap();
        assert!(i4.pin(0).drive < i1.pin(0).drive);
        assert!(i4.pin(0).input_cap > i1.pin(0).input_cap);
    }

    #[test]
    fn mux_semantics() {
        let lib = lib2_like();
        let mux = lib.find("mux21").unwrap();
        // inputs in first-use order: a, s, b — O = a·s + b·!s
        assert!(mux.eval(&[true, true, false]));
        assert!(!mux.eval(&[false, true, true]));
        assert!(mux.eval(&[false, false, true]));
    }
}
