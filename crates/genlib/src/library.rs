//! Gate and library models.

use crate::expr::Expr;
use crate::parse::{parse_genlib, ParseGenlibError};

/// Electrical description of one gate input pin.
///
/// Genlib rise/fall blocks are collapsed to a single worst-case pair: the
/// mapper's delay model (paper eq. 14) is `delay = intrinsic + drive ·
/// C_load`.
#[derive(Debug, Clone, PartialEq)]
pub struct Pin {
    /// Pin (input) name.
    pub name: String,
    /// Input capacitance in load units.
    pub input_cap: f64,
    /// Maximum load this pin's gate may drive through this arc.
    pub max_load: f64,
    /// Intrinsic (block) delay τ from this pin to the output, ns.
    pub intrinsic: f64,
    /// Drive resistance R: additional delay per load unit, ns / load.
    pub drive: f64,
}

/// One library cell.
#[derive(Debug, Clone)]
pub struct Gate {
    name: String,
    area: f64,
    output: String,
    inputs: Vec<String>,
    function: Expr,
    pins: Vec<Pin>,
}

impl Gate {
    pub(crate) fn new(
        name: String,
        area: f64,
        output: String,
        inputs: Vec<String>,
        function: Expr,
        pins: Vec<Pin>,
    ) -> Gate {
        assert_eq!(inputs.len(), pins.len(), "one pin record per input");
        Gate {
            name,
            area,
            output,
            inputs,
            function,
            pins,
        }
    }

    /// Cell name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Cell area (library units).
    pub fn area(&self) -> f64 {
        self.area
    }

    /// Output pin name.
    pub fn output(&self) -> &str {
        &self.output
    }

    /// Ordered input names (positions match [`Gate::function`] variables).
    pub fn inputs(&self) -> &[String] {
        &self.inputs
    }

    /// The gate function over input positions.
    pub fn function(&self) -> &Expr {
        &self.function
    }

    /// Pin records, aligned with [`Gate::inputs`].
    pub fn pins(&self) -> &[Pin] {
        &self.pins
    }

    /// Pin record for input position `i`.
    pub fn pin(&self, i: usize) -> &Pin {
        &self.pins[i]
    }

    /// Evaluate the gate on an input assignment.
    pub fn eval(&self, inputs: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.inputs.len(), "gate input width mismatch");
        self.function.eval(inputs)
    }

    /// True if the gate is a single-input inverter.
    pub fn is_inverter(&self) -> bool {
        self.inputs.len() == 1 && !self.eval(&[true]) && self.eval(&[false])
    }

    /// True if the gate is a single-input buffer.
    pub fn is_buffer(&self) -> bool {
        self.inputs.len() == 1 && self.eval(&[true]) && !self.eval(&[false])
    }

    /// Build a gate with **no** validation (pin/input arity may mismatch,
    /// electrical values may be negative). Exists solely so lint mutation
    /// tests can construct invalid gates; never call it otherwise.
    #[doc(hidden)]
    pub fn raw_for_test(
        name: String,
        area: f64,
        output: String,
        inputs: Vec<String>,
        function: Expr,
        pins: Vec<Pin>,
    ) -> Gate {
        Gate {
            name,
            area,
            output,
            inputs,
            function,
            pins,
        }
    }

    /// Worst-case pin-to-output delay for a given output load.
    pub fn worst_delay(&self, load: f64) -> f64 {
        self.pins
            .iter()
            .map(|p| p.intrinsic + p.drive * load)
            .fold(0.0, f64::max)
    }
}

/// A cell library.
#[derive(Debug, Clone)]
pub struct Library {
    name: String,
    gates: Vec<Gate>,
}

impl Library {
    pub(crate) fn from_gates(name: String, gates: Vec<Gate>) -> Library {
        Library { name, gates }
    }

    /// Build a library from raw gates with no validation; companion of
    /// [`Gate::raw_for_test`], test-only.
    #[doc(hidden)]
    pub fn from_gates_for_test(name: String, gates: Vec<Gate>) -> Library {
        Library { name, gates }
    }

    /// Parse genlib text into a library.
    ///
    /// # Errors
    /// Returns a [`ParseGenlibError`] describing the first problem found.
    pub fn parse(text: &str) -> Result<Library, ParseGenlibError> {
        parse_genlib(text)
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All gates.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Find a gate by cell name.
    pub fn find(&self, name: &str) -> Option<&Gate> {
        self.gates.iter().find(|g| g.name == name)
    }

    /// The smallest-area inverter; `None` if the library has no inverter.
    pub fn min_inverter(&self) -> Option<&Gate> {
        self.gates
            .iter()
            .filter(|g| g.is_inverter())
            .min_by(|a, b| a.area.partial_cmp(&b.area).expect("finite areas"))
    }

    /// Serialize the library back to genlib text. Rise and fall blocks are
    /// emitted identically (this crate collapses them to worst-case on
    /// parse), so `Library::parse(lib.to_genlib())` reproduces the library
    /// exactly.
    pub fn to_genlib(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for g in &self.gates {
            let expr = render_expr(g.function(), g.inputs());
            let _ = writeln!(
                out,
                "GATE {} {} {}={};",
                g.name(),
                g.area(),
                g.output(),
                expr
            );
            for p in g.pins() {
                let _ = writeln!(
                    out,
                    "PIN {} UNKNOWN {} {} {} {} {} {}",
                    p.name, p.input_cap, p.max_load, p.intrinsic, p.drive, p.intrinsic, p.drive
                );
            }
        }
        out
    }

    /// Default unknown-load value: the input capacitance of the smallest
    /// 2-input NAND (paper §3.2.3), falling back to the smallest inverter
    /// and then to 1.0.
    pub fn default_load(&self) -> f64 {
        let nand2 = self
            .gates
            .iter()
            .filter(|g| {
                g.inputs.len() == 2
                    && !g.eval(&[true, true])
                    && g.eval(&[false, true])
                    && g.eval(&[true, false])
                    && g.eval(&[false, false])
            })
            .min_by(|a, b| a.area.partial_cmp(&b.area).expect("finite areas"));
        if let Some(g) = nand2 {
            return g.pins[0].input_cap;
        }
        if let Some(inv) = self.min_inverter() {
            return inv.pins[0].input_cap;
        }
        1.0
    }
}

/// Render an [`Expr`] in genlib syntax using the gate's input names.
fn render_expr(e: &Expr, inputs: &[String]) -> String {
    match e {
        Expr::Zero => "CONST0".to_string(),
        Expr::One => "CONST1".to_string(),
        Expr::Var(i) => inputs[*i].clone(),
        Expr::Not(inner) => format!("!({})", render_expr(inner, inputs)),
        Expr::And(kids) => {
            let parts: Vec<String> = kids.iter().map(|k| render_expr(k, inputs)).collect();
            format!("({})", parts.join("*"))
        }
        Expr::Or(kids) => {
            let parts: Vec<String> = kids.iter().map(|k| render_expr(k, inputs)).collect();
            format!("({})", parts.join("+"))
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builtin::lib2_like;

    #[test]
    fn builtin_library_is_well_formed() {
        let lib = lib2_like();
        assert!(lib.gates().len() >= 20, "library should be rich");
        for g in lib.gates() {
            assert!(g.area() > 0.0, "{} area", g.name());
            assert_eq!(g.inputs().len(), g.pins().len());
            for p in g.pins() {
                assert!(p.input_cap > 0.0 && p.intrinsic >= 0.0 && p.drive > 0.0);
            }
        }
    }

    #[test]
    fn inverter_detection() {
        let lib = lib2_like();
        let inv = lib.min_inverter().expect("library has an inverter");
        assert!(inv.is_inverter());
        assert!(!inv.is_buffer());
    }

    #[test]
    fn default_load_comes_from_nand2() {
        let lib = lib2_like();
        let nand2 = lib.find("nand2").expect("nand2 exists");
        assert!((lib.default_load() - nand2.pin(0).input_cap).abs() < 1e-12);
    }

    #[test]
    fn gate_truth_tables() {
        let lib = lib2_like();
        let nand2 = lib.find("nand2").unwrap();
        assert!(!nand2.eval(&[true, true]));
        assert!(nand2.eval(&[false, true]));
        let nor2 = lib.find("nor2").unwrap();
        assert!(nor2.eval(&[false, false]));
        assert!(!nor2.eval(&[true, false]));
        let aoi21 = lib.find("aoi21").unwrap();
        // aoi21 = !((a*b) + c)
        assert!(!aoi21.eval(&[true, true, false]));
        assert!(!aoi21.eval(&[false, false, true]));
        assert!(aoi21.eval(&[true, false, false]));
        let xor2 = lib.find("xor2").unwrap();
        assert!(xor2.eval(&[true, false]));
        assert!(!xor2.eval(&[true, true]));
    }

    #[test]
    fn worst_delay_grows_with_load() {
        let lib = lib2_like();
        let g = lib.find("nand2").unwrap();
        assert!(g.worst_delay(4.0) > g.worst_delay(1.0));
    }

    #[test]
    fn to_genlib_roundtrips() {
        let lib = lib2_like();
        let text = lib.to_genlib();
        let back = crate::Library::parse(&text).expect("rendered genlib parses");
        assert_eq!(back.gates().len(), lib.gates().len());
        for (a, b) in lib.gates().iter().zip(back.gates()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.area(), b.area());
            assert_eq!(a.inputs(), b.inputs());
            // functional equality over all assignments
            let k = a.inputs().len();
            for bits in 0..(1u32 << k) {
                let v: Vec<bool> = (0..k).map(|i| bits >> i & 1 == 1).collect();
                assert_eq!(a.eval(&v), b.eval(&v), "gate {}", a.name());
            }
            for (pa, pb) in a.pins().iter().zip(b.pins()) {
                assert_eq!(pa, pb, "pins of {}", a.name());
            }
        }
    }
}
