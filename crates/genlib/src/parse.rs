//! Parser for Berkeley genlib text.
//!
//! Grammar (combinational subset):
//!
//! ```text
//! file    := (gate)*
//! gate    := "GATE" name area output "=" expr ";" (pin)*
//! pin     := "PIN" (name | "*") phase input-load max-load
//!            rise-block rise-fanout fall-block fall-fanout
//! expr    := term ("+" term)*
//! term    := factor (("*")? factor)*      # implicit AND supported
//! factor  := "!" factor | atom "'"*
//! atom    := "(" expr ")" | identifier | CONST0 | CONST1
//! ```

use crate::expr::Expr;
use crate::library::{Gate, Library, Pin};
use std::collections::HashMap;
use std::fmt;

/// Error raised while parsing genlib text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseGenlibError {
    /// 1-based line of the problem (0 when unknown).
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseGenlibError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "genlib parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseGenlibError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Word(String),
    Punct(char),
    Number(f64),
}

fn tokenize(text: &str) -> Result<Vec<(usize, Tok)>, ParseGenlibError> {
    let mut toks = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let s = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let mut chars = s.chars().peekable();
        while let Some(&c) = chars.peek() {
            if c.is_whitespace() {
                chars.next();
            } else if c.is_ascii_digit()
                || (c == '.' && chars.clone().nth(1).is_some_and(|d| d.is_ascii_digit()))
                || c == '-'
                    && chars
                        .clone()
                        .nth(1)
                        .is_some_and(|d| d.is_ascii_digit() || d == '.')
            {
                let mut num = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit()
                        || d == '.'
                        || d == 'e'
                        || d == 'E'
                        || d == '-'
                        || d == '+'
                    {
                        // stop '-'/'+' unless part of exponent
                        if (d == '-' || d == '+')
                            && !num.is_empty()
                            && !num.ends_with('e')
                            && !num.ends_with('E')
                        {
                            break;
                        }
                        num.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: f64 = num.parse().map_err(|_| ParseGenlibError {
                    line,
                    message: format!("bad number `{num}`"),
                })?;
                toks.push((line, Tok::Number(v)));
            } else if c.is_alphanumeric() || c == '_' || c == '[' || c == ']' || c == '.' {
                let mut w = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '[' || d == ']' || d == '.' {
                        w.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push((line, Tok::Word(w)));
            } else {
                chars.next();
                toks.push((line, Tok::Punct(c)));
            }
        }
    }
    Ok(toks)
}

struct Parser {
    toks: Vec<(usize, Tok)>,
    pos: usize,
}

impl Parser {
    fn line(&self) -> usize {
        self.toks.get(self.pos).map_or(0, |t| t.0)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.1)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.1.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> ParseGenlibError {
        ParseGenlibError {
            line: self.line(),
            message: message.into(),
        }
    }

    fn expect_word(&mut self) -> Result<String, ParseGenlibError> {
        match self.next() {
            Some(Tok::Word(w)) => Ok(w),
            other => Err(self.err(format!("expected identifier, got {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64, ParseGenlibError> {
        match self.next() {
            Some(Tok::Number(v)) => Ok(v),
            // genlib allows things like `999` written as words in odd files
            Some(Tok::Word(w)) if w.parse::<f64>().is_ok() => Ok(w.parse().expect("checked")),
            other => Err(self.err(format!("expected number, got {other:?}"))),
        }
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseGenlibError> {
        match self.next() {
            Some(Tok::Punct(p)) if p == c => Ok(()),
            other => Err(self.err(format!("expected `{c}`, got {other:?}"))),
        }
    }

    // expr := term (+ term)*
    fn parse_expr(&mut self, vars: &mut Vec<String>) -> Result<Expr, ParseGenlibError> {
        let mut terms = vec![self.parse_term(vars)?];
        while matches!(self.peek(), Some(Tok::Punct('+'))) {
            self.next();
            terms.push(self.parse_term(vars)?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one")
        } else {
            Expr::Or(terms)
        })
    }

    // term := factor (("*")? factor)*
    fn parse_term(&mut self, vars: &mut Vec<String>) -> Result<Expr, ParseGenlibError> {
        let mut factors = vec![self.parse_factor(vars)?];
        loop {
            match self.peek() {
                Some(Tok::Punct('*')) => {
                    self.next();
                    factors.push(self.parse_factor(vars)?);
                }
                // implicit AND: adjacency of factors
                Some(Tok::Punct('(')) | Some(Tok::Punct('!')) | Some(Tok::Word(_)) => {
                    factors.push(self.parse_factor(vars)?);
                }
                _ => break,
            }
        }
        Ok(if factors.len() == 1 {
            factors.pop().expect("one")
        } else {
            Expr::And(factors)
        })
    }

    fn parse_factor(&mut self, vars: &mut Vec<String>) -> Result<Expr, ParseGenlibError> {
        let mut negate = false;
        while matches!(self.peek(), Some(Tok::Punct('!'))) {
            self.next();
            negate = !negate;
        }
        let mut e = match self.next() {
            Some(Tok::Punct('(')) => {
                let inner = self.parse_expr(vars)?;
                self.expect_punct(')')?;
                inner
            }
            Some(Tok::Word(w)) if w == "CONST0" => Expr::Zero,
            Some(Tok::Word(w)) if w == "CONST1" => Expr::One,
            Some(Tok::Word(w)) => {
                let idx = vars.iter().position(|v| *v == w).unwrap_or_else(|| {
                    vars.push(w.clone());
                    vars.len() - 1
                });
                Expr::Var(idx)
            }
            other => return Err(self.err(format!("expected factor, got {other:?}"))),
        };
        // postfix complement(s)
        while matches!(self.peek(), Some(Tok::Punct('\''))) {
            self.next();
            e = Expr::Not(Box::new(e));
        }
        if negate {
            e = Expr::Not(Box::new(e));
        }
        Ok(e)
    }
}

/// Parse genlib text into a [`Library`].
///
/// # Errors
/// Returns [`ParseGenlibError`] on malformed text, a `PIN` for an unknown
/// input, or a gate whose inputs lack pin records.
pub fn parse_genlib(text: &str) -> Result<Library, ParseGenlibError> {
    let toks = tokenize(text)?;
    let mut p = Parser { toks, pos: 0 };
    let mut gates = Vec::new();
    while let Some(tok) = p.peek() {
        match tok {
            Tok::Word(w) if w == "GATE" => {
                p.next();
                let name = p.expect_word()?;
                let area = p.expect_number()?;
                let output = p.expect_word()?;
                p.expect_punct('=')?;
                let mut vars: Vec<String> = Vec::new();
                let function = p.parse_expr(&mut vars)?;
                p.expect_punct(';')?;
                // PIN lines
                let mut star: Option<Pin> = None;
                let mut named: HashMap<String, Pin> = HashMap::new();
                while matches!(p.peek(), Some(Tok::Word(w)) if w == "PIN") {
                    p.next();
                    let pin_name = match p.next() {
                        Some(Tok::Word(w)) => w,
                        Some(Tok::Punct('*')) => "*".to_string(),
                        other => return Err(p.err(format!("expected pin name, got {other:?}"))),
                    };
                    let _phase = p.expect_word()?; // INV / NONINV / UNKNOWN
                    let input_cap = p.expect_number()?;
                    let max_load = p.expect_number()?;
                    let rise_block = p.expect_number()?;
                    let rise_fanout = p.expect_number()?;
                    let fall_block = p.expect_number()?;
                    let fall_fanout = p.expect_number()?;
                    let pin = Pin {
                        name: pin_name.clone(),
                        input_cap,
                        max_load,
                        intrinsic: rise_block.max(fall_block),
                        drive: rise_fanout.max(fall_fanout),
                    };
                    if pin_name == "*" {
                        star = Some(pin);
                    } else {
                        named.insert(pin_name, pin);
                    }
                }
                let mut pins = Vec::with_capacity(vars.len());
                for v in &vars {
                    if let Some(pin) = named.get(v) {
                        pins.push(pin.clone());
                    } else if let Some(s) = &star {
                        let mut pin = s.clone();
                        pin.name = v.clone();
                        pins.push(pin);
                    } else {
                        return Err(p.err(format!("gate `{name}`: no PIN record for input `{v}`")));
                    }
                }
                gates.push(Gate::new(name, area, output, vars, function, pins));
            }
            Tok::Word(w) if w == "LATCH" => {
                // Skip sequential cells: consume until next GATE/LATCH.
                p.next();
                while let Some(t) = p.peek() {
                    if matches!(t, Tok::Word(w) if w == "GATE" || w == "LATCH") {
                        break;
                    }
                    p.next();
                }
            }
            other => return Err(p.err(format!("expected GATE, got {other:?}"))),
        }
    }
    Ok(Library::from_gates("genlib".to_string(), gates))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_gate() {
        let lib = parse_genlib("GATE inv 1.0 O=!a; PIN a INV 1.0 999 0.4 0.9 0.4 0.9\n").unwrap();
        let g = lib.find("inv").unwrap();
        assert!(g.is_inverter());
        assert!((g.pin(0).intrinsic - 0.4).abs() < 1e-12);
    }

    #[test]
    fn star_pin_expands_to_all_inputs() {
        let lib =
            parse_genlib("GATE nand3 3.0 O=!(a*b*c); PIN * INV 1.1 999 0.9 1.2 0.8 1.0\n").unwrap();
        let g = lib.find("nand3").unwrap();
        assert_eq!(g.pins().len(), 3);
        assert_eq!(g.pin(2).name, "c");
        // worst-case collapse: intrinsic = max(0.9, 0.8) = 0.9, drive = 1.2
        assert!((g.pin(0).intrinsic - 0.9).abs() < 1e-12);
        assert!((g.pin(0).drive - 1.2).abs() < 1e-12);
    }

    #[test]
    fn named_pins_override() {
        let lib = parse_genlib(
            "GATE aoi 3.0 O=!(a*b+c); PIN a INV 1.0 999 1 1 1 1\n\
             PIN b INV 1.2 999 1 1 1 1\nPIN c INV 1.5 999 0.5 0.8 0.5 0.8\n",
        )
        .unwrap();
        let g = lib.find("aoi").unwrap();
        assert!((g.pin(2).input_cap - 1.5).abs() < 1e-12);
        assert!((g.pin(2).drive - 0.8).abs() < 1e-12);
    }

    #[test]
    fn expression_syntax_variants() {
        // postfix complement, implicit AND, parentheses
        let lib = parse_genlib(
            "GATE g1 2.0 O=a'b + c; PIN * INV 1 999 1 1 1 1\n\
             GATE g2 2.0 O=!(a+b')*(c); PIN * INV 1 999 1 1 1 1\n",
        )
        .unwrap();
        let g1 = lib.find("g1").unwrap();
        // a'b + c
        assert!(g1.eval(&[false, true, false]));
        assert!(!g1.eval(&[true, true, false]));
        assert!(g1.eval(&[true, true, true]));
        let g2 = lib.find("g2").unwrap();
        // !a * b * c
        assert!(g2.eval(&[false, true, true]));
        assert!(!g2.eval(&[true, true, true]));
    }

    #[test]
    fn constants_parse() {
        let lib = parse_genlib("GATE tie1 1.0 O=CONST1;\nGATE tie0 1.0 O=CONST0;\n").unwrap();
        assert_eq!(lib.find("tie1").unwrap().inputs().len(), 0);
    }

    #[test]
    fn missing_pin_is_error() {
        let r = parse_genlib("GATE bad 1.0 O=a*b; PIN a INV 1 999 1 1 1 1\n");
        assert!(r.is_err());
    }

    #[test]
    fn latch_cells_are_skipped() {
        let lib = parse_genlib(
            "LATCH dff 4.0 Q=D; PIN D NONINV 1 999 1 1 1 1 SEQ Q ANY\n\
             GATE inv 1.0 O=!a; PIN a INV 1 999 1 1 1 1\n",
        )
        .unwrap();
        assert_eq!(lib.gates().len(), 1);
    }

    #[test]
    fn comments_and_blank_lines() {
        let lib =
            parse_genlib("# a comment\n\nGATE inv 1.0 O=!a; PIN a INV 1 999 1 1 1 1 # trailing\n")
                .unwrap();
        assert_eq!(lib.gates().len(), 1);
    }
}
