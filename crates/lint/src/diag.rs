//! Diagnostics: severities, provenance, and report rendering.

use std::fmt;

/// How serious a finding is.
///
/// `Error` findings mark structures the rest of the workspace is entitled
/// to assume never exist (they cause panics, wrong logic, or wrong cost
/// accounting downstream); `Warn` findings are suspicious but legal; `Info`
/// is purely informational.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational only; never affects exit status.
    Info,
    /// Suspicious but not invariant-breaking.
    Warn,
    /// Invariant violation; fails `--lint=deny` and the debug certifier.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

/// Where in the analyzed IR a diagnostic points.
///
/// All fields are optional: a library finding has no node, a whole-network
/// finding has no slot. `id` is the arena index ([`netlist::NodeId::index`]
/// for networks, the instance index for mapped netlists, the point index
/// for curves, the gate index for libraries).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Provenance {
    /// Name of the node / instance / gate the finding is about.
    pub node: Option<String>,
    /// Arena / instance / point index.
    pub id: Option<usize>,
    /// Fanin slot or pin position inside the node, when relevant.
    pub slot: Option<usize>,
}

impl Provenance {
    /// Empty provenance (whole-IR finding).
    pub fn none() -> Provenance {
        Provenance::default()
    }

    /// Provenance naming a node.
    pub fn node(name: impl Into<String>, id: usize) -> Provenance {
        Provenance {
            node: Some(name.into()),
            id: Some(id),
            slot: None,
        }
    }

    /// Provenance naming a fanin slot of a node.
    pub fn slot(name: impl Into<String>, id: usize, slot: usize) -> Provenance {
        Provenance {
            node: Some(name.into()),
            id: Some(id),
            slot: Some(slot),
        }
    }
}

/// One finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule id, e.g. `NET003`.
    pub rule: &'static str,
    /// Effective severity (after any configuration overrides).
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// Where the violation is.
    pub provenance: Provenance,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.rule, self.message)?;
        if let Some(node) = &self.provenance.node {
            write!(f, " (at `{node}`")?;
            if let Some(id) = self.provenance.id {
                write!(f, " #{id}")?;
            }
            if let Some(slot) = self.provenance.slot {
                write!(f, " slot {slot}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// All findings from one lint run over one IR value.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// What was analyzed, e.g. `network `alu2`` or `library `lib2``.
    pub subject: String,
    /// The findings, in rule order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Empty report for a subject.
    pub fn new(subject: impl Into<String>) -> LintReport {
        LintReport {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Record a finding.
    pub fn push(
        &mut self,
        rule: &'static str,
        severity: Severity,
        provenance: Provenance,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            rule,
            severity,
            message: message.into(),
            provenance,
        });
    }

    /// Append another report's findings (e.g. network findings into a
    /// decomposition report).
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of `Error`-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of `Warn`-severity findings.
    pub fn warn_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warn)
            .count()
    }

    /// True when at least one `Error`-severity finding exists.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// True when no findings at all were recorded.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Findings carrying a given rule id.
    pub fn by_rule<'a>(&'a self, rule: &str) -> impl Iterator<Item = &'a Diagnostic> {
        let rule = rule.to_string();
        self.diagnostics.iter().filter(move |d| d.rule == rule)
    }

    /// Render as human-readable text, one finding per line, with a summary
    /// tail line.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "lint: {}", self.subject);
        for d in &self.diagnostics {
            let _ = writeln!(out, "  {d}");
        }
        let _ = writeln!(
            out,
            "  {} error(s), {} warning(s), {} finding(s) total",
            self.error_count(),
            self.warn_count(),
            self.diagnostics.len()
        );
        out
    }

    /// Render as a JSON object (hand-rolled; the workspace carries no JSON
    /// dependency): `{"subject": …, "errors": n, "warnings": n,
    /// "diagnostics": [{rule, severity, message, node?, id?, slot?}…]}`.
    pub fn render_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"subject\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            json_string(&self.subject),
            self.error_count(),
            self.warn_count()
        );
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"rule\":{},\"severity\":{},\"message\":{}",
                json_string(d.rule),
                json_string(&d.severity.to_string()),
                json_string(&d.message)
            );
            if let Some(node) = &d.provenance.node {
                let _ = write!(out, ",\"node\":{}", json_string(node));
            }
            if let Some(id) = d.provenance.id {
                let _ = write!(out, ",\"id\":{id}");
            }
            if let Some(slot) = d.provenance.slot {
                let _ = write!(out, ",\"slot\":{slot}");
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_includes_provenance() {
        let mut r = LintReport::new("network `t`");
        r.push(
            "NET003",
            Severity::Error,
            Provenance::slot("f", 3, 1),
            "duplicate fanin",
        );
        let text = r.render_text();
        assert!(text.contains("error[NET003]"));
        assert!(text.contains("`f` #3 slot 1"));
        assert!(text.contains("1 error(s)"));
        assert!(r.has_errors());
        assert!(!r.is_clean());
    }

    #[test]
    fn json_rendering_escapes() {
        let mut r = LintReport::new("net \"q\"");
        r.push(
            "NET001",
            Severity::Warn,
            Provenance::none(),
            "path a\\b\nnext",
        );
        let json = r.render_json();
        assert!(json.contains("\"subject\":\"net \\\"q\\\"\""));
        assert!(json.contains("\\\\b\\n"));
        assert!(json.contains("\"errors\":0"));
        assert!(json.contains("\"warnings\":1"));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
    }
}
