//! Rule-based structural analysis ("lint") for every IR in the workspace.
//!
//! PR 1's equivalence checker catches functional corruption only after the
//! fact, by simulation or BDDs. Most of the bug class it was built for —
//! duplicate fanin pins resurrecting contradictory cubes, dangling fanout
//! links, dominated points on a power-delay curve — is detectable
//! *structurally*, in linear time, with no reference network. This crate
//! is that detector: a registry of rules with stable ids and severities,
//! one analysis entry point per IR:
//!
//! * [`lint_network`] — [`netlist::Network`]: acyclicity (with the cycle
//!   path named), fanin/fanout link symmetry, duplicate fanin pins,
//!   dangling and unreachable logic, non-minimal covers, width mismatches,
//!   name-map consistency.
//! * [`lint_mapped`] — [`lowpower_core::map::MappedNetwork`]: reference
//!   well-formedness (topological instance order), pin arity against the
//!   library, probability sanity, load versus pin `max_load`.
//! * [`lint_decomposed`] — [`lowpower_core::decomp::DecomposedNetwork`]:
//!   2-input gate arity, height bounds honored when bounded decomposition
//!   was requested (paper §2.3), recorded depth consistency — plus all
//!   network rules on the underlying network.
//! * [`lint_curve`] — [`lowpower_core::map::Curve`]: the §3.1
//!   non-inferiority invariant (arrivals strictly increasing, costs
//!   strictly decreasing, finite), shared with `Curve::finalize`'s debug
//!   assertion.
//! * [`lint_library`] — [`genlib::Library`]: expression/pin arity,
//!   non-negative electrical values, inverter availability.
//! * [`lint_activity`] — [`activity::ActivityMap`]: probabilities in
//!   [0, 1] and switching within the transition-model bound
//!   0 ≤ E ≤ 2p(1−p) for static CMOS (paper eqs. 10–11).
//!
//! The [`certify`] module wraps `logicopt` passes and network
//! decomposition with before/after lint runs in debug builds, so a pass
//! that corrupts an invariant fails loudly at its source instead of three
//! stages later.

#![warn(missing_docs)]

pub mod certify;
pub mod diag;

mod activity_rules;
mod curve_rules;
mod decomp_rules;
mod library_rules;
mod mapped_rules;
mod network_rules;

pub use activity_rules::{lint_activity, lint_activity_slices};
pub use curve_rules::lint_curve;
pub use decomp_rules::lint_decomposed;
pub use diag::{Diagnostic, LintReport, Provenance, Severity};
pub use library_rules::lint_library;
pub use mapped_rules::lint_mapped;
pub use network_rules::lint_network;

use std::collections::BTreeSet;
use std::str::FromStr;

/// Which IR a rule analyzes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrTarget {
    /// [`netlist::Network`].
    Network,
    /// [`lowpower_core::map::MappedNetwork`].
    Mapped,
    /// [`lowpower_core::decomp::DecomposedNetwork`].
    Decomp,
    /// [`lowpower_core::map::Curve`].
    Curve,
    /// [`genlib::Library`].
    Library,
    /// [`activity::ActivityMap`].
    Activity,
}

impl std::fmt::Display for IrTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IrTarget::Network => "network",
            IrTarget::Mapped => "mapped",
            IrTarget::Decomp => "decomp",
            IrTarget::Curve => "curve",
            IrTarget::Library => "library",
            IrTarget::Activity => "activity",
        })
    }
}

/// A registered rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable id, e.g. `NET003`. Never renumbered.
    pub id: &'static str,
    /// Default severity.
    pub severity: Severity,
    /// IR the rule analyzes.
    pub target: IrTarget,
    /// One-line description.
    pub summary: &'static str,
}

/// Every rule this crate knows, in id order. The table is the single
/// source of truth for ids and default severities; analysis code looks
/// severities up here.
pub const RULES: &[Rule] = &[
    Rule {
        id: "NET001",
        severity: Severity::Error,
        target: IrTarget::Network,
        summary: "network contains a combinational cycle (path reported)",
    },
    Rule {
        id: "NET002",
        severity: Severity::Error,
        target: IrTarget::Network,
        summary: "fanin/fanout links are asymmetric or reference dead nodes",
    },
    Rule {
        id: "NET003",
        severity: Severity::Error,
        target: IrTarget::Network,
        summary: "a node lists the same fanin at two SOP positions",
    },
    Rule {
        id: "NET004",
        severity: Severity::Warn,
        target: IrTarget::Network,
        summary: "dangling logic node: no fanouts and not a primary output",
    },
    Rule {
        id: "NET005",
        severity: Severity::Warn,
        target: IrTarget::Network,
        summary: "SOP cover is not single-cube-containment minimal",
    },
    Rule {
        id: "NET006",
        severity: Severity::Warn,
        target: IrTarget::Network,
        summary: "logic node unreachable from every primary output",
    },
    Rule {
        id: "NET007",
        severity: Severity::Error,
        target: IrTarget::Network,
        summary: "SOP width differs from the fanin count",
    },
    Rule {
        id: "NET008",
        severity: Severity::Error,
        target: IrTarget::Network,
        summary: "name map or output list references a missing node",
    },
    Rule {
        id: "MAP001",
        severity: Severity::Error,
        target: IrTarget::Mapped,
        summary: "instance input references a later instance, itself, or an invalid id",
    },
    Rule {
        id: "MAP002",
        severity: Severity::Error,
        target: IrTarget::Mapped,
        summary: "instance pin count differs from its library gate's pin count",
    },
    Rule {
        id: "MAP003",
        severity: Severity::Warn,
        target: IrTarget::Mapped,
        summary: "instance drives no other instance and no primary output",
    },
    Rule {
        id: "MAP004",
        severity: Severity::Error,
        target: IrTarget::Mapped,
        summary: "signal probability outside [0, 1] or probability table misaligned",
    },
    Rule {
        id: "MAP005",
        severity: Severity::Warn,
        target: IrTarget::Mapped,
        summary: "output load exceeds the driving gate's max_load rating",
    },
    Rule {
        id: "MAP006",
        severity: Severity::Error,
        target: IrTarget::Mapped,
        summary: "duplicate net name among primary inputs and instances",
    },
    Rule {
        id: "DEC001",
        severity: Severity::Error,
        target: IrTarget::Decomp,
        summary: "decomposed node has more than 2 fanins",
    },
    Rule {
        id: "DEC002",
        severity: Severity::Warn,
        target: IrTarget::Decomp,
        summary: "node root exceeds its applied height bound (§2.3)",
    },
    Rule {
        id: "DEC003",
        severity: Severity::Error,
        target: IrTarget::Decomp,
        summary: "recorded depth differs from the recomputed network depth",
    },
    Rule {
        id: "CRV001",
        severity: Severity::Error,
        target: IrTarget::Curve,
        summary: "curve arrivals are not strictly increasing",
    },
    Rule {
        id: "CRV002",
        severity: Severity::Error,
        target: IrTarget::Curve,
        summary: "curve costs are not strictly decreasing (dominated point)",
    },
    Rule {
        id: "CRV003",
        severity: Severity::Error,
        target: IrTarget::Curve,
        summary: "curve point has a non-finite arrival, cost or drive",
    },
    Rule {
        id: "LIB001",
        severity: Severity::Error,
        target: IrTarget::Library,
        summary: "gate function references a variable beyond its pin count",
    },
    Rule {
        id: "LIB002",
        severity: Severity::Error,
        target: IrTarget::Library,
        summary: "gate has a negative or non-finite area/cap/delay value",
    },
    Rule {
        id: "LIB003",
        severity: Severity::Warn,
        target: IrTarget::Library,
        summary: "library has no inverter (mapping will fail)",
    },
    Rule {
        id: "ACT001",
        severity: Severity::Error,
        target: IrTarget::Activity,
        summary: "signal probability outside [0, 1]",
    },
    Rule {
        id: "ACT002",
        severity: Severity::Error,
        target: IrTarget::Activity,
        summary: "switching activity outside the transition-model bound",
    },
];

/// Look up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Default severity of a rule. Internal helper for the analysis modules.
///
/// # Panics
/// Panics on an id missing from [`RULES`] — that is a bug in this crate.
pub(crate) fn severity_of(id: &str) -> Severity {
    rule(id)
        .unwrap_or_else(|| panic!("unregistered lint rule id {id}"))
        .severity
}

/// Per-run rule selection. All rules are enabled by default.
#[derive(Debug, Clone, Default)]
pub struct LintConfig {
    disabled: BTreeSet<&'static str>,
}

impl LintConfig {
    /// All rules enabled.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Disable a rule by id. Unknown ids are ignored (forward
    /// compatibility with configs naming rules from newer versions).
    pub fn disable(mut self, id: &str) -> LintConfig {
        if let Some(r) = rule(id) {
            self.disabled.insert(r.id);
        }
        self
    }

    /// Is the rule enabled in this run?
    pub fn enabled(&self, id: &str) -> bool {
        !self.disabled.contains(id)
    }
}

/// How lint findings gate a flow run, mirroring `verify::VerifyLevel`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LintLevel {
    /// No linting.
    #[default]
    Off,
    /// Lint and report findings, but never fail.
    Check,
    /// Lint; any `Error`-severity finding fails the flow.
    Deny,
}

impl FromStr for LintLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<LintLevel, String> {
        match s {
            "off" => Ok(LintLevel::Off),
            "check" => Ok(LintLevel::Check),
            "deny" => Ok(LintLevel::Deny),
            other => Err(format!(
                "unknown lint level `{other}` (expected off|check|deny)"
            )),
        }
    }
}

impl std::fmt::Display for LintLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LintLevel::Off => "off",
            LintLevel::Check => "check",
            LintLevel::Deny => "deny",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_unique_and_sorted_by_family() {
        let mut seen = BTreeSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(!r.summary.is_empty());
        }
    }

    #[test]
    fn lookup_and_config() {
        assert_eq!(rule("NET001").unwrap().severity, Severity::Error);
        assert!(rule("XXX999").is_none());
        let cfg = LintConfig::new().disable("NET004").disable("bogus");
        assert!(!cfg.enabled("NET004"));
        assert!(cfg.enabled("NET001"));
    }

    #[test]
    fn lint_level_parses() {
        assert_eq!("deny".parse::<LintLevel>().unwrap(), LintLevel::Deny);
        assert_eq!("check".parse::<LintLevel>().unwrap(), LintLevel::Check);
        assert_eq!("off".parse::<LintLevel>().unwrap(), LintLevel::Off);
        assert!("loud".parse::<LintLevel>().is_err());
    }
}
