//! `ACT*` rules over [`activity::ActivityMap`] annotations.
//!
//! The paper bounds per-node switching activity by the transition model
//! (eqs. 10–11): static CMOS toggles at most `2p(1−p)` per cycle, a
//! precharged p-type domino gate at most `p`, an n-type one at most
//! `1−p`. Activities above the bound (or below zero) mean the power cost
//! driving decomposition and mapping is garbage.

use crate::diag::{LintReport, Provenance};
use crate::{severity_of, LintConfig};
use activity::{ActivityMap, TransitionModel};
use netlist::Network;

/// Absolute slack allowed over the model bound, absorbing f64 rounding in
/// BDD probability computation.
const TOL: f64 = 1e-9;

/// Model-specific upper bound on switching activity for a signal with
/// probability `p`.
fn bound(model: TransitionModel, p: f64) -> f64 {
    match model {
        TransitionModel::StaticCmos => 2.0 * p * (1.0 - p),
        TransitionModel::DominoP => p,
        TransitionModel::DominoN => 1.0 - p,
    }
}

/// Check one (probability, switching) pair; push findings into `report`.
fn check_pair(
    p: f64,
    e: f64,
    model: TransitionModel,
    provenance: &Provenance,
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    if cfg.enabled("ACT001") && (!(0.0..=1.0).contains(&p) || p.is_nan()) {
        report.push(
            "ACT001",
            severity_of("ACT001"),
            provenance.clone(),
            format!("signal probability {p} outside [0, 1]"),
        );
        return; // the bound below is meaningless for an invalid p
    }
    if cfg.enabled("ACT002") {
        let max = bound(model, p);
        if e.is_nan() || e < -TOL || e > max + TOL {
            report.push(
                "ACT002",
                severity_of("ACT002"),
                provenance.clone(),
                format!("switching {e} outside the {model:?} bound [0, {max:.6}] for p = {p}"),
            );
        }
    }
}

/// Run all `ACT*` rules over a network's activity annotations.
pub fn lint_activity(net: &Network, act: &ActivityMap, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::new(format!("activity of `{}`", net.name()));
    for id in net.node_ids() {
        let node = net.try_node(id).expect("live id");
        let provenance = Provenance::node(node.name(), id.index());
        check_pair(
            act.p_one(id),
            act.switching(id),
            act.model(),
            &provenance,
            cfg,
            &mut report,
        );
    }
    report
}

/// Raw-slice entry point: lint parallel probability / switching arrays
/// under a model, without a network (indices stand in for node names).
/// Used by synthetic scenarios and the mutation tests, which need to
/// present inconsistent pairs that [`ActivityMap::from_p_one`] cannot
/// produce.
pub fn lint_activity_slices(
    p_one: &[f64],
    switching: &[f64],
    model: TransitionModel,
    cfg: &LintConfig,
) -> LintReport {
    let mut report = LintReport::new(format!("activity slices ({} entries)", p_one.len()));
    if p_one.len() != switching.len() {
        report.push(
            "ACT002",
            severity_of("ACT002"),
            Provenance::none(),
            format!(
                "{} probability value(s) but {} switching value(s)",
                p_one.len(),
                switching.len()
            ),
        );
    }
    for (i, (&p, &e)) in p_one.iter().zip(switching).enumerate() {
        let provenance = Provenance {
            node: None,
            id: Some(i),
            slot: None,
        };
        check_pair(p, e, model, &provenance, cfg, &mut report);
    }
    report
}
