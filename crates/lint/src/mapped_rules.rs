//! `MAP*` rules over [`lowpower_core::map::MappedNetwork`].

use crate::diag::{LintReport, Provenance};
use crate::{severity_of, LintConfig};
use genlib::Library;
use lowpower_core::map::mapper::{MappedNetwork, NetRef};
use std::collections::HashMap;

/// Run all `MAP*` rules over a mapped netlist.
///
/// `po_load` is the capacitive load assumed at every primary output (the
/// flow's `FlowConfig::po_load`), used by the MAP005 load check.
pub fn lint_mapped(
    mapped: &MappedNetwork,
    lib: &Library,
    po_load: f64,
    cfg: &LintConfig,
) -> LintReport {
    let mut report = LintReport::new("mapped netlist".to_string());
    check_refs(mapped, cfg, &mut report);
    check_pin_arity(mapped, lib, cfg, &mut report);
    check_dead_instances(mapped, cfg, &mut report);
    check_probabilities(mapped, cfg, &mut report);
    check_loads(mapped, lib, po_load, cfg, &mut report);
    check_duplicate_names(mapped, cfg, &mut report);
    report
}

/// Is a reference resolvable *before* instance `at` (instances are stored
/// in topological order: drivers strictly precede consumers)?
fn ref_ok(r: NetRef, at: usize, mapped: &MappedNetwork) -> bool {
    match r {
        NetRef::Pi(k) => k < mapped.pi_names.len(),
        NetRef::Inst(j) => j < at,
    }
}

/// MAP001: instance inputs may only reference earlier instances or valid
/// primary inputs; outputs may reference any valid instance or PI.
fn check_refs(mapped: &MappedNetwork, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("MAP001") {
        return;
    }
    let sev = severity_of("MAP001");
    for (i, inst) in mapped.instances.iter().enumerate() {
        for (slot, &r) in inst.inputs.iter().enumerate() {
            if !ref_ok(r, i, mapped) {
                let what = match r {
                    NetRef::Pi(k) => {
                        format!("primary input #{k} (only {} exist)", mapped.pi_names.len())
                    }
                    NetRef::Inst(j) if j == i => "itself".to_string(),
                    NetRef::Inst(j) => format!("instance #{j} (not before #{i})"),
                };
                report.push(
                    "MAP001",
                    sev,
                    Provenance::slot(inst.name.clone(), i, slot),
                    format!("input references {what}; instances must be topologically ordered"),
                );
            }
        }
    }
    for (name, &r) in mapped.outputs.iter().map(|(n, r)| (n, r)) {
        if !ref_ok(r, mapped.instances.len(), mapped) {
            report.push(
                "MAP001",
                sev,
                Provenance {
                    node: Some(name.clone()),
                    id: None,
                    slot: None,
                },
                format!("primary output `{name}` references a nonexistent net"),
            );
        }
    }
}

/// MAP002: the instance's input count must equal its gate's pin count, and
/// the gate index must be valid.
fn check_pin_arity(
    mapped: &MappedNetwork,
    lib: &Library,
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    if !cfg.enabled("MAP002") {
        return;
    }
    let sev = severity_of("MAP002");
    for (i, inst) in mapped.instances.iter().enumerate() {
        match lib.gates().get(inst.gate) {
            None => report.push(
                "MAP002",
                sev,
                Provenance::node(inst.name.clone(), i),
                format!(
                    "gate index {} is out of range (library has {} gates)",
                    inst.gate,
                    lib.gates().len()
                ),
            ),
            Some(g) if g.inputs().len() != inst.inputs.len() => report.push(
                "MAP002",
                sev,
                Provenance::node(inst.name.clone(), i),
                format!(
                    "bound to `{}` with {} pin(s) but wired with {} input(s)",
                    g.name(),
                    g.inputs().len(),
                    inst.inputs.len()
                ),
            ),
            Some(_) => {}
        }
    }
}

/// MAP003: every instance should drive another instance or a primary
/// output.
fn check_dead_instances(mapped: &MappedNetwork, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("MAP003") {
        return;
    }
    let mut used = vec![false; mapped.instances.len()];
    for inst in &mapped.instances {
        for &r in &inst.inputs {
            if let NetRef::Inst(j) = r {
                if j < used.len() {
                    used[j] = true;
                }
            }
        }
    }
    for (_, r) in &mapped.outputs {
        if let NetRef::Inst(j) = *r {
            if j < used.len() {
                used[j] = true;
            }
        }
    }
    for (i, inst) in mapped.instances.iter().enumerate() {
        if !used[i] {
            report.push(
                "MAP003",
                severity_of("MAP003"),
                Provenance::node(inst.name.clone(), i),
                "drives no instance and no primary output",
            );
        }
    }
}

/// MAP004: probabilities must lie in [0, 1] and the PI probability table
/// must align with the PI name table.
fn check_probabilities(mapped: &MappedNetwork, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("MAP004") {
        return;
    }
    let sev = severity_of("MAP004");
    if mapped.pi_p_one.len() != mapped.pi_names.len() {
        report.push(
            "MAP004",
            sev,
            Provenance::none(),
            format!(
                "{} primary input name(s) but {} probability value(s)",
                mapped.pi_names.len(),
                mapped.pi_p_one.len()
            ),
        );
    }
    for (k, (&p, name)) in mapped.pi_p_one.iter().zip(&mapped.pi_names).enumerate() {
        if !(0.0..=1.0).contains(&p) || p.is_nan() {
            report.push(
                "MAP004",
                sev,
                Provenance::node(name.clone(), k),
                format!("primary input probability {p} outside [0, 1]"),
            );
        }
    }
    for (i, inst) in mapped.instances.iter().enumerate() {
        if !(0.0..=1.0).contains(&inst.p_one) || inst.p_one.is_nan() {
            report.push(
                "MAP004",
                sev,
                Provenance::node(inst.name.clone(), i),
                format!("signal probability {} outside [0, 1]", inst.p_one),
            );
        }
    }
}

/// MAP005: the load on each instance output (sum of driven pin caps plus
/// `po_load` per primary output driven) must not exceed the driving gate's
/// tightest pin `max_load` rating.
fn check_loads(
    mapped: &MappedNetwork,
    lib: &Library,
    po_load: f64,
    cfg: &LintConfig,
    report: &mut LintReport,
) {
    if !cfg.enabled("MAP005") {
        return;
    }
    let mut load = vec![0.0f64; mapped.instances.len()];
    for inst in &mapped.instances {
        let Some(gate) = lib.gates().get(inst.gate) else {
            continue; // MAP002 reports the broken gate index
        };
        for (slot, &r) in inst.inputs.iter().enumerate() {
            if let (NetRef::Inst(j), Some(pin)) = (r, gate.pins().get(slot)) {
                if j < load.len() {
                    load[j] += pin.input_cap;
                }
            }
        }
    }
    for (_, r) in &mapped.outputs {
        if let NetRef::Inst(j) = *r {
            if j < load.len() {
                load[j] += po_load;
            }
        }
    }
    for (i, inst) in mapped.instances.iter().enumerate() {
        let Some(gate) = lib.gates().get(inst.gate) else {
            continue;
        };
        let max_load = gate
            .pins()
            .iter()
            .map(|p| p.max_load)
            .fold(f64::INFINITY, f64::min);
        if max_load.is_finite() && load[i] > max_load + 1e-9 {
            report.push(
                "MAP005",
                severity_of("MAP005"),
                Provenance::node(inst.name.clone(), i),
                format!(
                    "output load {:.3} exceeds `{}` max_load {:.3}",
                    load[i],
                    gate.name(),
                    max_load
                ),
            );
        }
    }
}

/// MAP006: net names (primary inputs plus instance outputs) must be unique.
fn check_duplicate_names(mapped: &MappedNetwork, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("MAP006") {
        return;
    }
    let mut seen: HashMap<&str, String> = HashMap::new();
    let names = mapped
        .pi_names
        .iter()
        .enumerate()
        .map(|(k, n)| (n.as_str(), format!("primary input #{k}")))
        .chain(
            mapped
                .instances
                .iter()
                .enumerate()
                .map(|(i, inst)| (inst.name.as_str(), format!("instance #{i}"))),
        );
    for (name, what) in names {
        if let Some(prev) = seen.insert(name, what.clone()) {
            report.push(
                "MAP006",
                severity_of("MAP006"),
                Provenance {
                    node: Some(name.to_string()),
                    id: None,
                    slot: None,
                },
                format!("net name `{name}` used by both {prev} and {what}"),
            );
        }
    }
}
