//! `DEC*` rules over [`lowpower_core::decomp::DecomposedNetwork`].

use crate::diag::{LintReport, Provenance};
use crate::{lint_network, severity_of, LintConfig};
use lowpower_core::decomp::DecomposedNetwork;

/// Run all `DEC*` rules over a decomposition result, plus every `NET*`
/// rule over the underlying network (a decomposed network is still a
/// network and must satisfy all its invariants).
pub fn lint_decomposed(decomp: &DecomposedNetwork, cfg: &LintConfig) -> LintReport {
    let net = &decomp.network;
    let mut report = LintReport::new(format!("decomposition `{}`", net.name()));
    report.merge(lint_network(net, cfg));

    // DEC001: technology decomposition emits 2-input gates only (plus
    // inverters and width-0 constants).
    if cfg.enabled("DEC001") {
        for id in net.logic_ids() {
            let node = net.try_node(id).expect("live id");
            if node.fanins().len() > 2 {
                report.push(
                    "DEC001",
                    severity_of("DEC001"),
                    Provenance::node(node.name(), id.index()),
                    format!(
                        "{} fanins; decomposition must emit gates of arity <= 2",
                        node.fanins().len()
                    ),
                );
            }
        }
    }

    // DEC002: when bounded decomposition applied a height bound to a node
    // (§2.3), the node root's recorded arrival level must honor it.
    if cfg.enabled("DEC002") {
        for (name, bound) in &decomp.applied_bounds {
            let Some(&(_, height, _)) = decomp.node_heights.iter().find(|(n, _, _)| n == name)
            else {
                continue;
            };
            if height > *bound {
                report.push(
                    "DEC002",
                    severity_of("DEC002"),
                    Provenance {
                        node: Some(name.clone()),
                        id: None,
                        slot: None,
                    },
                    format!("root at level {height} exceeds the applied bound {bound}"),
                );
            }
        }
    }

    // DEC003: the recorded depth must match a fresh recomputation. Skipped
    // on cyclic networks (NET001 already fired; `depth` would panic).
    if cfg.enabled("DEC003") && net.find_cycle().is_none() {
        let recomputed = netlist::traversal::depth(net);
        if decomp.depth != recomputed {
            report.push(
                "DEC003",
                severity_of("DEC003"),
                Provenance::none(),
                format!(
                    "recorded depth {} but the network's depth is {recomputed}",
                    decomp.depth
                ),
            );
        }
    }

    report
}
