//! `CRV*` rules over [`lowpower_core::map::Curve`].
//!
//! The predicate itself lives in `Curve::invariant_defects` — shared with
//! the `debug_assert!` inside `Curve::finalize` so the lint rule and the
//! runtime assertion can never drift apart. This module only maps defects
//! to rule ids and provenance.

use crate::diag::{LintReport, Provenance};
use crate::{severity_of, LintConfig};
use lowpower_core::map::{Curve, CurveDefect};

/// Run all `CRV*` rules over a finalized power-delay curve.
pub fn lint_curve(curve: &Curve, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::new(format!("curve ({} points)", curve.points().len()));
    for defect in curve.invariant_defects() {
        let (rule, point, message) = match defect {
            CurveDefect::ArrivalNotIncreasing { point } => (
                "CRV001",
                point,
                format!(
                    "arrival {} at point {point} is not greater than {} at point {}",
                    curve.points()[point].arrival,
                    curve.points()[point - 1].arrival,
                    point - 1
                ),
            ),
            CurveDefect::CostNotDecreasing { point } => (
                "CRV002",
                point,
                format!(
                    "cost {} at point {point} is not below {} at point {} — the point is dominated",
                    curve.points()[point].cost,
                    curve.points()[point - 1].cost,
                    point - 1
                ),
            ),
            CurveDefect::NonFinite { point } => {
                let p = &curve.points()[point];
                (
                    "CRV003",
                    point,
                    format!(
                        "non-finite field at point {point}: arrival {}, cost {}, drive {}",
                        p.arrival, p.cost, p.drive
                    ),
                )
            }
        };
        if cfg.enabled(rule) {
            report.push(
                rule,
                severity_of(rule),
                Provenance {
                    node: None,
                    id: Some(point),
                    slot: None,
                },
                message,
            );
        }
    }
    report
}
