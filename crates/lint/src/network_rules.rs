//! `NET*` rules over [`netlist::Network`].
//!
//! Every rule here must be robust to *corrupted* networks: no
//! `Network::node` (panics on dead ids), no `topo_order` (trusts fanout
//! symmetry). Structure is probed through `try_node` and fanin-only walks.

use crate::diag::{LintReport, Provenance};
use crate::{severity_of, LintConfig};
use netlist::{Network, NodeId};

/// Run all `NET*` rules over a network.
pub fn lint_network(net: &Network, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::new(format!("network `{}`", net.name()));
    check_cycles(net, cfg, &mut report);
    check_link_symmetry(net, cfg, &mut report);
    check_duplicate_fanins(net, cfg, &mut report);
    check_dangling(net, cfg, &mut report);
    check_cover_minimality(net, cfg, &mut report);
    check_reachability(net, cfg, &mut report);
    check_widths(net, cfg, &mut report);
    check_name_map(net, cfg, &mut report);
    report
}

/// NET001: acyclicity, reporting the full cycle path.
fn check_cycles(net: &Network, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("NET001") {
        return;
    }
    if let Some(cycle) = net.find_cycle() {
        let names: Vec<&str> = cycle
            .iter()
            .filter_map(|&id| net.try_node(id).map(|n| n.name()))
            .collect();
        let head = cycle.first().map_or(0, |id| id.index());
        report.push(
            "NET001",
            severity_of("NET001"),
            Provenance::node(names.first().copied().unwrap_or("?"), head),
            format!("combinational cycle: {}", names.join(" -> ")),
        );
    }
}

/// NET002: every fanin edge has a matching fanout edge and vice versa, and
/// neither side references a dead or out-of-range node.
fn check_link_symmetry(net: &Network, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("NET002") {
        return;
    }
    let sev = severity_of("NET002");
    for id in net.node_ids() {
        let node = net.try_node(id).expect("live id from node_ids");
        for (slot, &f) in node.fanins().iter().enumerate() {
            match net.try_node(f) {
                None => report.push(
                    "NET002",
                    sev,
                    Provenance::slot(node.name(), id.index(), slot),
                    format!("fanin slot {slot} references a dead or missing node"),
                ),
                Some(src) if !src.fanouts().contains(&id) => report.push(
                    "NET002",
                    sev,
                    Provenance::slot(node.name(), id.index(), slot),
                    format!(
                        "fanin `{}` has no matching fanout edge back to `{}`",
                        src.name(),
                        node.name()
                    ),
                ),
                Some(_) => {}
            }
        }
        for &fo in node.fanouts() {
            match net.try_node(fo) {
                None => report.push(
                    "NET002",
                    sev,
                    Provenance::node(node.name(), id.index()),
                    "fanout list references a dead or missing node".to_string(),
                ),
                Some(dst) if !dst.fanins().contains(&id) => report.push(
                    "NET002",
                    sev,
                    Provenance::node(node.name(), id.index()),
                    format!(
                        "fanout edge to `{}` has no matching fanin entry",
                        dst.name()
                    ),
                ),
                Some(_) => {}
            }
        }
    }
}

/// NET003: no node may list the same fanin at two SOP positions — the
/// construction hole behind the PR-1 `Cube::remap` bug.
fn check_duplicate_fanins(net: &Network, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("NET003") {
        return;
    }
    for id in net.node_ids() {
        let node = net.try_node(id).expect("live id");
        let fanins = node.fanins();
        for (slot, f) in fanins.iter().enumerate() {
            if let Some(first) = fanins[..slot].iter().position(|g| g == f) {
                let fanin_name = net.try_node(*f).map_or("?", |n| n.name());
                report.push(
                    "NET003",
                    severity_of("NET003"),
                    Provenance::slot(node.name(), id.index(), slot),
                    format!("fanin `{fanin_name}` appears at SOP positions {first} and {slot}"),
                );
            }
        }
    }
}

/// NET004: logic nodes with no fanouts that are not primary outputs.
fn check_dangling(net: &Network, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("NET004") {
        return;
    }
    for id in net.logic_ids() {
        let node = net.try_node(id).expect("live id");
        let is_po = net.outputs().iter().any(|(_, o)| *o == id);
        if node.fanouts().is_empty() && !is_po {
            report.push(
                "NET004",
                severity_of("NET004"),
                Provenance::node(node.name(), id.index()),
                "dangling: drives nothing and is not a primary output",
            );
        }
    }
}

/// NET005: the cover should be single-cube-containment minimal — no
/// duplicate or contained cubes.
fn check_cover_minimality(net: &Network, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("NET005") {
        return;
    }
    for id in net.logic_ids() {
        let node = net.try_node(id).expect("live id");
        let Some(sop) = node.sop() else { continue };
        let mut minimal = sop.clone();
        minimal.make_scc_minimal();
        if minimal.cube_count() != sop.cube_count() {
            report.push(
                "NET005",
                severity_of("NET005"),
                Provenance::node(node.name(), id.index()),
                format!(
                    "cover is not SCC-minimal: {} cube(s), {} after containment removal",
                    sop.cube_count(),
                    minimal.cube_count()
                ),
            );
        }
    }
}

/// NET006: logic nodes not in the transitive fanin of any primary output.
///
/// Walks fanin edges only (no reliance on fanout symmetry).
fn check_reachability(net: &Network, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("NET006") {
        return;
    }
    let mut reachable = vec![false; net.arena_len()];
    let mut stack: Vec<NodeId> = Vec::new();
    for (_, o) in net.outputs() {
        if net.try_node(*o).is_some() && !reachable[o.index()] {
            reachable[o.index()] = true;
            stack.push(*o);
        }
    }
    while let Some(id) = stack.pop() {
        let Some(node) = net.try_node(id) else {
            continue;
        };
        for &f in node.fanins() {
            if f.index() < reachable.len() && !reachable[f.index()] && net.try_node(f).is_some() {
                reachable[f.index()] = true;
                stack.push(f);
            }
        }
    }
    for id in net.logic_ids() {
        if !reachable[id.index()] {
            let node = net.try_node(id).expect("live id");
            report.push(
                "NET006",
                severity_of("NET006"),
                Provenance::node(node.name(), id.index()),
                "unreachable from every primary output",
            );
        }
    }
}

/// NET007: SOP width must equal the fanin count.
fn check_widths(net: &Network, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("NET007") {
        return;
    }
    for id in net.logic_ids() {
        let node = net.try_node(id).expect("live id");
        let Some(sop) = node.sop() else { continue };
        if sop.width() != node.fanins().len() {
            report.push(
                "NET007",
                severity_of("NET007"),
                Provenance::node(node.name(), id.index()),
                format!(
                    "SOP width {} but {} fanin(s)",
                    sop.width(),
                    node.fanins().len()
                ),
            );
        }
    }
}

/// NET008: the name map must resolve every live node's name back to it,
/// and the output list must reference live nodes.
fn check_name_map(net: &Network, cfg: &LintConfig, report: &mut LintReport) {
    if !cfg.enabled("NET008") {
        return;
    }
    let sev = severity_of("NET008");
    for id in net.node_ids() {
        let node = net.try_node(id).expect("live id");
        if net.find(node.name()) != Some(id) {
            report.push(
                "NET008",
                sev,
                Provenance::node(node.name(), id.index()),
                "name map does not resolve this node's name back to it",
            );
        }
    }
    for (name, o) in net.outputs() {
        if net.try_node(*o).is_none() {
            report.push(
                "NET008",
                sev,
                Provenance::node(name.clone(), o.index()),
                format!("primary output `{name}` references a dead or missing node"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{parse_blif, Sop};

    fn clean_net() -> Network {
        parse_blif(
            ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
             .names x c f\n10 1\n01 1\n.end\n",
        )
        .unwrap()
        .network
    }

    #[test]
    fn clean_network_is_clean() {
        let report = lint_network(&clean_net(), &LintConfig::new());
        assert!(report.is_clean(), "{}", report.render_text());
    }

    #[test]
    fn disabled_rule_does_not_fire() {
        let mut net = clean_net();
        let a = net.find("a").unwrap();
        let y = net
            .add_logic("dangling", vec![a], Sop::parse(1, &["1"]).unwrap())
            .unwrap();
        // `dangling` has no fanouts and is not a PO: NET004 + NET006 fire.
        let full = lint_network(&net, &LintConfig::new());
        assert_eq!(full.by_rule("NET004").count(), 1);
        assert_eq!(full.by_rule("NET006").count(), 1);
        let cfg = LintConfig::new().disable("NET004").disable("NET006");
        assert!(lint_network(&net, &cfg).is_clean());
        let _ = y;
    }
}
