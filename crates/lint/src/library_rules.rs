//! `LIB*` rules over [`genlib::Library`].

use crate::diag::{LintReport, Provenance};
use crate::{severity_of, LintConfig};
use genlib::{Expr, Library};

/// Run all `LIB*` rules over a gate library.
pub fn lint_library(lib: &Library, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::new(format!("library `{}`", lib.name()));

    for (gi, gate) in lib.gates().iter().enumerate() {
        // LIB001: the function may only reference declared inputs, and
        // there must be exactly one pin record per input.
        if cfg.enabled("LIB001") {
            if gate.inputs().len() != gate.pins().len() {
                report.push(
                    "LIB001",
                    severity_of("LIB001"),
                    Provenance::node(gate.name(), gi),
                    format!(
                        "{} input(s) but {} pin record(s)",
                        gate.inputs().len(),
                        gate.pins().len()
                    ),
                );
            }
            if let Some(var) = max_var(gate.function()) {
                if var >= gate.inputs().len() {
                    report.push(
                        "LIB001",
                        severity_of("LIB001"),
                        Provenance::node(gate.name(), gi),
                        format!(
                            "function references variable {var} but only {} input(s) exist",
                            gate.inputs().len()
                        ),
                    );
                }
            }
        }

        // LIB002: electrical values must be finite; area and caps
        // non-negative; delays non-negative.
        if cfg.enabled("LIB002") {
            let sev = severity_of("LIB002");
            if !gate.area().is_finite() || gate.area() < 0.0 {
                report.push(
                    "LIB002",
                    sev,
                    Provenance::node(gate.name(), gi),
                    format!("area {} is negative or non-finite", gate.area()),
                );
            }
            for (pi, pin) in gate.pins().iter().enumerate() {
                let fields = [
                    ("input_cap", pin.input_cap),
                    ("max_load", pin.max_load),
                    ("intrinsic", pin.intrinsic),
                    ("drive", pin.drive),
                ];
                for (what, v) in fields {
                    if !v.is_finite() || v < 0.0 {
                        report.push(
                            "LIB002",
                            sev,
                            Provenance::slot(gate.name(), gi, pi),
                            format!("pin `{}` {what} {v} is negative or non-finite", pin.name),
                        );
                    }
                }
            }
        }
    }

    // LIB003: mapping needs an inverter (decomposed literals are emitted
    // with explicit inversions); a library without one will fail with
    // `MapError::NoInverter`. `Gate::is_inverter` evaluates the function,
    // which panics when it references out-of-range variables (a LIB001
    // violation), so only well-formed gates are probed.
    if cfg.enabled("LIB003") {
        let has_inverter = lib.gates().iter().any(|g| {
            g.inputs().len() == 1
                && max_var(g.function()).is_none_or(|v| v < g.inputs().len())
                && g.is_inverter()
        });
        if !has_inverter {
            report.push(
                "LIB003",
                severity_of("LIB003"),
                Provenance::none(),
                "library has no inverter; technology mapping will fail",
            );
        }
    }

    report
}

/// Largest `Expr::Var` index in an expression, if any.
fn max_var(e: &Expr) -> Option<usize> {
    match e {
        Expr::Zero | Expr::One => None,
        Expr::Var(i) => Some(*i),
        Expr::Not(inner) => max_var(inner),
        Expr::And(kids) | Expr::Or(kids) => kids.iter().filter_map(max_var).max(),
    }
}
