//! Debug-build pass certifier.
//!
//! [`certified_pass`] wraps a network transformation with a lint run
//! before and after. In debug builds (tests, development) a pass that
//! *introduces* an `Error`-severity finding panics at its source with the
//! rendered report — instead of corrupting state that only fails three
//! stages later in the mapper. In release builds the wrappers compile to
//! plain calls with zero overhead.
//!
//! Drop-in wrappers are provided for every `logicopt` pass and for
//! network decomposition; `flow` routes through them.

#[cfg(debug_assertions)]
use crate::{lint_decomposed, lint_network, LintConfig};
use lowpower_core::decomp::{DecompOptions, DecomposedNetwork};
use netlist::Network;

/// Run `pass` over `net`, linting before and after in debug builds.
///
/// # Panics
/// In debug builds: panics if the input network already carries
/// `Error`-severity findings (the caller handed the pass a corrupt
/// network) or if the pass introduces any (the pass is buggy). Release
/// builds never lint and never panic.
pub fn certified_pass<R>(
    label: &'static str,
    net: &mut Network,
    pass: impl FnOnce(&mut Network) -> R,
) -> R {
    let _span = obs::span!(label);
    obs::counter!("logicopt.pass.runs");
    #[cfg(debug_assertions)]
    {
        let before = lint_network(net, &LintConfig::new());
        assert!(
            !before.has_errors(),
            "lint: input to pass `{label}` already violates invariants\n{}",
            before.render_text()
        );
    }
    let result = pass(net);
    #[cfg(debug_assertions)]
    {
        let after = lint_network(net, &LintConfig::new());
        assert!(
            !after.has_errors(),
            "lint: pass `{label}` introduced invariant violations\n{}",
            after.render_text()
        );
    }
    result
}

/// Certified [`logicopt::sweep`].
pub fn sweep(net: &mut Network) -> logicopt::sweep::SweepReport {
    certified_pass("sweep", net, logicopt::sweep::sweep)
}

/// Certified [`logicopt::simplify_network`].
pub fn simplify_network(net: &mut Network) -> logicopt::simplify::SimplifyReport {
    certified_pass("simplify", net, logicopt::simplify::simplify_network)
}

/// Certified [`logicopt::eliminate::eliminate`].
pub fn eliminate(net: &mut Network, threshold: i64) -> logicopt::eliminate::EliminateReport {
    certified_pass("eliminate", net, |n| {
        logicopt::eliminate::eliminate(n, threshold)
    })
}

/// Certified [`logicopt::extract`].
pub fn extract(net: &mut Network, max_rounds: usize) -> logicopt::ExtractReport {
    certified_pass("extract", net, |n| logicopt::extract(n, max_rounds))
}

/// Certified [`logicopt::rugged_like`] (the whole script as one unit; the
/// constituent passes re-lint individually when called through the
/// wrappers above). When a [`qor::Session`] is live on this thread, a QoR
/// snapshot is recorded after every constituent pass
/// ([`logicopt::rugged_like_with`]'s hook), labelled
/// `optimize.<round>.<pass>`, so each pass's power/area delta lands in the
/// ledger individually.
pub fn rugged_like(net: &mut Network) -> logicopt::ScriptReport {
    certified_pass("rugged_like", net, |n| {
        logicopt::rugged_like_with(n, &mut |label, after| {
            qor::snapshot_network(&format!("optimize.{label}"), after);
        })
    })
}

/// Certified [`lowpower_core::decomp::decompose_network`]: in debug
/// builds the input network is linted first and the full decomposition
/// result (network rules plus `DEC*` rules) afterwards.
///
/// # Panics
/// In debug builds, panics when either side carries `Error`-severity
/// findings; see [`certified_pass`].
pub fn decompose_network(net: &Network, opts: &DecompOptions) -> DecomposedNetwork {
    let _span = obs::span!("decompose");
    #[cfg(debug_assertions)]
    {
        let before = lint_network(net, &LintConfig::new());
        assert!(
            !before.has_errors(),
            "lint: input to decomposition already violates invariants\n{}",
            before.render_text()
        );
    }
    let decomposed = lowpower_core::decomp::decompose_network(net, opts);
    #[cfg(debug_assertions)]
    {
        let after = lint_decomposed(&decomposed, &LintConfig::new());
        assert!(
            !after.has_errors(),
            "lint: decomposition ({:?}) introduced invariant violations\n{}",
            opts.style,
            after.render_text()
        );
    }
    qor::snapshot_decomposed("decompose", &decomposed);
    decomposed
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;
    #[cfg(debug_assertions)]
    use netlist::Sop;

    fn net() -> Network {
        parse_blif(
            ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
             .names x c f\n10 1\n01 1\n.end\n",
        )
        .unwrap()
        .network
    }

    #[test]
    fn certified_passes_run_clean() {
        let mut n = net();
        rugged_like(&mut n);
        let mut n = net();
        sweep(&mut n);
        simplify_network(&mut n);
        eliminate(&mut n, -1);
        extract(&mut n, 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "introduced invariant violations")]
    fn certifier_catches_a_corrupting_pass() {
        let mut n = net();
        certified_pass("evil", &mut n, |n| {
            let x = n.find("x").unwrap();
            let a = n.find("a").unwrap();
            // Raw overwrite: duplicate fanin + broken fanout symmetry.
            n.corrupt_function_for_test(x, vec![a, a], Sop::parse(2, &["11"]).unwrap());
        });
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "already violates invariants")]
    fn certifier_rejects_corrupt_input() {
        let mut n = net();
        let x = n.find("x").unwrap();
        let a = n.find("a").unwrap();
        n.corrupt_function_for_test(x, vec![a, a], Sop::parse(2, &["11"]).unwrap());
        certified_pass("any", &mut n, |_| ());
    }
}
