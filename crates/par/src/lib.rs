//! Deterministic scoped-thread parallelism for the synthesis workspace.
//!
//! Registry thread pools are unavailable offline, so this crate provides
//! the small subset the workspace needs on top of [`std::thread::scope`]:
//!
//! * [`scope_map`] — map a function over a slice on `threads` workers with
//!   self-scheduled work pickup, returning results **in input order**;
//! * [`chunked_reduce`] — map over chunk indices in parallel, then fold the
//!   per-chunk accumulators **in chunk order**;
//! * [`split_ranges`] — partition an index space into contiguous ranges for
//!   chunk-level granularity control;
//! * [`split_seed`] — SplitMix64-derived per-chunk seeds from one master
//!   seed, so randomized kernels produce identical streams no matter how
//!   chunks are scheduled across threads.
//!
//! # Determinism contract
//!
//! Every function here guarantees that its *result* depends only on the
//! inputs — never on the thread count, the scheduling order, or timing.
//! Callers uphold their half by making the per-item work a pure function
//! of the item (seeding any randomness via [`split_seed`] from the item
//! index). Under that discipline, `threads = 1` and `threads = N` produce
//! bit-identical results, which `tests/par_determinism.rs` checks for the
//! whole flow.
//!
//! # Thread-count resolution
//!
//! [`thread_count`] resolves, in order: an explicit request (e.g. a
//! `--threads` flag), the `PAR_THREADS` environment variable, and the
//! machine's available parallelism.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolve a worker count: `requested` (if `Some` and non-zero), else the
/// `PAR_THREADS` environment variable (if set to a positive integer), else
/// [`std::thread::available_parallelism`], else 1.
pub fn thread_count(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        if n > 0 {
            return n;
        }
    }
    if let Ok(v) = std::env::var("PAR_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `threads` workers; `results[i]` is
/// `f(i, &items[i])` regardless of which worker computed it.
///
/// Workers self-schedule items through an atomic cursor, so an expensive
/// item does not serialize the rest of the slice behind it. With
/// `threads <= 1` (or fewer than two items) everything runs inline on the
/// caller's thread — no spawn overhead on single-core hosts.
///
/// # Panics
/// Propagates the first worker panic after all workers finish.
pub fn scope_map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    if threads <= 1 || n <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let workers = threads.min(n);
    // Carry any live obs session into the workers: each gets a per-thread
    // buffer, spliced back in spawn order by `fork.join()` so spans from
    // inside `f` always close into a well-formed tree. A no-op (one
    // atomic load) when nothing is recording.
    let fork = obs::fork(workers);
    let cursor = AtomicUsize::new(0);
    let mut harvest: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let fork = &fork;
                let cursor = &cursor;
                let f = &f;
                s.spawn(move || {
                    let _obs = fork.worker(w);
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            harvest.push(h.join().expect("worker panicked"));
        }
    });
    fork.join();
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    for (i, r) in harvest.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index computed exactly once"))
        .collect()
}

/// Map `chunk` over `0..chunks` in parallel, then fold the per-chunk
/// accumulators **in chunk order** with `fold`. Returns `None` when
/// `chunks == 0`.
///
/// The ordered fold is what makes floating-point accumulation (and any
/// other non-commutative combination) independent of the thread count.
pub fn chunked_reduce<A, M, F>(threads: usize, chunks: usize, chunk: M, mut fold: F) -> Option<A>
where
    A: Send,
    M: Fn(usize) -> A + Sync,
    F: FnMut(&mut A, A),
{
    let indices: Vec<usize> = (0..chunks).collect();
    let mut results = scope_map(threads, &indices, |_, &i| chunk(i)).into_iter();
    let mut acc = results.next()?;
    for a in results {
        fold(&mut acc, a);
    }
    Some(acc)
}

/// Partition `0..n` into at most `parts` contiguous, non-empty ranges of
/// near-equal length, in ascending order. Returns an empty vector for
/// `n == 0`.
pub fn split_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Derive an independent per-chunk seed from a master seed and a chunk
/// index (SplitMix64 finalizer over a golden-ratio index stride).
///
/// The scheme gives every chunk its own well-mixed stream: kernels seed a
/// fresh generator per chunk instead of sharing one sequential stream, so
/// the vectors a chunk sees depend only on `(master, index)` — not on how
/// many chunks ran before it on the same thread.
pub fn split_seed(master: u64, index: u64) -> u64 {
    let z = master.wrapping_add(index.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    splitmix64_finalize(z)
}

fn splitmix64_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_map_preserves_order() {
        let items: Vec<usize> = (0..257).collect();
        for threads in [1, 2, 4, 8] {
            let out = scope_map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 3
            });
            assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn scope_map_handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(scope_map(4, &empty, |_, &x| x).is_empty());
        assert_eq!(scope_map(4, &[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn scope_map_uneven_work_stays_ordered() {
        // Early items take longest: self-scheduling finishes them out of
        // order, but results must still land in input order.
        let items: Vec<u64> = (0..64).collect();
        let out = scope_map(4, &items, |_, &x| {
            if x < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x * x
        });
        assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn chunked_reduce_folds_in_chunk_order() {
        // Non-commutative fold (string concat) detects any reordering.
        for threads in [1, 3, 7] {
            let s = chunked_reduce(
                threads,
                9,
                |i| i.to_string(),
                |acc: &mut String, a| acc.push_str(&a),
            )
            .unwrap();
            assert_eq!(s, "012345678");
        }
        assert!(chunked_reduce(2, 0, |i| i, |_, _| ()).is_none());
    }

    #[test]
    fn split_ranges_covers_exactly() {
        for n in [0usize, 1, 5, 64, 100, 101] {
            for parts in [1usize, 2, 3, 7, 200] {
                let rs = split_ranges(n, parts);
                let total: usize = rs.iter().map(|r| r.len()).sum();
                assert_eq!(total, n);
                assert!(rs.iter().all(|r| !r.is_empty()));
                let mut expect = 0;
                for r in &rs {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                if n > 0 {
                    assert!(rs.len() <= parts.max(1));
                }
            }
        }
    }

    #[test]
    fn split_seed_distinct_and_stable() {
        let a = split_seed(42, 0);
        assert_eq!(a, split_seed(42, 0));
        assert_ne!(a, split_seed(42, 1));
        assert_ne!(a, split_seed(43, 0));
        // no trivial collisions over a small window
        let mut seen: Vec<u64> = (0..1000).map(|i| split_seed(0xC0FFEE, i)).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 1000);
    }

    #[test]
    fn thread_count_explicit_wins() {
        assert_eq!(thread_count(Some(3)), 3);
        assert!(thread_count(None) >= 1);
    }
}
