//! Workspace-local stand-in for `criterion`.
//!
//! Offline dependency resolution rules out the real crate. This shim keeps
//! the benches compiling and producing useful wall-clock numbers: each
//! benchmark warms up briefly, then runs batches until a time budget is
//! spent and reports the per-iteration mean and minimum. No statistics,
//! plots or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Runs one benchmark body repeatedly and records timings.
pub struct Bencher {
    mean: Duration,
    min: Duration,
    iters: u64,
}

/// Per-iteration time budget for measurement (after a short warm-up).
const MEASURE_BUDGET: Duration = Duration::from_millis(300);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

impl Bencher {
    fn run<O, F: FnMut() -> O>(mut f: F) -> Bencher {
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET || warm_iters == 0 {
            std::hint::black_box(f());
            warm_iters += 1;
        }
        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        let mut iters: u64 = 0;
        while total < MEASURE_BUDGET {
            let t = Instant::now();
            std::hint::black_box(f());
            let dt = t.elapsed();
            total += dt;
            min = min.min(dt);
            iters += 1;
        }
        Bencher {
            mean: total / iters.max(1) as u32,
            min,
            iters,
        }
    }

    /// Measure the closure. May be called at most once per benchmark body
    /// (later calls overwrite earlier measurements, as with criterion's
    /// sampling modes this is the common usage anyway).
    pub fn iter<O, F: FnMut() -> O>(&mut self, f: F) {
        let b = Bencher::run(f);
        self.mean = b.mean;
        self.min = b.min;
        self.iters = b.iters;
    }
}

fn report(path: &str, b: &Bencher) {
    println!(
        "bench {path:<55} mean {:>12?}  min {:>12?}  ({} iters)",
        b.mean, b.min, b.iters
    );
}

fn run_named<F: FnMut(&mut Bencher)>(path: &str, mut f: F) {
    let mut b = Bencher {
        mean: Duration::ZERO,
        min: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    report(path, &b);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; this shim is time-budgeted rather
    /// than sample-counted, so the value is ignored.
    pub fn sample_size(&mut self, _samples: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Benchmark a closure that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_named(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_named(&id.to_string(), f);
        self
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::new("sum", 64), &64u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter("x2").to_string(), "x2");
    }
}
