//! The finished-session [`Report`] and its three sinks.
//!
//! * [`Report::render_summary`] — human text: the span tree (sibling
//!   spans merged by name, with counts and wall times) plus top counters,
//!   gauges and histograms;
//! * [`Report::render_jsonl`] — one JSON object per event (`B`/`E`/
//!   `note`), ending in a single `snapshot` object with the aggregate
//!   metrics;
//! * [`Report::render_chrome`] — Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or <https://ui.perfetto.dev>.
//!
//! [`Report::snapshot_json`] renders the metrics snapshot alone; with
//! `with_timing = false` every wall-time field is omitted and the
//! remaining bytes are a pure function of the session's inputs.

use crate::json::escape_json;
use crate::metrics::Metrics;
use crate::span::{build_forest, flatten, Event, SpanNode, ThreadEvents};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Everything one session recorded.
#[derive(Debug)]
pub struct Report {
    root: ThreadEvents,
    /// Merged metrics (deterministic; see the crate docs).
    pub metrics: Metrics,
}

/// Per-path span aggregate: how often the path ran and for how long.
struct PathAgg {
    count: u64,
    total_ns: u64,
}

impl Report {
    pub(crate) fn new(root: ThreadEvents, metrics: Metrics) -> Report {
        Report { root, metrics }
    }

    /// Reconstruct the span forest (top-level spans with their nesting).
    ///
    /// # Errors
    /// Returns a description of the first unbalanced buffer — impossible
    /// through the guard API, and pinned by a proptest.
    pub fn tree(&self) -> Result<Vec<SpanNode>, String> {
        build_forest(&self.root)
    }

    /// Span aggregates keyed by `/`-joined name path (labels excluded, so
    /// paths — and their counts — are deterministic).
    fn span_aggregates(&self) -> Result<BTreeMap<String, PathAgg>, String> {
        fn walk(nodes: &[SpanNode], prefix: &str, agg: &mut BTreeMap<String, PathAgg>) {
            for n in nodes {
                let path = if prefix.is_empty() {
                    n.name.to_string()
                } else {
                    format!("{prefix}/{}", n.name)
                };
                let e = agg.entry(path.clone()).or_insert(PathAgg {
                    count: 0,
                    total_ns: 0,
                });
                e.count += 1;
                e.total_ns += n.duration_ns();
                walk(&n.children, &path, agg);
            }
        }
        let mut agg = BTreeMap::new();
        walk(&self.tree()?, "", &mut agg);
        Ok(agg)
    }

    /// The aggregate metrics snapshot as one JSON object.
    ///
    /// With `with_timing = false`, `total_ns` fields are omitted and the
    /// output is byte-identical across thread counts and repeated runs
    /// (the determinism contract enforced by `tests/obs_determinism.rs`).
    pub fn snapshot_json(&self, with_timing: bool) -> String {
        let mut s = String::from("{\"type\":\"snapshot\",\"counters\":{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{v}", escape_json(name));
        }
        s.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.metrics.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{}\":{v}", escape_json(name));
        }
        s.push_str("},\"hists\":{");
        for (i, (name, h)) in self.metrics.hists.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                escape_json(name),
                h.count,
                h.sum,
                h.min_or_zero(),
                h.max
            );
            for (j, (bucket, count)) in h.nonzero_buckets().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{bucket},{count}]");
            }
            s.push_str("]}");
        }
        s.push_str("},\"spans\":{");
        match self.span_aggregates() {
            Ok(agg) => {
                for (i, (path, a)) in agg.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    let _ = write!(s, "\"{}\":{{\"count\":{}", escape_json(path), a.count);
                    if with_timing {
                        let _ = write!(s, ",\"total_ns\":{}", a.total_ns);
                    }
                    s.push('}');
                }
                s.push_str("}}");
            }
            Err(e) => {
                let _ = write!(s, "}},\"span_tree_error\":\"{}\"}}", escape_json(&e));
            }
        }
        s
    }

    /// Counters alone as a JSON object (`{"name":count,...}`), for
    /// embedding in other hand-rolled JSON such as the perf bin's output.
    pub fn counters_json(&self) -> String {
        let mut s = String::from("{");
        for (i, (name, v)) in self.metrics.counters.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{}\": {v}", escape_json(name));
        }
        s.push('}');
        s
    }

    /// JSONL sink: one JSON object per line per event, closed by exactly
    /// one `snapshot` line (with timing fields; strip with
    /// [`crate::check::strip_timing`] for determinism diffs).
    pub fn render_jsonl(&self) -> String {
        let mut s = String::new();
        flatten(&self.root, &mut |tid, event| match event {
            Event::Begin { name, label, t_ns } => {
                let _ = write!(s, "{{\"type\":\"B\",\"name\":\"{}\"", escape_json(name));
                if let Some(label) = label {
                    let _ = write!(s, ",\"label\":\"{}\"", escape_json(label));
                }
                let _ = writeln!(s, ",\"tid\":{tid},\"ts_ns\":{t_ns}}}");
            }
            Event::End { t_ns } => {
                let _ = writeln!(s, "{{\"type\":\"E\",\"tid\":{tid},\"ts_ns\":{t_ns}}}");
            }
            Event::Note { text, t_ns } => {
                let _ = writeln!(
                    s,
                    "{{\"type\":\"note\",\"text\":\"{}\",\"tid\":{tid},\"ts_ns\":{t_ns}}}",
                    escape_json(text)
                );
            }
            Event::Splice { .. } => unreachable!("flatten expands splices"),
        });
        s.push_str(&self.snapshot_json(true));
        s.push('\n');
        s
    }

    /// Chrome trace-event sink. `ts` is microseconds (with fractional
    /// nanoseconds); every span becomes a `B`/`E` pair on its thread's
    /// `tid`, so worker activity shows as parallel tracks.
    pub fn render_chrome(&self) -> String {
        fn us(ns: u64) -> String {
            format!("{}.{:03}", ns / 1000, ns % 1000)
        }
        fn emit(s: &mut String, first: &mut bool, node: &SpanNode) {
            let sep = if *first { "" } else { ",\n" };
            *first = false;
            let _ = write!(
                s,
                "{sep}{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"B\",\"ts\":{},\"pid\":1,\"tid\":{}",
                escape_json(node.name),
                us(node.start_ns),
                node.tid
            );
            if let Some(label) = &node.label {
                let _ = write!(s, ",\"args\":{{\"label\":\"{}\"}}", escape_json(label));
            }
            s.push('}');
            for child in &node.children {
                emit(s, first, child);
            }
            let _ = write!(
                s,
                ",\n{{\"name\":\"{}\",\"cat\":\"obs\",\"ph\":\"E\",\"ts\":{},\"pid\":1,\"tid\":{}}}",
                escape_json(node.name),
                us(node.end_ns),
                node.tid
            );
        }
        let forest = self
            .tree()
            .expect("span buffers are balanced by construction");
        let mut s = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        for node in &forest {
            emit(&mut s, &mut first, node);
        }
        s.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        s
    }

    /// Human text summary: the span tree with sibling spans merged by
    /// name (wall times are this run's only — not deterministic), then
    /// the counters, gauges and histograms (deterministic).
    pub fn render_summary(&self) -> String {
        let mut s = String::from("== obs summary ==\n");
        match self.tree() {
            Ok(forest) => {
                s.push_str("spans (wall times: this run only):\n");
                render_level(&mut s, &forest, 1);
            }
            Err(e) => {
                let _ = writeln!(s, "span tree unavailable: {e}");
            }
        }
        if !self.metrics.counters.is_empty() {
            s.push_str("counters:\n");
            let mut by_value: Vec<(&String, &u64)> = self.metrics.counters.iter().collect();
            by_value.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
            for (name, v) in by_value.iter().take(16) {
                let _ = writeln!(s, "  {name:<40} {v:>14}");
            }
            if by_value.len() > 16 {
                let _ = writeln!(s, "  … {} more", by_value.len() - 16);
            }
        }
        if !self.metrics.gauges.is_empty() {
            s.push_str("gauges (high-water marks):\n");
            for (name, v) in &self.metrics.gauges {
                let _ = writeln!(s, "  {name:<40} {v:>14}");
            }
        }
        if !self.metrics.hists.is_empty() {
            s.push_str("histograms:\n");
            for (name, h) in &self.metrics.hists {
                let _ = writeln!(
                    s,
                    "  {name:<40} n={} min={} mean={:.1} max={}",
                    h.count,
                    h.min_or_zero(),
                    h.mean(),
                    h.max
                );
            }
        }
        s
    }
}

/// One summary line per distinct span name per level, merged over
/// same-name siblings, in first-appearance order.
fn render_level(s: &mut String, nodes: &[SpanNode], depth: usize) {
    let refs: Vec<&SpanNode> = nodes.iter().collect();
    render_level_refs(s, &refs, depth);
}

fn render_level_refs(s: &mut String, nodes: &[&SpanNode], depth: usize) {
    let mut order: Vec<&'static str> = Vec::new();
    let mut merged: BTreeMap<&'static str, (u64, u64, Vec<&SpanNode>)> = BTreeMap::new();
    for &n in nodes {
        if !merged.contains_key(n.name) {
            order.push(n.name);
        }
        let e = merged.entry(n.name).or_insert((0, 0, Vec::new()));
        e.0 += 1;
        e.1 += n.duration_ns();
        e.2.push(n);
    }
    for name in order {
        let (count, total_ns, members) = &merged[name];
        let label = match (count, &members[0].label) {
            (1, Some(label)) => format!(" [{label}]"),
            _ => String::new(),
        };
        let times = if *count > 1 {
            format!("×{count}")
        } else {
            String::new()
        };
        let head = format!("{:indent$}{name}{label} {times}", "", indent = depth * 2);
        let _ = writeln!(s, "{head:<46} {:>10.3} ms", *total_ns as f64 / 1e6);
        let all_children: Vec<&SpanNode> = members.iter().flat_map(|m| &m.children).collect();
        if !all_children.is_empty() && depth < 8 {
            render_level_refs(s, &all_children, depth + 1);
        }
    }
}
