//! Counter / gauge / histogram storage.
//!
//! Each recording thread accumulates into a [`LocalMetrics`] keyed by the
//! `&'static str` metric name with a cheap multiply-mix hasher (names are
//! workspace literals, never attacker-controlled). When a thread leaves
//! its session the local maps merge into the session's [`Metrics`] —
//! `BTreeMap`s keyed by owned names, so every rendering is sorted and
//! deterministic. All merge operations are commutative (sum, max,
//! per-bucket sum), which is what makes the totals independent of thread
//! count and scheduling.

use std::collections::{BTreeMap, HashMap};
use std::hash::{BuildHasherDefault, Hasher};

/// Log₂-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. `min`/`max`/`sum`/`count` are exact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Number of samples.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    buckets: [u64; Hist::BUCKETS],
}

impl Default for Hist {
    fn default() -> Hist {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; Hist::BUCKETS],
        }
    }
}

impl Hist {
    /// Bucket 0 plus one bucket per possible `ilog2` value.
    pub const BUCKETS: usize = 65;

    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            1 + v.ilog2() as usize
        }
    }

    /// Record one sample (the sum saturates rather than overflowing).
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Hist::bucket_of(v)] += 1;
    }

    /// Merge another histogram into this one (commutative).
    pub fn merge(&mut self, other: &Hist) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Smallest sample, clamped for rendering (0 when empty).
    pub fn min_or_zero(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }
}

/// Fully merged, deterministic session metrics (sorted by name).
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Sum-merged counters.
    pub counters: BTreeMap<String, u64>,
    /// Max-merged gauges (high-water marks).
    pub gauges: BTreeMap<String, u64>,
    /// Histograms.
    pub hists: BTreeMap<String, Hist>,
}

/// One thread's unmerged accumulators.
#[derive(Default)]
pub(crate) struct LocalMetrics {
    counters: HashMap<&'static str, u64, BuildHasherDefault<NameHasher>>,
    gauges: HashMap<&'static str, u64, BuildHasherDefault<NameHasher>>,
    hists: HashMap<&'static str, Hist, BuildHasherDefault<NameHasher>>,
}

impl LocalMetrics {
    pub(crate) fn counter_add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    pub(crate) fn gauge_max(&mut self, name: &'static str, v: u64) {
        let g = self.gauges.entry(name).or_insert(0);
        *g = (*g).max(v);
    }

    pub(crate) fn hist_record(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    pub(crate) fn merge_into(&mut self, out: &mut Metrics) {
        for (name, n) in self.counters.drain() {
            *out.counters.entry(name.to_string()).or_insert(0) += n;
        }
        for (name, v) in self.gauges.drain() {
            let g = out.gauges.entry(name.to_string()).or_insert(0);
            *g = (*g).max(v);
        }
        for (name, h) in self.hists.drain() {
            out.hists.entry(name.to_string()).or_default().merge(&h);
        }
    }
}

/// Multiply-mix hasher for short static metric names (FxHash-style; the
/// default SipHash is needlessly heavy for per-event counter bumps).
#[derive(Default)]
pub(crate) struct NameHasher(u64);

impl Hasher for NameHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        const SEED: u64 = 0x9E37_79B9_7F4A_7C15;
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.0 = (self.0 ^ u64::from_le_bytes(word))
                .wrapping_mul(SEED)
                .rotate_left(26);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hist_buckets_are_log2() {
        let mut h = Hist::default();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<(usize, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![(0, 1), (1, 1), (2, 2), (3, 2), (4, 1), (41, 1), (64, 1)]
        );
        assert_eq!(h.count, 9);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = Hist::default();
        let mut b = Hist::default();
        for v in [1u64, 5, 9] {
            a.record(v);
        }
        for v in [2u64, 1024] {
            b.record(v);
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count, 5);
        assert_eq!(ab.sum, 1 + 5 + 9 + 2 + 1024);
    }

    #[test]
    fn local_metrics_merge_sums_and_maxes() {
        let mut local1 = LocalMetrics::default();
        let mut local2 = LocalMetrics::default();
        local1.counter_add("c", 3);
        local2.counter_add("c", 4);
        local1.gauge_max("g", 10);
        local2.gauge_max("g", 7);
        local1.hist_record("h", 1);
        local2.hist_record("h", 2);
        let mut out = Metrics::default();
        local1.merge_into(&mut out);
        local2.merge_into(&mut out);
        assert_eq!(out.counters["c"], 7);
        assert_eq!(out.gauges["g"], 10);
        assert_eq!(out.hists["h"].count, 2);
    }
}
