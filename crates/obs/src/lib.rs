//! Observability for the synthesis workspace: hierarchical spans,
//! deterministic metrics, and profile export.
//!
//! The crate is hand-rolled with zero dependencies (the workspace builds
//! offline) and is wired through every layer of the flow. Three ideas
//! carry the whole design:
//!
//! * **Sessions gate everything.** Nothing records until a thread installs
//!   a [`Session`]; with no session active anywhere in the process, every
//!   macro is one relaxed atomic load and a branch (the disabled path is
//!   measured by `crates/bench/benches/obs_overhead.rs`). Sessions are
//!   thread-local, so concurrently running tests never observe each
//!   other's counts.
//!
//! * **Per-thread buffers, merged in spawn order.** Worker threads created
//!   by `crates/par` join a session through a [`Fork`]: each worker gets
//!   its own event buffer and metrics accumulator, and [`Fork::join`]
//!   splices the buffers back into the parent's event stream in worker
//!   index (= spawn) order. Span events therefore always close into a
//!   well-formed tree, no matter how items were scheduled.
//!
//! * **Counts are deterministic, wall times are not.** Counters,
//!   histograms, and max-gauges merge with commutative operations (sum,
//!   sum-per-bucket, max), so their totals are a pure function of the
//!   inputs — byte-identical across thread counts and repeated runs, like
//!   everything else in this repo. Timestamps and durations are explicitly
//!   **excluded** from that contract; [`Report::snapshot_json`] with
//!   `with_timing = false` renders exactly the deterministic subset.
//!
//! # Recording
//!
//! ```
//! let session = obs::Session::start();
//! {
//!     let _stage = obs::span!("decompose", "{} nodes", 42);
//!     obs::counter!("decomp.huffman.merges", 3);
//!     obs::hist!("curve.points_after_prune", 7);
//! }
//! let report = session.finish();
//! assert!(report.metrics.counters["decomp.huffman.merges"] == 3);
//! println!("{}", report.render_summary());
//! ```
//!
//! # Sinks
//!
//! [`Report`] renders three ways: a human text summary
//! ([`Report::render_summary`]), a JSONL event stream ending in an
//! aggregate metrics snapshot ([`Report::render_jsonl`]), and Chrome
//! trace-event JSON loadable in `chrome://tracing` or Perfetto
//! ([`Report::render_chrome`]). The [`check`] module holds a strict
//! hand-rolled JSON parser plus validators for both machine formats.

#![warn(missing_docs)]

pub mod json;
mod metrics;
mod report;
mod span;

pub mod check;

pub use metrics::{Hist, Metrics};
pub use report::Report;
pub use span::SpanNode;

use metrics::LocalMetrics;
use span::{Event, ThreadEvents};
use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::str::FromStr;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of live sessions in the whole process. The fast gate every
/// macro checks first: zero means nothing can possibly be recording.
static ACTIVE_SESSIONS: AtomicUsize = AtomicUsize::new(0);

/// Monotone session id source, used to detect stale guards.
static NEXT_SESSION_ID: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    static RECORDER: RefCell<Option<Recorder>> = const { RefCell::new(None) };
}

/// True if any session is live anywhere in the process (fast, racy gate).
#[inline]
pub fn enabled() -> bool {
    ACTIVE_SESSIONS.load(Ordering::Relaxed) != 0
}

/// True if the **current thread** is recording into a session.
pub fn active() -> bool {
    enabled() && RECORDER.with(|r| r.borrow().is_some())
}

/// State shared by every thread recording into one session.
struct Shared {
    id: usize,
    t0: Instant,
    merged: Mutex<Metrics>,
    next_tid: AtomicU32,
}

/// Per-thread recording state: an event buffer and local metric
/// accumulators, flushed into [`Shared`] when the thread leaves the
/// session.
struct Recorder {
    shared: Arc<Shared>,
    tid: u32,
    events: Vec<Event>,
    metrics: LocalMetrics,
    open_spans: usize,
}

impl Recorder {
    fn new(shared: Arc<Shared>, tid: u32) -> Recorder {
        Recorder {
            shared,
            tid,
            events: Vec::new(),
            metrics: LocalMetrics::default(),
            open_spans: 0,
        }
    }

    fn now_ns(&self) -> u64 {
        self.shared.t0.elapsed().as_nanos() as u64
    }

    /// Flush this thread's contribution: metrics into the shared merge,
    /// leaked-open spans closed so the event buffer is always balanced.
    fn into_events(mut self) -> Vec<Event> {
        let close_at = self.now_ns();
        for _ in 0..self.open_spans {
            self.events.push(Event::End { t_ns: close_at });
        }
        self.metrics
            .merge_into(&mut self.shared.merged.lock().expect("obs metrics lock"));
        self.events
    }
}

// ---------------------------------------------------------------------------
// Sessions

/// A live recording session, owned by the thread that started it.
///
/// Starting a session turns the macros on for this thread (and for any
/// `par` workers joined through a [`Fork`]); [`Session::finish`] turns
/// them off and returns the [`Report`]. Dropping a session without
/// finishing tears it down and discards the data (so a panicking test
/// cannot leave the thread wedged).
///
/// # Panics
/// [`Session::start`] panics if the current thread is already recording —
/// nested sessions on one thread are not supported.
#[must_use = "finish() the session to obtain its Report"]
pub struct Session {
    shared: Arc<Shared>,
    finished: bool,
}

impl Session {
    /// Start recording on the current thread.
    pub fn start() -> Session {
        let shared = Arc::new(Shared {
            id: NEXT_SESSION_ID.fetch_add(1, Ordering::Relaxed),
            t0: Instant::now(),
            merged: Mutex::new(Metrics::default()),
            next_tid: AtomicU32::new(1),
        });
        RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            assert!(
                r.is_none(),
                "obs: a session is already active on this thread"
            );
            *r = Some(Recorder::new(shared.clone(), 0));
        });
        ACTIVE_SESSIONS.fetch_add(1, Ordering::SeqCst);
        Session {
            shared,
            finished: false,
        }
    }

    /// Stop recording and build the report. Must be called on the thread
    /// that started the session.
    ///
    /// # Panics
    /// Panics if called on a different thread, or if that thread's
    /// recorder belongs to another session.
    pub fn finish(mut self) -> Report {
        self.finished = true;
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::SeqCst);
        let rec = RECORDER
            .with(|r| r.borrow_mut().take())
            .expect("obs: Session::finish on a thread that is not recording");
        assert!(
            Arc::ptr_eq(&rec.shared, &self.shared),
            "obs: Session::finish called for a different session"
        );
        let events = rec.into_events();
        let metrics = std::mem::take(&mut *self.shared.merged.lock().expect("obs metrics lock"));
        Report::new(ThreadEvents { tid: 0, events }, metrics)
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        ACTIVE_SESSIONS.fetch_sub(1, Ordering::SeqCst);
        RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            if matches!(&*r, Some(rec) if Arc::ptr_eq(&rec.shared, &self.shared)) {
                *r = None;
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Spans

/// RAII guard returned by [`span!`]: records the span's end event on drop.
///
/// The guard is `!Send` — a span must end on the thread that began it, or
/// the per-thread buffers could not close into a tree.
pub struct SpanGuard {
    /// Session id this guard recorded into; 0 = disarmed (not recording).
    session: usize,
    _not_send: PhantomData<*const ()>,
}

const DISARMED: SpanGuard = SpanGuard {
    session: 0,
    _not_send: PhantomData,
};

/// Record the begin event of an unlabeled span. Prefer the [`span!`] macro.
#[inline]
pub fn span_enter(name: &'static str) -> SpanGuard {
    if !enabled() {
        return DISARMED;
    }
    span_begin(name, None)
}

/// Record the begin event of a labeled span; `label` is only evaluated
/// when the current thread is recording. Prefer the [`span!`] macro.
#[inline]
pub fn span_enter_labeled(name: &'static str, label: impl FnOnce() -> String) -> SpanGuard {
    if !active() {
        return DISARMED;
    }
    span_begin(name, Some(label().into_boxed_str()))
}

fn span_begin(name: &'static str, label: Option<Box<str>>) -> SpanGuard {
    RECORDER.with(|r| match r.borrow_mut().as_mut() {
        Some(rec) => {
            let t_ns = rec.now_ns();
            rec.events.push(Event::Begin { name, label, t_ns });
            rec.open_spans += 1;
            SpanGuard {
                session: rec.shared.id,
                _not_send: PhantomData,
            }
        }
        None => DISARMED,
    })
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.session == 0 {
            return;
        }
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                // A stale guard (its session already finished) must not
                // push an unmatched End into a newer session's buffer.
                if rec.shared.id == self.session {
                    let t_ns = rec.now_ns();
                    rec.events.push(Event::End { t_ns });
                    rec.open_spans = rec.open_spans.saturating_sub(1);
                }
            }
        });
    }
}

// ---------------------------------------------------------------------------
// Metrics

/// Add `n` to the named counter. Prefer the [`counter!`] macro.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.metrics.counter_add(name, n);
        }
    });
}

/// Raise the named max-gauge to at least `v`. Prefer the [`gauge!`] macro.
#[inline]
pub fn gauge_max(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.metrics.gauge_max(name, v);
        }
    });
}

/// Record one sample into the named histogram. Prefer the [`hist!`] macro.
#[inline]
pub fn hist_record(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            rec.metrics.hist_record(name, v);
        }
    });
}

/// Emit a progress note: always printed to **stderr** (the default text
/// sink, never stdout — `--obs=json` keeps stdout machine-clean), and
/// additionally recorded as an instant event when the thread is recording.
/// Prefer the [`note!`] macro.
pub fn note_line(line: String) {
    eprintln!("{line}");
    note_event(line);
}

/// Record an instant note event **without** printing anywhere: used by
/// structured emitters (the QoR ledger) whose lines ride the JSONL sink
/// but must stay silent in ordinary text output. A no-op when the current
/// thread is not recording. Prefer the [`note_event!`] macro.
pub fn note_event(line: String) {
    if !enabled() {
        return;
    }
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            let t_ns = rec.now_ns();
            rec.events.push(Event::Note {
                text: line.into_boxed_str(),
                t_ns,
            });
        }
    });
}

// ---------------------------------------------------------------------------
// Fork: carrying a session into par's worker threads

/// Hands the current thread's session to a fixed number of worker threads
/// and splices their buffers back **in worker-index order**.
///
/// Protocol (what `par::scope_map` does):
/// 1. parent: `let fork = obs::fork(workers);` before spawning;
/// 2. worker `w`: `let _g = fork.worker(w);` first thing in the thread —
///    the guard flushes the worker's buffer into its slot on drop;
/// 3. parent: `fork.join()` after all workers have been joined.
///
/// When the parent thread is not recording, every step is a no-op.
pub struct Fork(Option<ForkInner>);

struct ForkInner {
    shared: Arc<Shared>,
    base_tid: u32,
    slots: Vec<Mutex<Option<ThreadEvents>>>,
}

/// Create a [`Fork`] for `workers` threads (no-op if not recording).
pub fn fork(workers: usize) -> Fork {
    if !enabled() {
        return Fork(None);
    }
    let shared = RECORDER.with(|r| r.borrow().as_ref().map(|rec| rec.shared.clone()));
    let Some(shared) = shared else {
        return Fork(None);
    };
    // Pre-allocating the tid range keeps worker tids deterministic per
    // fork (worker w gets base + w), even though workers start racily.
    let base_tid = shared.next_tid.fetch_add(workers as u32, Ordering::Relaxed);
    let slots = (0..workers).map(|_| Mutex::new(None)).collect();
    Fork(Some(ForkInner {
        shared,
        base_tid,
        slots,
    }))
}

impl Fork {
    /// Join worker `index` to the session; call first thing on the worker
    /// thread and hold the guard for the thread's whole lifetime.
    ///
    /// # Panics
    /// Panics if `index` is out of range or the worker thread is somehow
    /// already recording.
    pub fn worker(&self, index: usize) -> Option<WorkerGuard<'_>> {
        let inner = self.0.as_ref()?;
        let tid = inner.base_tid + index as u32;
        RECORDER.with(|r| {
            let mut r = r.borrow_mut();
            assert!(r.is_none(), "obs: worker thread already recording");
            *r = Some(Recorder::new(inner.shared.clone(), tid));
        });
        Some(WorkerGuard { fork: inner, index })
    }

    /// Splice the worker buffers into the parent's event stream, in
    /// worker-index order. Call after every worker has been joined.
    pub fn join(self) {
        let Some(inner) = self.0 else { return };
        let children: Vec<ThreadEvents> = inner
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("obs fork slot lock").take())
            .filter(|buf| !buf.events.is_empty())
            .collect();
        if children.is_empty() {
            return;
        }
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                if Arc::ptr_eq(&rec.shared, &inner.shared) {
                    rec.events.push(Event::Splice { children });
                }
            }
        });
    }
}

/// Guard installed on a worker thread by [`Fork::worker`]; flushes the
/// worker's events and metrics into the fork on drop.
pub struct WorkerGuard<'a> {
    fork: &'a ForkInner,
    index: usize,
}

impl Drop for WorkerGuard<'_> {
    fn drop(&mut self) {
        let Some(rec) = RECORDER.with(|r| r.borrow_mut().take()) else {
            return;
        };
        let tid = rec.tid;
        let events = rec.into_events();
        *self.fork.slots[self.index]
            .lock()
            .expect("obs fork slot lock") = Some(ThreadEvents { tid, events });
    }
}

// ---------------------------------------------------------------------------
// Output mode (shared by FlowConfig and the CLI)

/// How (and whether) a flow run records and renders observability data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// No session: macros stay near-no-ops.
    #[default]
    Off,
    /// Human text summary (per-stage tree with times + top counters).
    Summary,
    /// JSONL event stream ending in an aggregate metrics snapshot.
    Json,
    /// Chrome trace-event JSON (`chrome://tracing` / Perfetto).
    Chrome,
}

impl FromStr for ObsMode {
    type Err = String;

    fn from_str(s: &str) -> Result<ObsMode, String> {
        match s {
            "off" => Ok(ObsMode::Off),
            "summary" => Ok(ObsMode::Summary),
            "json" => Ok(ObsMode::Json),
            "chrome" => Ok(ObsMode::Chrome),
            other => Err(format!(
                "unknown obs mode `{other}` (expected off|summary|json|chrome)"
            )),
        }
    }
}

impl fmt::Display for ObsMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ObsMode::Off => "off",
            ObsMode::Summary => "summary",
            ObsMode::Json => "json",
            ObsMode::Chrome => "chrome",
        })
    }
}

// ---------------------------------------------------------------------------
// Macros

/// Open a hierarchical span; the returned guard closes it on drop.
///
/// `span!("map")` or `span!("map", "{circuit} method {m}")` — the label is
/// formatted lazily, only when the current thread is recording. Bind the
/// guard (`let _s = span!(…);`), not `_` (which drops immediately).
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span_enter($name)
    };
    ($name:expr, $($arg:tt)+) => {
        $crate::span_enter_labeled($name, || ::std::format!($($arg)+))
    };
}

/// Bump a named counter: `counter!("bdd.unique.hit")` adds 1,
/// `counter!("activity.sim.words", n)` adds `n` (a `u64`).
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter_add($name, 1)
    };
    ($name:expr, $n:expr) => {
        $crate::counter_add($name, $n)
    };
}

/// Raise a named max-gauge: `gauge!("bdd.nodes.high_water", count)`.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $v:expr) => {
        $crate::gauge_max($name, $v)
    };
}

/// Record one sample in a named histogram:
/// `hist!("map.curve.points_after_prune", len)`.
#[macro_export]
macro_rules! hist {
    ($name:expr, $v:expr) => {
        $crate::hist_record($name, $v)
    };
}

/// Progress note: prints to stderr (never stdout) and records an instant
/// event when a session is live. Replaces ad-hoc `eprintln!` progress
/// output so `--obs=json` runs keep stdout machine-clean.
#[macro_export]
macro_rules! note {
    ($($arg:tt)+) => {
        $crate::note_line(::std::format!($($arg)+))
    };
}

/// Silent instant event: recorded in the event stream (JSONL `note` lines)
/// when a session is live, printed nowhere. The format arguments are only
/// evaluated when the process has a live session.
#[macro_export]
macro_rules! note_event {
    ($($arg:tt)+) => {
        if $crate::enabled() {
            $crate::note_event(::std::format!($($arg)+))
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_macros_are_inert() {
        // No session on this thread: nothing must panic or record.
        counter!("t.noop", 3);
        hist!("t.noop.h", 9);
        gauge!("t.noop.g", 9);
        let _s = span!("noop");
        let _l = span!("noop", "label {}", 1);
    }

    #[test]
    fn counters_hists_and_gauges_merge() {
        let s = Session::start();
        counter!("t.a");
        counter!("t.a", 4);
        counter!("t.b", 2);
        gauge!("t.g", 3);
        gauge!("t.g", 7);
        gauge!("t.g", 5);
        for v in [0u64, 1, 1, 7, 1024] {
            hist!("t.h", v);
        }
        let r = s.finish();
        assert_eq!(r.metrics.counters["t.a"], 5);
        assert_eq!(r.metrics.counters["t.b"], 2);
        assert_eq!(r.metrics.gauges["t.g"], 7);
        let h = &r.metrics.hists["t.h"];
        assert_eq!((h.count, h.sum, h.min, h.max), (5, 1033, 0, 1024));
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let s = Session::start();
        {
            let _a = span!("outer", "run {}", 1);
            {
                let _b = span!("inner");
            }
            {
                let _c = span!("inner");
            }
        }
        let _d = span!("tail");
        drop(_d);
        let r = s.finish();
        let tree = r.tree().expect("balanced");
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[0].name, "outer");
        assert_eq!(tree[0].label.as_deref(), Some("run 1"));
        assert_eq!(tree[0].children.len(), 2);
        assert_eq!(tree[1].name, "tail");
        assert!(tree[1].children.is_empty());
    }

    #[test]
    fn fork_splices_workers_in_spawn_order() {
        let s = Session::start();
        let _root = span!("root");
        let fork = fork(3);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..3)
                .map(|w| {
                    let fork = &fork;
                    scope.spawn(move || {
                        let _g = fork.worker(w);
                        let _s = span!("work");
                        counter!("t.fork.items");
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        fork.join();
        drop(_root);
        let r = s.finish();
        assert_eq!(r.metrics.counters["t.fork.items"], 3);
        let tree = r.tree().expect("balanced");
        assert_eq!(tree.len(), 1);
        let root = &tree[0];
        assert_eq!(root.name, "root");
        // All three worker spans nest under the span open at the fork.
        assert_eq!(root.children.len(), 3);
        assert!(root.children.iter().all(|c| c.name == "work"));
        // Spawn order: worker w got tid base + w.
        let tids: Vec<u32> = root.children.iter().map(|c| c.tid).collect();
        let mut sorted = tids.clone();
        sorted.sort_unstable();
        assert_eq!(tids, sorted);
    }

    #[test]
    fn dropping_a_session_unwedges_the_thread() {
        {
            let _s = Session::start();
            counter!("t.dropped", 1);
            // dropped without finish()
        }
        let s = Session::start();
        counter!("t.second", 1);
        let r = s.finish();
        assert!(!r.metrics.counters.contains_key("t.dropped"));
        assert_eq!(r.metrics.counters["t.second"], 1);
    }

    #[test]
    fn stale_guard_does_not_corrupt_next_session() {
        let s1 = Session::start();
        let leaked = span!("leaked");
        let r1 = s1.finish(); // closes the leaked span in the report
        assert!(r1.tree().is_ok());
        let s2 = Session::start();
        drop(leaked); // stale: must not push an End into s2
        let _ok = span!("ok");
        drop(_ok);
        let r2 = s2.finish();
        let tree = r2.tree().expect("stale guard ignored");
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].name, "ok");
    }
}
