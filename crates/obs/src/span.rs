//! Event buffers and span-tree construction.
//!
//! Every recording thread appends [`Event`]s to a flat buffer; guards
//! guarantee each `Begin` eventually gets its `End` on the same thread.
//! When `par` workers rejoin their parent, their whole buffers are
//! inserted as a single [`Event::Splice`] at the parent's current
//! position — in spawn order — so the nested structure is preserved
//! without any cross-thread synchronization during recording.

/// One recorded event. Timestamps are nanoseconds since session start,
/// from a monotonic clock; they are **not** part of the determinism
/// contract.
#[derive(Debug)]
pub(crate) enum Event {
    /// A span opened.
    Begin {
        name: &'static str,
        label: Option<Box<str>>,
        t_ns: u64,
    },
    /// The innermost open span of this thread closed.
    End { t_ns: u64 },
    /// An instant progress note.
    Note { text: Box<str>, t_ns: u64 },
    /// Worker buffers merged here, in spawn order.
    Splice { children: Vec<ThreadEvents> },
}

/// One thread's event buffer.
#[derive(Debug)]
pub(crate) struct ThreadEvents {
    pub(crate) tid: u32,
    pub(crate) events: Vec<Event>,
}

/// One node of the reconstructed span tree.
#[derive(Debug)]
pub struct SpanNode {
    /// Static span name (the first `span!` argument).
    pub name: &'static str,
    /// Formatted label, if the span had one.
    pub label: Option<String>,
    /// Thread the span ran on (0 = the session's root thread).
    pub tid: u32,
    /// Start, nanoseconds since session start (wall time — not
    /// deterministic).
    pub start_ns: u64,
    /// End, nanoseconds since session start.
    pub end_ns: u64,
    /// Nested spans: same-thread children plus any worker spans spliced
    /// while this span was open.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall-clock duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Build the span forest of one thread buffer, recursing into splices.
/// Errors on unbalanced buffers (an `End` without a `Begin`, or a `Begin`
/// never closed) — impossible through the guard API, but checked rather
/// than assumed because the proptest in `tests/obs_determinism.rs` pins
/// exactly this property.
pub(crate) fn build_forest(buffer: &ThreadEvents) -> Result<Vec<SpanNode>, String> {
    let mut out = Vec::new();
    build_into(&mut out, buffer)?;
    Ok(out)
}

fn build_into(out: &mut Vec<SpanNode>, buffer: &ThreadEvents) -> Result<(), String> {
    let mut stack: Vec<SpanNode> = Vec::new();
    for event in &buffer.events {
        match event {
            Event::Begin { name, label, t_ns } => stack.push(SpanNode {
                name,
                label: label.as_ref().map(|l| l.to_string()),
                tid: buffer.tid,
                start_ns: *t_ns,
                end_ns: *t_ns,
                children: Vec::new(),
            }),
            Event::End { t_ns } => {
                let mut top = stack
                    .pop()
                    .ok_or_else(|| format!("tid {}: End without a Begin", buffer.tid))?;
                top.end_ns = *t_ns;
                match stack.last_mut() {
                    Some(parent) => parent.children.push(top),
                    None => out.push(top),
                }
            }
            Event::Note { .. } => {}
            Event::Splice { children } => {
                // Worker spans nest under whatever span was open at the
                // moment the fork rejoined.
                for child in children {
                    let sink: &mut Vec<SpanNode> = match stack.last_mut() {
                        Some(parent) => &mut parent.children,
                        None => out,
                    };
                    build_into(sink, child)?;
                }
            }
        }
    }
    if stack.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "tid {}: {} span(s) never closed",
            buffer.tid,
            stack.len()
        ))
    }
}

/// Visit the flattened event stream depth-first: the parent's events in
/// order, with each splice's buffers expanded in place. Within any single
/// tid the visit order is chronological, which is what the JSONL checker
/// verifies per thread.
pub(crate) fn flatten<'a>(buffer: &'a ThreadEvents, visit: &mut impl FnMut(u32, &'a Event)) {
    for event in &buffer.events {
        if let Event::Splice { children } = event {
            for child in children {
                flatten(child, visit);
            }
        } else {
            visit(buffer.tid, event);
        }
    }
}
