//! Strict validators for the machine sinks, plus timing-stripping for
//! determinism diffs. Used by `tests/obs_determinism.rs`, the
//! `lowpower obs-check` subcommand, and the `ci.sh` obs gate.

pub use crate::json::{parse_json, Json};

/// Object keys that carry wall-time (non-deterministic) data in any sink.
pub const TIMING_KEYS: &[&str] = &["ts_ns", "total_ns", "ts", "dur_ns", "wall_ms"];

/// Validate a JSONL event stream as written by
/// [`Report::render_jsonl`](crate::Report::render_jsonl):
///
/// * every non-empty line parses as strict JSON and is an object with a
///   `type` of `B`, `E`, `note`, or `snapshot`;
/// * per thread, `B`/`E` events balance and `ts_ns` never decreases in
///   file order;
/// * exactly one `snapshot` object exists and it is the last line.
///
/// Returns the parsed snapshot object.
///
/// # Errors
/// A description of the first violation, with its line number.
pub fn check_jsonl(text: &str) -> Result<Json, String> {
    let mut snapshot: Option<Json> = None;
    let mut depth: Vec<(f64, i64)> = Vec::new(); // (last_ts, open_spans) per tid slot
    let mut tids: Vec<f64> = Vec::new();
    let slot = |tid: f64, tids: &mut Vec<f64>, depth: &mut Vec<(f64, i64)>| -> usize {
        match tids.iter().position(|&t| t == tid) {
            Some(i) => i,
            None => {
                tids.push(tid);
                depth.push((f64::NEG_INFINITY, 0));
                tids.len() - 1
            }
        }
    };
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if snapshot.is_some() {
            return Err(format!("line {n}: content after the snapshot line"));
        }
        let v = parse_json(line).map_err(|e| format!("line {n}: {e}"))?;
        let ty = v
            .get("type")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("line {n}: missing `type`"))?
            .to_string();
        match ty.as_str() {
            "B" | "E" | "note" => {
                let tid = v
                    .get("tid")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {n}: missing numeric `tid`"))?;
                let ts = v
                    .get("ts_ns")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {n}: missing numeric `ts_ns`"))?;
                let i = slot(tid, &mut tids, &mut depth);
                if ts < depth[i].0 {
                    return Err(format!(
                        "line {n}: ts_ns decreases on tid {tid} ({ts} < {})",
                        depth[i].0
                    ));
                }
                depth[i].0 = ts;
                match ty.as_str() {
                    "B" => {
                        if v.get("name").and_then(Json::as_str).is_none() {
                            return Err(format!("line {n}: B event without `name`"));
                        }
                        depth[i].1 += 1;
                    }
                    "E" => {
                        depth[i].1 -= 1;
                        if depth[i].1 < 0 {
                            return Err(format!("line {n}: E without matching B on tid {tid}"));
                        }
                    }
                    _ => {
                        if v.get("text").and_then(Json::as_str).is_none() {
                            return Err(format!("line {n}: note event without `text`"));
                        }
                    }
                }
            }
            "snapshot" => {
                for key in ["counters", "gauges", "hists", "spans"] {
                    if v.get(key).is_none() {
                        return Err(format!("line {n}: snapshot missing `{key}`"));
                    }
                }
                snapshot = Some(v);
            }
            other => return Err(format!("line {n}: unknown event type `{other}`")),
        }
    }
    for (i, &(_, open)) in depth.iter().enumerate() {
        if open != 0 {
            return Err(format!("tid {}: {open} span(s) never closed", tids[i]));
        }
    }
    snapshot.ok_or_else(|| "no snapshot line".to_string())
}

/// Validate Chrome trace-event JSON as written by
/// [`Report::render_chrome`](crate::Report::render_chrome):
///
/// * the whole input parses as strict JSON — either a bare event array or
///   an object with a `traceEvents` array;
/// * every event has `ph` ∈ {`B`, `E`, `i`}, numeric `ts`/`pid`/`tid`,
///   and `B`/`i` events have a `name`;
/// * per `tid`, `B`/`E` events balance (in array order) and `ts` never
///   decreases.
///
/// # Errors
/// A description of the first violation, with the event index.
pub fn check_chrome(text: &str) -> Result<(), String> {
    let v = parse_json(text)?;
    let events = match (&v, v.get("traceEvents")) {
        (_, Some(Json::Arr(events))) => events,
        (Json::Arr(events), _) => events,
        _ => return Err("expected a traceEvents array".to_string()),
    };
    let mut tids: Vec<f64> = Vec::new();
    let mut state: Vec<(f64, i64)> = Vec::new(); // (last_ts, open) per tid
    for (i, ev) in events.iter().enumerate() {
        let field = |key: &str| -> Result<f64, String> {
            ev.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event {i}: missing numeric `{key}`"))
        };
        let ph = ev
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing `ph`"))?;
        if !matches!(ph, "B" | "E" | "i") {
            return Err(format!("event {i}: unsupported phase `{ph}`"));
        }
        let ts = field("ts")?;
        field("pid")?;
        let tid = field("tid")?;
        if matches!(ph, "B" | "i") && ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i}: `{ph}` event without `name`"));
        }
        let slot = match tids.iter().position(|&t| t == tid) {
            Some(s) => s,
            None => {
                tids.push(tid);
                state.push((f64::NEG_INFINITY, 0));
                tids.len() - 1
            }
        };
        if ts < state[slot].0 {
            return Err(format!(
                "event {i}: ts decreases on tid {tid} ({ts} < {})",
                state[slot].0
            ));
        }
        state[slot].0 = ts;
        match ph {
            "B" => state[slot].1 += 1,
            "E" => {
                state[slot].1 -= 1;
                if state[slot].1 < 0 {
                    return Err(format!("event {i}: E without matching B on tid {tid}"));
                }
            }
            _ => {}
        }
    }
    for (i, &(_, open)) in state.iter().enumerate() {
        if open != 0 {
            return Err(format!("tid {}: {open} B event(s) never closed", tids[i]));
        }
    }
    Ok(())
}

/// Remove every wall-time field ([`TIMING_KEYS`]) from a parsed value and
/// re-render it canonically. Applied to two runs' snapshots, the results
/// must be byte-identical — that is the determinism contract.
pub fn strip_timing(v: &Json) -> String {
    let mut v = v.clone();
    v.strip_keys(TIMING_KEYS);
    v.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{counter, span, Session};

    fn sample_report() -> crate::Report {
        let s = Session::start();
        {
            let _a = span!("stage", "c{}", 1);
            counter!("t.check.events", 5);
            let _b = span!("kernel");
        }
        crate::note_line("progress".to_string());
        s.finish()
    }

    #[test]
    fn jsonl_sink_passes_checker() {
        let r = sample_report();
        let jsonl = r.render_jsonl();
        let snap = check_jsonl(&jsonl).expect("valid JSONL");
        assert!(snap.get("counters").is_some());
        assert_eq!(strip_timing(&snap), strip_timing(&snap));
    }

    #[test]
    fn chrome_sink_passes_checker() {
        let r = sample_report();
        check_chrome(&r.render_chrome()).expect("valid chrome trace");
    }

    #[test]
    fn checker_rejects_broken_streams() {
        // stray non-JSON line
        assert!(check_jsonl("hello\n").is_err());
        // unbalanced E
        assert!(check_jsonl("{\"type\":\"E\",\"tid\":0,\"ts_ns\":1}\n").is_err());
        // unclosed B (and no snapshot)
        assert!(check_jsonl("{\"type\":\"B\",\"name\":\"x\",\"tid\":0,\"ts_ns\":1}\n").is_err());
        // decreasing timestamps
        let bad = "{\"type\":\"B\",\"name\":\"x\",\"tid\":0,\"ts_ns\":5}\n\
                   {\"type\":\"E\",\"tid\":0,\"ts_ns\":4}\n";
        assert!(check_jsonl(bad).is_err());
        // chrome: E without B
        assert!(
            check_chrome("[{\"ph\":\"E\",\"name\":\"x\",\"ts\":1,\"pid\":1,\"tid\":0}]").is_err()
        );
        // chrome: decreasing ts
        let bad = "[{\"ph\":\"B\",\"name\":\"x\",\"ts\":2,\"pid\":1,\"tid\":0},\
                    {\"ph\":\"E\",\"name\":\"x\",\"ts\":1,\"pid\":1,\"tid\":0}]";
        assert!(check_chrome(bad).is_err());
    }

    #[test]
    fn snapshot_stripping_removes_only_timing() {
        let r = sample_report();
        let with = parse_json(&r.snapshot_json(true)).expect("valid");
        let without = parse_json(&r.snapshot_json(false)).expect("valid");
        assert_eq!(strip_timing(&with), without.render());
    }
}
