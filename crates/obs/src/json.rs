//! Strict hand-rolled JSON: escaping, a full parser, canonical
//! re-rendering, and timing-field stripping.
//!
//! No serde offline, and the point of the checkers is to be *strict* —
//! trailing commas, bare words, unterminated strings, or stray non-JSON
//! output on stdout must all fail loudly. Numbers keep their raw source
//! text so a parse → strip → render round trip of our own output is
//! byte-stable.

use std::fmt::Write as _;

/// Escape a string for embedding in a JSON string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Object member order is preserved; numbers keep
/// their source text.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, as its raw (validated) source text.
    Num(String),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// Render canonically (same escaping rules the sinks use, members in
    /// stored order, numbers verbatim). Parse→render of sink output is
    /// byte-stable.
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }

    fn render_into(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(true) => s.push_str("true"),
            Json::Bool(false) => s.push_str("false"),
            Json::Num(raw) => s.push_str(raw),
            Json::Str(v) => {
                s.push('"');
                s.push_str(&escape_json(v));
                s.push('"');
            }
            Json::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    item.render_into(s);
                }
                s.push(']');
            }
            Json::Obj(members) => {
                s.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('"');
                    s.push_str(&escape_json(k));
                    s.push_str("\":");
                    v.render_into(s);
                }
                s.push('}');
            }
        }
    }

    /// Recursively remove object members whose key is in `keys` (used to
    /// strip wall-time fields before determinism diffs).
    pub fn strip_keys(&mut self, keys: &[&str]) {
        match self {
            Json::Obj(members) => {
                members.retain(|(k, _)| !keys.contains(&k.as_str()));
                for (_, v) in members.iter_mut() {
                    v.strip_keys(keys);
                }
            }
            Json::Arr(items) => {
                for item in items {
                    item.strip_keys(keys);
                }
            }
            _ => {}
        }
    }
}

/// Parse exactly one JSON value spanning the whole input (strict: no
/// trailing garbage, no trailing commas, no unquoted keys).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte `{}` at {}",
                other as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // surrogate pair: expect \uXXXX low half
                                if self.peek() != Some(b'\\') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("invalid low surrogate".to_string());
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| "invalid surrogate pair".to_string())?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| format!("invalid codepoint {cp:#x}"))?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte {b:#x} in string"));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("bad number at byte {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad fraction at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad exponent at byte {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("digits are ASCII")
            .to_string();
        Ok(Json::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_rerenders() {
        let src = r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny","d":null},"e":true}"#;
        let v = parse_json(src).unwrap();
        assert_eq!(v.render(), src);
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_sloppy_json() {
        for bad in [
            "{",
            "[1,]",
            "{\"a\":1,}",
            "{'a':1}",
            "{a:1}",
            "[1] extra",
            "01",
            "1.",
            "\"\\q\"",
            "nul",
            "\"unterminated",
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn unicode_escapes_round_trip() {
        let v = parse_json(r#""\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé😀"));
        assert!(parse_json(r#""\ud800""#).is_err());
    }

    #[test]
    fn strip_keys_is_recursive() {
        let mut v =
            parse_json(r#"{"a":{"total_ns":1,"count":2},"b":[{"total_ns":3}],"total_ns":4}"#)
                .unwrap();
        v.strip_keys(&["total_ns"]);
        assert_eq!(v.render(), r#"{"a":{"count":2},"b":[{}]}"#);
    }
}
