//! Counterexample construction: greedy minimization and cone diagnosis.

use crate::align::Alignment;
use netlist::Network;
use std::collections::HashSet;
use std::fmt;

/// A concrete input vector on which the two networks disagree.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// Full assignment over the union of both networks' input names.
    /// Non-essential inputs are canonicalized to `false` where possible.
    pub inputs: Vec<(String, bool)>,
    /// Essential inputs after greedy minimization: flipping any one of
    /// these (alone) makes the disagreement disappear.
    pub care: Vec<String>,
    /// Name of the first diverging primary output.
    pub output: String,
    /// Output values `(left, right)` under the assignment.
    pub values: (bool, bool),
    /// First same-named internal node (topological order) inside the
    /// diverging output's cone whose value differs between the networks —
    /// localizes the offending logic when node names survive the pass.
    pub divergent_node: Option<String>,
}

impl Counterexample {
    /// Value assigned to the named input, if it exists in either network.
    pub fn input_value(&self, name: &str) -> Option<bool> {
        self.inputs.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output `{}` differs ({} vs {}) under ",
            self.output, self.values.0 as u8, self.values.1 as u8
        )?;
        if self.care.is_empty() {
            write!(f, "every assignment")?;
        } else {
            let lits: Vec<String> = self
                .care
                .iter()
                .map(|n| format!("{n}={}", self.input_value(n).unwrap_or(false) as u8))
                .collect();
            write!(f, "{} (other inputs free)", lits.join(" "))?;
        }
        if let Some(node) = &self.divergent_node {
            write!(f, "; first divergent node `{node}`")?;
        }
        Ok(())
    }
}

/// Build a minimized counterexample from a union-space assignment known to
/// make some matched output pair disagree.
pub(crate) fn build(
    a: &Network,
    b: &Network,
    al: &Alignment,
    mut union: Vec<bool>,
) -> Counterexample {
    let diverges = |u: &[bool]| -> Option<usize> {
        let ao = a.eval_outputs(&al.a_inputs(u));
        let bo = b.eval_outputs(&al.b_inputs(u));
        al.outputs.iter().position(|(_, ai, bi)| ao[*ai] != bo[*bi])
    };
    debug_assert!(
        diverges(&union).is_some(),
        "build() requires a diverging assignment"
    );

    // Greedy flip-to-care-set reduction. Invariant: `union` diverges at
    // the top of every iteration. An input whose flip kills the
    // divergence is essential; any other input is a don't-care here and
    // gets canonicalized to `false` (both of its values diverge).
    let mut care = Vec::new();
    for i in 0..union.len() {
        let original = union[i];
        union[i] = !original;
        if diverges(&union).is_some() {
            union[i] = false;
        } else {
            union[i] = original;
            care.push(al.names[i].clone());
        }
    }

    let oi = diverges(&union).expect("minimized assignment must still diverge");
    let (output, ai, bi) = &al.outputs[oi];
    let a_values = a.eval(&al.a_inputs(&union));
    let b_values = b.eval(&al.b_inputs(&union));
    let a_out = a.outputs()[*ai].1;
    let values = (
        a_values[a_out.index()],
        b_values[b.outputs()[*bi].1.index()],
    );

    // Walk the diverging output's cone in `a` (topological order) and
    // report the first same-named node whose value differs in `b`.
    let mut cone = HashSet::new();
    let mut stack = vec![a_out];
    while let Some(id) = stack.pop() {
        if cone.insert(id) {
            stack.extend(a.node(id).fanins());
        }
    }
    let divergent_node = a.topo_order().ok().and_then(|order| {
        order
            .into_iter()
            .filter(|id| cone.contains(id) && !a.node(*id).is_input())
            .find_map(|id| {
                let name = a.node(id).name();
                let bid = b.find(name)?;
                (a_values[id.index()] != b_values[bid.index()]).then(|| name.to_string())
            })
    });

    let inputs = al.names.iter().cloned().zip(union).collect();
    Counterexample {
        inputs,
        care,
        output: output.clone(),
        values,
        divergent_node,
    }
}
