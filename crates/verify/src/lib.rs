//! Combinational equivalence checking (CEC) between two [`Network`]s.
//!
//! Synthesis passes are only trustworthy if they preserve function. This
//! crate proves (or refutes) that two combinational netlists compute the
//! same outputs, with two independent backends:
//!
//! * **BDD** ([`VerifyLevel::Full`]) — build canonical ROBDDs for both
//!   networks over a shared variable order and compare output handles.
//!   Handle equality is function equality, so agreement is a proof. If the
//!   manager exceeds a node budget the check transparently falls back to
//!   simulation (reported via [`EquivReport::bdd_fallback`]).
//! * **Random simulation** ([`VerifyLevel::Sim`]) — bit-parallel evaluation
//!   of seeded random vectors, 64 per word, reusing the same kernel as
//!   `activity`'s Monte-Carlo estimator. Cheap and effective at exposing
//!   real bugs, but passing is only statistical evidence.
//!
//! Networks are matched **by name**: primary inputs are aligned by name
//! over the union of both input sets, and outputs are paired by name under
//! an [`OutputPolicy`]. On any mismatch a concrete input vector is
//! extracted, greedily minimized to its essential inputs, and reported as
//! a [`Counterexample`] together with the first diverging output and an
//! offending internal node inside its cone.

mod align;
mod bddcheck;
mod cex;
mod sim;

pub use cex::Counterexample;

use netlist::Network;

/// How much post-pass checking the flow performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// No checking.
    #[default]
    Off,
    /// Bit-parallel random simulation only.
    Sim,
    /// BDD proof, falling back to simulation over the node budget.
    Full,
}

impl std::str::FromStr for VerifyLevel {
    type Err = String;

    fn from_str(s: &str) -> Result<VerifyLevel, String> {
        match s {
            "off" => Ok(VerifyLevel::Off),
            "sim" => Ok(VerifyLevel::Sim),
            "full" => Ok(VerifyLevel::Full),
            other => Err(format!(
                "unknown verify level `{other}` (expected off|sim|full)"
            )),
        }
    }
}

/// How primary outputs of the two networks are paired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputPolicy {
    /// Both networks must expose exactly the same output names.
    Exact,
    /// Only outputs present in both networks are compared (used across
    /// passes that legitimately drop outputs, e.g. constant stripping).
    Intersection,
}

/// Tuning knobs for [`check_equiv`].
#[derive(Debug, Clone)]
pub struct VerifyOptions {
    /// Backend selection; [`VerifyLevel::Off`] makes the check a no-op.
    pub level: VerifyLevel,
    /// Output pairing policy.
    pub outputs: OutputPolicy,
    /// Simulation effort: words of 64 vectors each.
    pub sim_words: usize,
    /// Seed for the simulation vector stream.
    pub seed: u64,
    /// BDD manager node budget before falling back to simulation.
    pub bdd_node_budget: usize,
    /// Worker threads for the simulation backend (1 = serial). The
    /// verdict — including which counterexample is reported — is
    /// identical at every thread count.
    pub threads: usize,
}

impl Default for VerifyOptions {
    fn default() -> VerifyOptions {
        VerifyOptions {
            level: VerifyLevel::Full,
            outputs: OutputPolicy::Exact,
            sim_words: 256,
            seed: 0x5EED_CEC5,
            bdd_node_budget: 2_000_000,
            threads: 1,
        }
    }
}

impl VerifyOptions {
    /// Options at a given level, defaults otherwise.
    pub fn at_level(level: VerifyLevel) -> VerifyOptions {
        VerifyOptions {
            level,
            ..VerifyOptions::default()
        }
    }

    /// Same options with a different output policy.
    pub fn with_outputs(mut self, outputs: OutputPolicy) -> VerifyOptions {
        self.outputs = outputs;
        self
    }

    /// Same options with a different simulation thread count.
    pub fn with_threads(mut self, threads: usize) -> VerifyOptions {
        self.threads = threads;
        self
    }
}

/// Which engine produced a verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Canonical BDD comparison (a proof).
    Bdd,
    /// Bit-parallel random simulation (statistical evidence).
    Sim,
}

/// Statistics of a successful equivalence check.
#[derive(Debug, Clone)]
pub struct EquivReport {
    /// Engine that produced the verdict.
    pub backend: Backend,
    /// Number of output pairs compared.
    pub outputs_checked: usize,
    /// True if [`VerifyLevel::Full`] was requested but the BDD node budget
    /// was exceeded and simulation decided instead.
    pub bdd_fallback: bool,
    /// Simulation vectors applied (0 for a pure BDD proof).
    pub vectors: usize,
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone)]
pub enum Verdict {
    /// Checking was disabled ([`VerifyLevel::Off`]).
    Skipped,
    /// No difference found; see the report for the strength of the claim.
    Equivalent(EquivReport),
    /// The networks differ on a concrete, minimized input vector.
    NotEquivalent(Box<Counterexample>),
}

impl Verdict {
    /// True unless a counterexample was found.
    pub fn is_ok(&self) -> bool {
        !matches!(self, Verdict::NotEquivalent(_))
    }
}

/// Structural failure that prevents comparison (as opposed to a
/// functional mismatch, which is reported as a [`Verdict`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// Output sets differ under [`OutputPolicy::Exact`].
    OutputMismatch(String),
    /// No output name is shared between the networks.
    NoCommonOutputs,
    /// A network is malformed (e.g. cyclic).
    Network(String),
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::OutputMismatch(m) => write!(f, "output mismatch: {m}"),
            VerifyError::NoCommonOutputs => write!(f, "networks share no output names"),
            VerifyError::Network(m) => write!(f, "malformed network: {m}"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Check combinational equivalence of `a` and `b` under `opts`.
///
/// Inputs are aligned by name over the union of both input sets; an input
/// present in only one network simply varies freely there. Outputs are
/// paired by name under `opts.outputs`.
///
/// # Errors
/// Returns [`VerifyError`] when the networks cannot be compared at all;
/// functional differences are reported as [`Verdict::NotEquivalent`].
pub fn check_equiv(a: &Network, b: &Network, opts: &VerifyOptions) -> Result<Verdict, VerifyError> {
    if opts.level != VerifyLevel::Off {
        obs::counter!("verify.checks");
    }
    match opts.level {
        VerifyLevel::Off => Ok(Verdict::Skipped),
        VerifyLevel::Sim => {
            let al = align::align(a, b, opts.outputs)?;
            sim::run(a, b, &al, opts, false)
        }
        VerifyLevel::Full => bddcheck::check(a, b, opts),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    fn net(src: &str) -> Network {
        parse_blif(src).unwrap().network
    }

    // f = a·b + c two ways: flat, and as a decomposed tree with inputs
    // declared in a different order.
    const FLAT: &str =
        ".model flat\n.inputs a b c\n.outputs f\n.names a b c f\n11- 1\n--1 1\n.end\n";
    const TREE: &str = ".model tree\n.inputs c a b\n.outputs f\n.names a b t\n11 1\n\
                        .names t c f\n1- 1\n-1 1\n.end\n";
    const BROKEN: &str = ".model broken\n.inputs c a b\n.outputs f\n.names a b t\n10 1\n\
                          .names t c f\n1- 1\n-1 1\n.end\n";

    #[test]
    fn equivalent_under_both_backends() {
        let (a, b) = (net(FLAT), net(TREE));
        for level in [VerifyLevel::Sim, VerifyLevel::Full] {
            let v = check_equiv(&a, &b, &VerifyOptions::at_level(level)).unwrap();
            match v {
                Verdict::Equivalent(r) => {
                    assert_eq!(r.outputs_checked, 1);
                    assert!(!r.bdd_fallback);
                    let want = if level == VerifyLevel::Full {
                        Backend::Bdd
                    } else {
                        Backend::Sim
                    };
                    assert_eq!(r.backend, want);
                }
                other => panic!("expected Equivalent, got {other:?}"),
            }
        }
    }

    #[test]
    fn mismatch_is_caught_by_both_backends() {
        let (a, b) = (net(FLAT), net(BROKEN));
        for level in [VerifyLevel::Sim, VerifyLevel::Full] {
            let v = check_equiv(&a, &b, &VerifyOptions::at_level(level)).unwrap();
            let Verdict::NotEquivalent(cex) = v else {
                panic!("expected NotEquivalent at {level:?}");
            };
            assert_eq!(cex.output, "f");
            // The witness must actually diverge when replayed.
            let pis_a: Vec<bool> = a
                .input_names()
                .iter()
                .map(|n| cex.input_value(n).unwrap())
                .collect();
            let pis_b: Vec<bool> = b
                .input_names()
                .iter()
                .map(|n| cex.input_value(n).unwrap())
                .collect();
            assert_ne!(a.eval_outputs(&pis_a), b.eval_outputs(&pis_b));
        }
    }

    #[test]
    fn bdd_budget_exhaustion_falls_back_to_simulation() {
        let (a, b) = (net(FLAT), net(TREE));
        let opts = VerifyOptions {
            bdd_node_budget: 1,
            ..Default::default()
        };
        let v = check_equiv(&a, &b, &opts).unwrap();
        match v {
            Verdict::Equivalent(r) => {
                assert_eq!(r.backend, Backend::Sim);
                assert!(r.bdd_fallback);
                assert!(r.vectors > 0);
            }
            other => panic!("expected fallback Equivalent, got {other:?}"),
        }
    }

    #[test]
    fn off_level_skips() {
        let (a, b) = (net(FLAT), net(BROKEN));
        let v = check_equiv(&a, &b, &VerifyOptions::at_level(VerifyLevel::Off)).unwrap();
        assert!(matches!(v, Verdict::Skipped));
    }

    #[test]
    fn exact_policy_rejects_missing_outputs() {
        let a = net(FLAT);
        let two = net(
            ".model two\n.inputs a b c\n.outputs f g\n.names a b c f\n11- 1\n--1 1\n\
             .names a g\n1 1\n.end\n",
        );
        let err = check_equiv(&a, &two, &VerifyOptions::default()).unwrap_err();
        assert!(matches!(err, VerifyError::OutputMismatch(_)), "{err}");
        let opts = VerifyOptions::default().with_outputs(OutputPolicy::Intersection);
        assert!(check_equiv(&a, &two, &opts).unwrap().is_ok());
    }

    #[test]
    fn disjoint_outputs_error() {
        let a = net(FLAT);
        let g = net(".model g\n.inputs a\n.outputs g\n.names a g\n1 1\n.end\n");
        let opts = VerifyOptions::default().with_outputs(OutputPolicy::Intersection);
        assert_eq!(
            check_equiv(&a, &g, &opts).unwrap_err(),
            VerifyError::NoCommonOutputs
        );
    }

    #[test]
    fn counterexample_minimizes_to_essential_inputs() {
        // f = a·b with six spectator inputs vs constant 0: divergence needs
        // exactly a=1, b=1; everything else is a don't-care.
        let a = net(".model wide\n.inputs a b u v w x y z\n.outputs f\n.names a b f\n11 1\n.end\n");
        let b = net(".model zero\n.inputs a b u v w x y z\n.outputs f\n.names f\n.end\n");
        for level in [VerifyLevel::Sim, VerifyLevel::Full] {
            let v = check_equiv(&a, &b, &VerifyOptions::at_level(level)).unwrap();
            let Verdict::NotEquivalent(cex) = v else {
                panic!("expected NotEquivalent at {level:?}");
            };
            assert_eq!(
                cex.care,
                vec!["a".to_string(), "b".to_string()],
                "at {level:?}"
            );
            assert_eq!(cex.input_value("a"), Some(true));
            assert_eq!(cex.input_value("b"), Some(true));
            for spectator in ["u", "v", "w", "x", "y", "z"] {
                assert_eq!(cex.input_value(spectator), Some(false), "at {level:?}");
            }
            assert_eq!(cex.values, (true, false));
            assert_eq!(cex.output, "f");
            let text = cex.to_string();
            assert!(text.contains("a=1 b=1"), "display: {text}");
        }
    }

    #[test]
    fn level_parses_from_str() {
        assert_eq!("off".parse::<VerifyLevel>().unwrap(), VerifyLevel::Off);
        assert_eq!("sim".parse::<VerifyLevel>().unwrap(), VerifyLevel::Sim);
        assert_eq!("full".parse::<VerifyLevel>().unwrap(), VerifyLevel::Full);
        assert!("bogus".parse::<VerifyLevel>().is_err());
    }
}
