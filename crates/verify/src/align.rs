//! Name-based alignment of two networks' primary inputs and outputs.

use crate::{OutputPolicy, VerifyError};
use netlist::Network;
use std::collections::{HashMap, HashSet};

/// A shared coordinate system for comparing two networks.
///
/// Inputs live in the *union* space: `names[k]` is the `k`-th union input,
/// with `a`'s inputs first (in their declared order) followed by inputs
/// that only `b` has. `a_pos[i]` / `b_pos[j]` give the union position of
/// each network's `i`-th / `j`-th declared input.
#[derive(Debug)]
pub(crate) struct Alignment {
    pub names: Vec<String>,
    pub a_pos: Vec<usize>,
    pub b_pos: Vec<usize>,
    /// Matched output pairs `(name, a_output_index, b_output_index)` in
    /// `a`'s output order.
    pub outputs: Vec<(String, usize, usize)>,
}

impl Alignment {
    /// Project a union-space assignment onto `a`'s input order.
    pub fn a_inputs<T: Copy>(&self, union: &[T]) -> Vec<T> {
        self.a_pos.iter().map(|&p| union[p]).collect()
    }

    /// Project a union-space assignment onto `b`'s input order.
    pub fn b_inputs<T: Copy>(&self, union: &[T]) -> Vec<T> {
        self.b_pos.iter().map(|&p| union[p]).collect()
    }
}

pub(crate) fn align(
    a: &Network,
    b: &Network,
    policy: OutputPolicy,
) -> Result<Alignment, VerifyError> {
    let mut names: Vec<String> = a.input_names().iter().map(|s| s.to_string()).collect();
    let a_pos: Vec<usize> = (0..names.len()).collect();
    let index: HashMap<String, usize> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.clone(), i))
        .collect();
    let mut b_pos = Vec::with_capacity(b.inputs().len());
    for n in b.input_names() {
        match index.get(n) {
            Some(&i) => b_pos.push(i),
            None => {
                names.push(n.to_string());
                b_pos.push(names.len() - 1);
            }
        }
    }

    let b_outputs: HashMap<&str, usize> = b
        .outputs()
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (n.as_str(), i))
        .collect();
    let mut outputs = Vec::new();
    for (i, (n, _)) in a.outputs().iter().enumerate() {
        match b_outputs.get(n.as_str()) {
            Some(&j) => outputs.push((n.clone(), i, j)),
            None if policy == OutputPolicy::Exact => {
                return Err(VerifyError::OutputMismatch(format!(
                    "output `{n}` of `{}` missing from `{}`",
                    a.name(),
                    b.name()
                )));
            }
            None => {}
        }
    }
    if policy == OutputPolicy::Exact {
        let a_names: HashSet<&str> = a.outputs().iter().map(|(n, _)| n.as_str()).collect();
        if let Some((extra, _)) = b
            .outputs()
            .iter()
            .find(|(n, _)| !a_names.contains(n.as_str()))
        {
            return Err(VerifyError::OutputMismatch(format!(
                "output `{extra}` of `{}` missing from `{}`",
                b.name(),
                a.name()
            )));
        }
    }
    if outputs.is_empty() {
        return Err(VerifyError::NoCommonOutputs);
    }
    Ok(Alignment {
        names,
        a_pos,
        b_pos,
        outputs,
    })
}
