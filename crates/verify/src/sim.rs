//! Bit-parallel random-simulation backend.
//!
//! Shares the word-level evaluation kernel with `activity::sim`: each
//! `u64` word carries 64 independent input vectors, and one
//! [`Network::eval_words`] pass evaluates all of them. Both networks see
//! identical values on same-named inputs, so any differing output bit is a
//! genuine counterexample.

use crate::align::Alignment;
use crate::{cex, Backend, EquivReport, Verdict, VerifyError, VerifyOptions};
use activity::sim::bernoulli_word;
use netlist::Network;
use rand::rngs::SmallRng;
use rand::SeedableRng;

pub(crate) fn run(
    a: &Network,
    b: &Network,
    al: &Alignment,
    opts: &VerifyOptions,
    bdd_fallback: bool,
) -> Result<Verdict, VerifyError> {
    let mut rng = SmallRng::seed_from_u64(opts.seed);
    let words = opts.sim_words.max(1);
    let mut union = vec![0u64; al.names.len()];
    for w in 0..words {
        for word in union.iter_mut() {
            *word = bernoulli_word(&mut rng, 0.5);
        }
        if w == 0 {
            // Deterministic corner coverage: lane 0 is the all-zeros
            // vector, lane 1 the all-ones vector.
            for word in union.iter_mut() {
                *word = (*word & !0b01) | 0b10;
            }
        }
        let ao = a.eval_outputs_words(&al.a_inputs(&union));
        let bo = b.eval_outputs_words(&al.b_inputs(&union));
        for (_, ai, bi) in &al.outputs {
            let diff = ao[*ai] ^ bo[*bi];
            if diff != 0 {
                let lane = diff.trailing_zeros();
                let assignment: Vec<bool> =
                    union.iter().map(|&word| word >> lane & 1 == 1).collect();
                return Ok(Verdict::NotEquivalent(Box::new(cex::build(
                    a, b, al, assignment,
                ))));
            }
        }
    }
    Ok(Verdict::Equivalent(EquivReport {
        backend: Backend::Sim,
        outputs_checked: al.outputs.len(),
        bdd_fallback,
        vectors: words * 64,
    }))
}
