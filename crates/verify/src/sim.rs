//! Bit-parallel random-simulation backend.
//!
//! Shares the word-level evaluation kernel with `activity::sim`: each
//! `u64` word carries 64 independent input vectors, and one
//! [`Network::eval_words`] pass evaluates all of them. Both networks see
//! identical values on same-named inputs, so any differing output bit is a
//! genuine counterexample.
//!
//! Word `w` of the vector stream is a pure function of `(opts.seed, w)`
//! (SplitMix-derived per-word seed), so the words can be simulated in any
//! order — and on any number of threads — without changing which vectors
//! are applied. The reported counterexample is the first failing vector in
//! stream order (lowest word, outputs scanned in alignment order, lowest
//! failing lane), which is likewise thread-invariant.

use crate::align::Alignment;
use crate::{cex, Backend, EquivReport, Verdict, VerifyError, VerifyOptions};
use activity::sim::bernoulli_word;
use netlist::Network;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Fill `union` with word `w` of the seeded stream.
fn fill_word(union: &mut [u64], seed: u64, w: usize) {
    let mut rng = SmallRng::seed_from_u64(par::split_seed(seed, w as u64));
    for word in union.iter_mut() {
        *word = bernoulli_word(&mut rng, 0.5);
    }
    if w == 0 {
        // Deterministic corner coverage: lane 0 is the all-zeros
        // vector, lane 1 the all-ones vector.
        for word in union.iter_mut() {
            *word = (*word & !0b01) | 0b10;
        }
    }
}

pub(crate) fn run(
    a: &Network,
    b: &Network,
    al: &Alignment,
    opts: &VerifyOptions,
    bdd_fallback: bool,
) -> Result<Verdict, VerifyError> {
    let words = opts.sim_words.max(1);
    let threads = opts.threads.max(1);
    // A few chunks per worker smooths out uneven cone sizes; each chunk
    // reports its first failing word, and chunks cover ascending
    // word ranges, so the first hit in chunk order is the global first.
    let ranges = par::split_ranges(words, threads * 4);
    let hits: Vec<Option<Vec<bool>>> = par::scope_map(threads, &ranges, |_, range| {
        // Scheduled words, not completed ones: every range runs, so the
        // total is `words` at any thread count even when a chunk stops
        // early on a counterexample.
        obs::counter!("verify.sim.words", range.len() as u64);
        let mut union = vec![0u64; al.names.len()];
        for w in range.clone() {
            fill_word(&mut union, opts.seed, w);
            let ao = a.eval_outputs_words(&al.a_inputs(&union));
            let bo = b.eval_outputs_words(&al.b_inputs(&union));
            for (_, ai, bi) in &al.outputs {
                let diff = ao[*ai] ^ bo[*bi];
                if diff != 0 {
                    let lane = diff.trailing_zeros();
                    return Some(union.iter().map(|&word| word >> lane & 1 == 1).collect());
                }
            }
        }
        None
    });
    if let Some(assignment) = hits.into_iter().flatten().next() {
        return Ok(Verdict::NotEquivalent(Box::new(cex::build(
            a, b, al, assignment,
        ))));
    }
    Ok(Verdict::Equivalent(EquivReport {
        backend: Backend::Sim,
        outputs_checked: al.outputs.len(),
        bdd_fallback,
        vectors: words * 64,
    }))
}
