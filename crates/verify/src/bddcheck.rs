//! Canonical BDD comparison backend.
//!
//! Both networks are compiled into one [`BddManager`] over the union input
//! space with a shared variable order (union position = variable index).
//! Hash-consing makes handle equality function equality, so matching
//! output handles are a proof of equivalence. If the manager grows past
//! the node budget while compiling, the check falls back to the
//! simulation backend rather than blowing up memory.

use crate::align;
use crate::{cex, sim, Backend, EquivReport, Verdict, VerifyError, VerifyOptions};
use bdd::{Bdd, BddManager};
use netlist::{Network, NodeId};

pub(crate) fn check(
    a: &Network,
    b: &Network,
    opts: &VerifyOptions,
) -> Result<Verdict, VerifyError> {
    let al = align::align(a, b, opts.outputs)?;
    let mut manager = BddManager::new(al.names.len());
    let fa = match compile(&mut manager, a, &al.a_pos, opts.bdd_node_budget)? {
        Some(outputs) => outputs,
        None => {
            obs::counter!("verify.bdd.fallbacks");
            return sim::run(a, b, &al, opts, true);
        }
    };
    let fb = match compile(&mut manager, b, &al.b_pos, opts.bdd_node_budget)? {
        Some(outputs) => outputs,
        None => {
            obs::counter!("verify.bdd.fallbacks");
            return sim::run(a, b, &al, opts, true);
        }
    };
    for (_, ai, bi) in &al.outputs {
        if fa[*ai] != fb[*bi] {
            let diff = manager.xor(fa[*ai], fb[*bi]);
            let assignment = manager
                .sat_one(diff)
                .expect("XOR of distinct functions is satisfiable");
            return Ok(Verdict::NotEquivalent(Box::new(cex::build(
                a, b, &al, assignment,
            ))));
        }
    }
    Ok(Verdict::Equivalent(EquivReport {
        backend: Backend::Bdd,
        outputs_checked: al.outputs.len(),
        bdd_fallback: false,
        vectors: 0,
    }))
}

/// Compile every output of `net` to a BDD, mapping the network's `i`-th
/// input to manager variable `var_of_input[i]`. Returns `None` if the
/// manager exceeds `budget` nodes part-way through.
fn compile(
    manager: &mut BddManager,
    net: &Network,
    var_of_input: &[usize],
    budget: usize,
) -> Result<Option<Vec<Bdd>>, VerifyError> {
    let order = net
        .topo_order()
        .map_err(|e| VerifyError::Network(e.to_string()))?;
    let mut input_index = vec![usize::MAX; net.arena_len()];
    for (i, id) in net.inputs().iter().enumerate() {
        input_index[id.index()] = i;
    }
    let mut values: Vec<Bdd> = vec![Bdd::ZERO; net.arena_len()];
    for id in order {
        let node = net.node(id);
        let f = match node.sop() {
            None => manager.var(var_of_input[input_index[id.index()]]),
            Some(sop) => {
                let fanins: Vec<Bdd> = node
                    .fanins()
                    .iter()
                    .map(|&fid: &NodeId| values[fid.index()])
                    .collect();
                let mut acc = Bdd::ZERO;
                for cube in sop.cubes() {
                    let mut product = Bdd::ONE;
                    for (pos, lit) in cube.bound_lits() {
                        let v = if lit == netlist::Lit::Pos {
                            fanins[pos]
                        } else {
                            manager.not(fanins[pos])
                        };
                        product = manager.and(product, v);
                    }
                    acc = manager.or(acc, product);
                }
                acc
            }
        };
        values[id.index()] = f;
        if manager.node_count() > budget {
            return Ok(None);
        }
    }
    Ok(Some(
        net.outputs()
            .iter()
            .map(|(_, id)| values[id.index()])
            .collect(),
    ))
}
