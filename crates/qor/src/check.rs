//! Strict validator for QoR ledger JSONL (the `--qor=json` sink format and
//! the `qor` note events riding the obs trace).
//!
//! Mirrors `obs::check`: every line must be strict JSON of a known type,
//! every run's summary must agree with its snapshot lines — including the
//! telescoping identity (`delta == last − first`) — and no run may end
//! without a summary.

use crate::ledger::Metrics;
use obs::json::{parse_json, Json};
use std::collections::HashMap;

/// Statistics of a successful [`check_jsonl`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckStats {
    /// Total lines validated.
    pub lines: usize,
    /// `"qor"` snapshot lines.
    pub snapshot_lines: usize,
    /// `"qor_summary"` lines (= completed runs).
    pub runs: usize,
}

fn get_str<'a>(j: &'a Json, key: &str) -> Result<&'a str, String> {
    j.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("missing string `{key}`"))
}

/// Validate a QoR ledger JSONL document.
///
/// Rules:
/// * every non-empty line is strict JSON with `"type"` of `"qor"` or
///   `"qor_summary"`;
/// * `"qor"` lines carry `circuit`/`method`/`stage` strings, a `kind` of
///   `"network"` or `"mapped"`, and the five integer metrics;
/// * each `"qor_summary"` closes the run of its `circuit × method`: its
///   `stages` count, `first`/`last` metrics, and `delta` must match the
///   accumulated snapshot lines exactly (`delta == last − first`);
/// * at end of input no run may remain open (snapshots without a summary).
///
/// # Errors
/// Returns `Err` naming the first offending 1-based line.
pub fn check_jsonl(text: &str) -> Result<CheckStats, String> {
    let mut stats = CheckStats {
        lines: 0,
        snapshot_lines: 0,
        runs: 0,
    };
    // (circuit, method) → metrics of the run's snapshot lines so far.
    let mut open: HashMap<(String, String), Vec<Metrics>> = HashMap::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.trim().is_empty() {
            return Err(format!("line {lineno}: blank line"));
        }
        stats.lines += 1;
        let j = parse_json(line).map_err(|e| format!("line {lineno}: {e}"))?;
        let ty = get_str(&j, "type").map_err(|e| format!("line {lineno}: {e}"))?;
        match ty {
            "qor" => {
                let key = (
                    get_str(&j, "circuit")
                        .map_err(|e| format!("line {lineno}: {e}"))?
                        .to_string(),
                    get_str(&j, "method")
                        .map_err(|e| format!("line {lineno}: {e}"))?
                        .to_string(),
                );
                get_str(&j, "stage").map_err(|e| format!("line {lineno}: {e}"))?;
                let kind = get_str(&j, "kind").map_err(|e| format!("line {lineno}: {e}"))?;
                if kind != "network" && kind != "mapped" {
                    return Err(format!("line {lineno}: unknown kind `{kind}`"));
                }
                let m = Metrics::from_json(&j).map_err(|e| format!("line {lineno}: {e}"))?;
                open.entry(key).or_default().push(m);
                stats.snapshot_lines += 1;
            }
            "qor_summary" => {
                let key = (
                    get_str(&j, "circuit")
                        .map_err(|e| format!("line {lineno}: {e}"))?
                        .to_string(),
                    get_str(&j, "method")
                        .map_err(|e| format!("line {lineno}: {e}"))?
                        .to_string(),
                );
                let snaps = open.remove(&key).unwrap_or_default();
                let stages = j
                    .get("stages")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("line {lineno}: missing `stages`"))?
                    as usize;
                if stages != snaps.len() {
                    return Err(format!(
                        "line {lineno}: summary claims {stages} stage(s) but {} qor line(s) \
                         precede it for {} × {}",
                        snaps.len(),
                        key.0,
                        key.1
                    ));
                }
                if let (Some(first), Some(last)) = (snaps.first(), snaps.last()) {
                    for (field, want) in [
                        ("first", *first),
                        ("last", *last),
                        ("delta", last.delta(first)),
                    ] {
                        let got = j
                            .get(field)
                            .ok_or_else(|| format!("line {lineno}: missing `{field}`"))
                            .and_then(|v| {
                                Metrics::from_json(v).map_err(|e| format!("line {lineno}: {e}"))
                            })?;
                        if got != want {
                            return Err(format!(
                                "line {lineno}: `{field}` disagrees with the qor lines \
                                 (got {got:?}, recomputed {want:?})"
                            ));
                        }
                    }
                } else if j.get("first").is_some() || j.get("delta").is_some() {
                    return Err(format!(
                        "line {lineno}: summary has metrics but no qor lines precede it"
                    ));
                }
                stats.runs += 1;
            }
            other => return Err(format!("line {lineno}: unknown type `{other}`")),
        }
    }
    if let Some(((circuit, method), snaps)) = open.into_iter().next() {
        return Err(format!(
            "unterminated run {circuit} × {method}: {} qor line(s) with no qor_summary",
            snaps.len()
        ));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{LedgerReport, SnapKind, Snapshot};

    fn sample_report() -> LedgerReport {
        let m = |p: i64| Metrics {
            power_muw: p,
            area_milli: 2 * p,
            delay_ps: 3000,
            nodes: 4,
            literals: 8,
        };
        LedgerReport {
            circuit: "c".to_string(),
            method: "IV".to_string(),
            snapshots: vec![
                Snapshot {
                    stage: "initial".to_string(),
                    kind: SnapKind::Network,
                    metrics: m(900),
                },
                Snapshot {
                    stage: "map".to_string(),
                    kind: SnapKind::Mapped,
                    metrics: m(700),
                },
            ],
        }
    }

    #[test]
    fn valid_ledger_passes() {
        let stats = check_jsonl(&sample_report().render_jsonl()).unwrap();
        assert_eq!(stats.lines, 3);
        assert_eq!(stats.snapshot_lines, 2);
        assert_eq!(stats.runs, 1);
    }

    #[test]
    fn interleaved_runs_pass() {
        let a = sample_report();
        let mut b = sample_report();
        b.method = "V".to_string();
        // interleave a's and b's qor lines, summaries at the end
        let mut lines: Vec<String> = Vec::new();
        for (sa, sb) in a.snapshots.iter().zip(&b.snapshots) {
            lines.push(sa.render_json(&a.circuit, &a.method));
            lines.push(sb.render_json(&b.circuit, &b.method));
        }
        let ja = a.render_jsonl();
        let jb = b.render_jsonl();
        lines.push(ja.lines().last().unwrap().to_string());
        lines.push(jb.lines().last().unwrap().to_string());
        let text = lines.join("\n") + "\n";
        assert_eq!(check_jsonl(&text).unwrap().runs, 2);
    }

    #[test]
    fn tampered_delta_fails() {
        let text = sample_report().render_jsonl();
        // corrupt the delta's power field in the summary line
        let tampered = text.replace(
            "\"delta\":{\"power_muw\":-200",
            "\"delta\":{\"power_muw\":-199",
        );
        assert_ne!(text, tampered, "replacement must hit");
        let err = check_jsonl(&tampered).unwrap_err();
        assert!(err.contains("delta"), "{err}");
    }

    #[test]
    fn missing_summary_fails() {
        let text = sample_report().render_jsonl();
        let no_summary: String = text
            .lines()
            .filter(|l| !l.contains("qor_summary"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = check_jsonl(&no_summary).unwrap_err();
        assert!(err.contains("unterminated"), "{err}");
    }

    #[test]
    fn wrong_stage_count_fails() {
        let text = sample_report().render_jsonl();
        let tampered = text.replace("\"stages\":2", "\"stages\":3");
        let err = check_jsonl(&tampered).unwrap_err();
        assert!(err.contains("stage"), "{err}");
    }

    #[test]
    fn garbage_rejected() {
        assert!(check_jsonl("not json\n").is_err());
        assert!(check_jsonl("{\"type\":\"mystery\"}\n").is_err());
        assert!(check_jsonl("{\"type\":\"qor\"}\n").is_err());
        assert!(check_jsonl("\n").is_err());
    }
}
