//! Canonical QoR baselines and regression diffing.
//!
//! A [`Baseline`] is the committed QoR truth for a set of
//! `circuit × method` runs. [`diff`] compares a freshly measured baseline
//! against it with per-metric **relative** tolerances; CI runs with
//! [`Tolerance::zero`] so any drift — better *or* worse — fails loudly and
//! must be re-baselined intentionally.

use crate::ledger::Metrics;
use obs::json::{parse_json, Json};
use std::fmt::Write as _;

/// One baseline row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Circuit name.
    pub circuit: String,
    /// Method label.
    pub method: String,
    /// Final-stage QoR of the run.
    pub metrics: Metrics,
}

/// A set of baseline rows, kept sorted by `(circuit, method)` so the JSON
/// rendering is canonical.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// The rows, sorted by `(circuit, method)`.
    pub entries: Vec<BaselineEntry>,
}

impl Baseline {
    /// An empty baseline.
    pub fn new() -> Baseline {
        Baseline::default()
    }

    /// Insert (or replace) the row for `circuit × method`.
    pub fn insert(&mut self, circuit: &str, method: &str, metrics: Metrics) {
        let key = (circuit.to_string(), method.to_string());
        match self
            .entries
            .binary_search_by(|e| (e.circuit.clone(), e.method.clone()).cmp(&key))
        {
            Ok(i) => self.entries[i].metrics = metrics,
            Err(i) => self.entries.insert(
                i,
                BaselineEntry {
                    circuit: key.0,
                    method: key.1,
                    metrics,
                },
            ),
        }
    }

    /// Look up the row for `circuit × method`.
    pub fn get(&self, circuit: &str, method: &str) -> Option<&Metrics> {
        self.entries
            .iter()
            .find(|e| e.circuit == circuit && e.method == method)
            .map(|e| &e.metrics)
    }

    /// Render as canonical pretty JSON (sorted rows, fixed field order) —
    /// the committed `results/qor_baseline.json` format.
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"entries\": [\n");
        for (i, e) in self.entries.iter().enumerate() {
            let mut row = Vec::with_capacity(7);
            row.push(("circuit".to_string(), Json::Str(e.circuit.clone())));
            row.push(("method".to_string(), Json::Str(e.method.clone())));
            for (k, v) in e.metrics.fields() {
                row.push((k.to_string(), Json::Num(v.to_string())));
            }
            let comma = if i + 1 < self.entries.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", Json::Obj(row).render());
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse the strict-JSON baseline format (accepts any member order and
    /// whitespace; [`Baseline::render_json`] output round-trips).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let j = parse_json(text)?;
        match j.get("version") {
            Some(Json::Num(v)) if v == "1" => {}
            Some(_) => return Err("unsupported baseline version".to_string()),
            None => return Err("missing `version`".to_string()),
        }
        let Some(Json::Arr(rows)) = j.get("entries") else {
            return Err("missing `entries` array".to_string());
        };
        let mut baseline = Baseline::new();
        for (i, row) in rows.iter().enumerate() {
            let s = |key: &str| -> Result<String, String> {
                row.get(key)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("entry {i}: missing string `{key}`"))
            };
            let circuit = s("circuit")?;
            let method = s("method")?;
            let metrics = Metrics::from_json(row).map_err(|e| format!("entry {i}: {e}"))?;
            if baseline.get(&circuit, &method).is_some() {
                return Err(format!("entry {i}: duplicate {circuit} × {method}"));
            }
            baseline.insert(&circuit, &method, metrics);
        }
        Ok(baseline)
    }
}

/// Per-metric **relative** tolerances for [`diff`]. A metric passes when
/// `|new − base| ≤ tol × max(|base|, 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative tolerance on `power_muw`.
    pub power: f64,
    /// Relative tolerance on `area_milli`, `nodes`, and `literals`.
    pub area: f64,
    /// Relative tolerance on `delay_ps`.
    pub delay: f64,
}

impl Tolerance {
    /// Exact match required on every metric (the CI gate).
    pub fn zero() -> Tolerance {
        Tolerance {
            power: 0.0,
            area: 0.0,
            delay: 0.0,
        }
    }

    /// The default gate for interactive use: 2% on every metric.
    pub fn default_gate() -> Tolerance {
        Tolerance {
            power: 0.02,
            area: 0.02,
            delay: 0.02,
        }
    }

    /// A uniform relative tolerance on every metric.
    pub fn uniform(t: f64) -> Tolerance {
        Tolerance {
            power: t,
            area: t,
            delay: t,
        }
    }
}

/// One compared metric of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Circuit name.
    pub circuit: String,
    /// Method label.
    pub method: String,
    /// Metric name (one of the [`Metrics::fields`] names).
    pub metric: &'static str,
    /// Baseline value.
    pub base: i64,
    /// Measured value.
    pub new: i64,
    /// Within tolerance?
    pub ok: bool,
}

/// Result of [`diff`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diff {
    /// Every compared metric, in baseline order.
    pub lines: Vec<DiffLine>,
    /// `circuit × method` keys present in the baseline but missing from
    /// the measurement (always a failure).
    pub missing: Vec<String>,
    /// Keys measured but absent from the baseline (always a failure: the
    /// baseline must be regenerated to cover them).
    pub extra: Vec<String>,
}

impl Diff {
    /// `true` when every metric is within tolerance and the run sets match.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && self.extra.is_empty() && self.lines.iter().all(|l| l.ok)
    }

    /// Number of failing metric comparisons.
    pub fn failures(&self) -> usize {
        self.lines.iter().filter(|l| !l.ok).count() + self.missing.len() + self.extra.len()
    }

    /// Human-readable report: failing metrics first, then a one-line
    /// verdict.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for key in &self.missing {
            let _ = writeln!(out, "MISSING  {key} (in baseline, not measured)");
        }
        for key in &self.extra {
            let _ = writeln!(out, "EXTRA    {key} (measured, not in baseline)");
        }
        for l in self.lines.iter().filter(|l| !l.ok) {
            let _ = writeln!(
                out,
                "DRIFT    {} × {} {}: baseline {} -> measured {}",
                l.circuit, l.method, l.metric, l.base, l.new
            );
        }
        if self.passed() {
            let _ = writeln!(
                out,
                "qor-diff OK: {} metric(s) across {} run(s) within tolerance",
                self.lines.len(),
                self.lines.len() / 5
            );
        } else {
            let _ = writeln!(out, "qor-diff FAILED: {} problem(s)", self.failures());
        }
        out
    }
}

/// Compare `measured` against `base` with per-metric relative tolerances.
pub fn diff(base: &Baseline, measured: &Baseline, tol: &Tolerance) -> Diff {
    let within = |b: i64, n: i64, t: f64| -> bool {
        let err = (n - b).abs() as f64;
        err <= t * (b.abs().max(1)) as f64
    };
    let mut out = Diff::default();
    for e in &base.entries {
        let Some(m) = measured.get(&e.circuit, &e.method) else {
            out.missing.push(format!("{} × {}", e.circuit, e.method));
            continue;
        };
        let tol_for = |metric: &str| match metric {
            "power_muw" => tol.power,
            "delay_ps" => tol.delay,
            _ => tol.area,
        };
        for ((name, b), (_, n)) in e.metrics.fields().iter().zip(m.fields().iter()) {
            out.lines.push(DiffLine {
                circuit: e.circuit.clone(),
                method: e.method.clone(),
                metric: name,
                base: *b,
                new: *n,
                ok: within(*b, *n, tol_for(name)),
            });
        }
    }
    for e in &measured.entries {
        if base.get(&e.circuit, &e.method).is_none() {
            out.extra.push(format!("{} × {}", e.circuit, e.method));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(p: i64, a: i64, d: i64) -> Metrics {
        Metrics {
            power_muw: p,
            area_milli: a,
            delay_ps: d,
            nodes: 3,
            literals: 5,
        }
    }

    #[test]
    fn baseline_json_round_trips() {
        let mut b = Baseline::new();
        b.insert("s510", "V", m(123456, 78000, 4200));
        b.insert("cm42a", "I", m(-1, 0, 1));
        let text = b.render_json();
        let parsed = Baseline::parse(&text).unwrap();
        assert_eq!(parsed, b);
        // canonical: render is a fixed point
        assert_eq!(parsed.render_json(), text);
    }

    #[test]
    fn entries_stay_sorted_and_insert_replaces() {
        let mut b = Baseline::new();
        b.insert("z", "I", m(1, 1, 1));
        b.insert("a", "V", m(2, 2, 2));
        b.insert("a", "I", m(3, 3, 3));
        let keys: Vec<_> = b
            .entries
            .iter()
            .map(|e| (e.circuit.as_str(), e.method.as_str()))
            .collect();
        assert_eq!(keys, vec![("a", "I"), ("a", "V"), ("z", "I")]);
        b.insert("a", "V", m(9, 9, 9));
        assert_eq!(b.entries.len(), 3);
        assert_eq!(b.get("a", "V").unwrap().power_muw, 9);
    }

    #[test]
    fn zero_tolerance_catches_one_milli_unit() {
        let mut base = Baseline::new();
        base.insert("c", "I", m(1000, 2000, 3000));
        let mut moved = base.clone();
        moved.insert("c", "I", m(1001, 2000, 3000));
        assert!(diff(&base, &base, &Tolerance::zero()).passed());
        let d = diff(&base, &moved, &Tolerance::zero());
        assert!(!d.passed());
        assert_eq!(d.failures(), 1);
        assert!(d.render_text().contains("power_muw"));
    }

    #[test]
    fn relative_tolerance_scales_with_baseline() {
        let mut base = Baseline::new();
        base.insert("c", "I", m(10000, 2000, 3000));
        let mut moved = base.clone();
        moved.insert("c", "I", m(10100, 2000, 3000)); // +1%
        assert!(diff(&base, &moved, &Tolerance::uniform(0.02)).passed());
        assert!(!diff(&base, &moved, &Tolerance::uniform(0.005)).passed());
    }

    #[test]
    fn missing_and_extra_runs_fail() {
        let mut base = Baseline::new();
        base.insert("c", "I", m(1, 1, 1));
        let mut other = Baseline::new();
        other.insert("c", "V", m(1, 1, 1));
        let d = diff(&base, &other, &Tolerance::uniform(1.0));
        assert!(!d.passed());
        assert_eq!(d.missing, vec!["c × I"]);
        assert_eq!(d.extra, vec!["c × V"]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("not json").is_err());
        assert!(Baseline::parse("{\"version\": 2, \"entries\": []}").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
        let dup = "{\"version\": 1, \"entries\": [\
                   {\"circuit\":\"c\",\"method\":\"I\",\"power_muw\":1,\"area_milli\":1,\"delay_ps\":1,\"nodes\":1,\"literals\":1},\
                   {\"circuit\":\"c\",\"method\":\"I\",\"power_muw\":2,\"area_milli\":1,\"delay_ps\":1,\"nodes\":1,\"literals\":1}]}";
        assert!(Baseline::parse(dup).unwrap_err().contains("duplicate"));
    }
}
