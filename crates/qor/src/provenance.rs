//! Node provenance: from mapped gates back to the optimized source
//! network, with per-origin power attribution.
//!
//! The chain has two hops, both recorded by the producing stages:
//!
//! 1. every [`MappedInstance`](lowpower_core::map::mapper::MappedInstance)
//!    carries `source`, the subject-network (decomposed) node it covers;
//! 2. every [`DecomposedNetwork`](lowpower_core::decomp::DecomposedNetwork)
//!    carries `provenance`, mapping each decomposition-emitted node back
//!    to the optimized-network node whose tree produced it.
//!
//! [`Provenance::resolve`] composes the hops (identity for primary inputs
//! and nodes the decomposition passed through unchanged), so every mapped
//! gate attributes its power to a node the designer can actually find in
//! the optimized network.

use crate::Ctx;
use genlib::Library;
use lowpower_core::decomp::DecomposedNetwork;
use lowpower_core::map::mapper::NetRef;
use lowpower_core::map::MappedNetwork;
use lowpower_core::power::per_instance_power;
use std::collections::HashMap;

/// Provenance data of one decomposition, queryable by node name.
#[derive(Debug, Clone, Default)]
pub struct Provenance {
    map: HashMap<String, String>,
    /// origin node → (root arrival level, balanced-height estimate).
    heights: HashMap<String, (usize, usize)>,
    /// origin node → applied root-arrival bound (bounded style only).
    bounds: HashMap<String, usize>,
}

/// One mapped gate with its resolved origin and power share.
#[derive(Debug, Clone, PartialEq)]
pub struct GateShare {
    /// Instance name in the mapped netlist.
    pub instance: String,
    /// Library gate name.
    pub gate: String,
    /// Subject-network (decomposed) node the instance covers.
    pub subject: String,
    /// Optimized-network origin node ([`Provenance::resolve`]d).
    pub origin: String,
    /// Zero-delay average power of the instance, µW.
    pub power_uw: f64,
}

impl Provenance {
    /// The identity provenance (no decomposition ran — e.g. a directly
    /// mapped network): every subject node is its own origin.
    pub fn identity() -> Provenance {
        Provenance::default()
    }

    /// Capture the provenance of a decomposition result.
    pub fn from_decomposed(d: &DecomposedNetwork) -> Provenance {
        Provenance {
            map: d.provenance.clone(),
            heights: d
                .node_heights
                .iter()
                .map(|(name, root, balanced)| (name.clone(), (*root, *balanced)))
                .collect(),
            bounds: d.applied_bounds.clone(),
        }
    }

    /// Resolve a subject-network node name to its optimized-network
    /// origin. Names the decomposition did not emit (primary inputs,
    /// untouched nodes) resolve to themselves.
    pub fn resolve<'a>(&'a self, subject: &'a str) -> &'a str {
        self.map.get(subject).map(String::as_str).unwrap_or(subject)
    }

    /// Number of recorded subject → origin edges.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when no edges are recorded (identity provenance).
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Number of subject-network nodes the decomposition emitted for an
    /// origin node (tree gates, buffers, and its shared inverters).
    pub fn subject_count(&self, origin: &str) -> usize {
        self.map.values().filter(|v| v.as_str() == origin).count()
    }

    /// `(root arrival level, balanced-height estimate)` of an origin node,
    /// if the decomposition recorded one. The difference is the paper's
    /// `depth_surplus` — the slack the bounded style spends on power.
    pub fn height(&self, origin: &str) -> Option<(usize, usize)> {
        self.heights.get(origin).copied()
    }

    /// The root-arrival bound the bounded pass applied to an origin node.
    pub fn bound(&self, origin: &str) -> Option<usize> {
        self.bounds.get(origin).copied()
    }

    /// Per-gate power shares with resolved origins, in instance order.
    /// The shares sum to `evaluate(..).power_uw` exactly (same estimator).
    pub fn gate_shares(&self, m: &MappedNetwork, lib: &Library, ctx: &Ctx) -> Vec<GateShare> {
        let powers = per_instance_power(m, lib, &ctx.env, ctx.model, ctx.po_load);
        m.instances
            .iter()
            .zip(powers)
            .map(|(inst, power_uw)| GateShare {
                instance: inst.name.clone(),
                gate: lib.gates()[inst.gate].name().to_string(),
                subject: inst.source.clone(),
                origin: self.resolve(&inst.source).to_string(),
                power_uw,
            })
            .collect()
    }

    /// Total power per origin node, sorted by descending power (name
    /// breaks ties, so the order is deterministic).
    pub fn origin_breakdown(shares: &[GateShare]) -> Vec<(String, f64)> {
        let mut by_origin: HashMap<&str, f64> = HashMap::new();
        for s in shares {
            *by_origin.entry(&s.origin).or_insert(0.0) += s.power_uw;
        }
        let mut out: Vec<(String, f64)> = by_origin
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0)));
        out
    }
}

/// Per-output-cone power breakdown: for each primary output, the summed
/// zero-delay power of every gate in its transitive fanin cone, in output
/// order. Gates shared between cones are counted in each (the columns
/// answer "what does this output's logic burn?", not a partition).
pub fn cone_powers(m: &MappedNetwork, lib: &Library, ctx: &Ctx) -> Vec<(String, f64)> {
    let powers = per_instance_power(m, lib, &ctx.env, ctx.model, ctx.po_load);
    m.outputs
        .iter()
        .map(|(name, root)| {
            let mut seen = vec![false; m.instances.len()];
            let mut stack = vec![*root];
            let mut total = 0.0;
            while let Some(r) = stack.pop() {
                let NetRef::Inst(i) = r else { continue };
                if std::mem::replace(&mut seen[i], true) {
                    continue;
                }
                total += powers[i];
                stack.extend(m.instances[i].inputs.iter().copied());
            }
            (name.clone(), total)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use activity::{analyze, TransitionModel};
    use lowpower_core::decomp::{decompose_network, DecompOptions, DecompStyle};
    use lowpower_core::map::{map_network, MapOptions, SubjectAig};
    use lowpower_core::power::evaluate;
    use netlist::parse_blif;

    const SAMPLE: &str = ".model t\n.inputs a b c d\n.outputs f g\n\
                          .names a b c x\n111 1\n100 1\n\
                          .names x d f\n11 1\n\
                          .names x c g\n1- 1\n-1 1\n.end\n";

    fn flow() -> (Provenance, MappedNetwork, Library, Vec<String>) {
        let net = parse_blif(SAMPLE).unwrap().network;
        let opts = DecompOptions {
            style: DecompStyle::MinPower,
            model: TransitionModel::StaticCmos,
            pi_probs: None,
            required_time: None,
            use_correlations: false,
        };
        let d = decompose_network(&net, &opts);
        let prov = Provenance::from_decomposed(&d);
        let act = analyze(&d.network, &[0.5; 4], TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&d.network, &act).unwrap();
        let lib = genlib::builtin::lib2_like();
        let m = map_network(&aig, &lib, &MapOptions::power()).unwrap();
        let originals: Vec<String> = net
            .node_ids()
            .map(|id| net.node(id).name().to_string())
            .collect();
        (prov, m, lib, originals)
    }

    #[test]
    fn every_gate_resolves_to_an_original_node() {
        let (prov, m, lib, originals) = flow();
        let shares = prov.gate_shares(&m, &lib, &Ctx::default());
        assert_eq!(shares.len(), m.instances.len());
        for s in &shares {
            assert!(
                originals.iter().any(|o| o == &s.origin),
                "gate {} (subject {}) resolved to unknown origin {}",
                s.instance,
                s.subject,
                s.origin
            );
        }
    }

    #[test]
    fn shares_sum_to_evaluate_power() {
        let (prov, m, lib, _) = flow();
        let ctx = Ctx::default();
        let shares = prov.gate_shares(&m, &lib, &ctx);
        let total: f64 = shares.iter().map(|s| s.power_uw).sum();
        let rep = evaluate(&m, &lib, &ctx.env, ctx.model, ctx.po_load);
        assert!(
            (total - rep.power_uw).abs() < 1e-12,
            "shares {total} vs evaluate {}",
            rep.power_uw
        );
    }

    #[test]
    fn origin_breakdown_conserves_power_and_sorts() {
        let (prov, m, lib, _) = flow();
        let shares = prov.gate_shares(&m, &lib, &Ctx::default());
        let breakdown = Provenance::origin_breakdown(&shares);
        let total: f64 = shares.iter().map(|s| s.power_uw).sum();
        let btotal: f64 = breakdown.iter().map(|(_, p)| p).sum();
        assert!((total - btotal).abs() < 1e-12);
        for w in breakdown.windows(2) {
            assert!(w[0].1 >= w[1].1, "not sorted: {breakdown:?}");
        }
    }

    #[test]
    fn cone_powers_cover_every_output() {
        let (_, m, lib, _) = flow();
        let cones = cone_powers(&m, &lib, &Ctx::default());
        assert_eq!(cones.len(), m.outputs.len());
        for (name, p) in &cones {
            assert!(*p >= 0.0, "{name} negative power");
        }
    }

    #[test]
    fn identity_provenance_resolves_to_self() {
        let prov = Provenance::identity();
        assert!(prov.is_empty());
        assert_eq!(prov.resolve("anything"), "anything");
    }

    #[test]
    fn heights_and_bounds_query_by_origin() {
        let net = parse_blif(SAMPLE).unwrap().network;
        let opts = DecompOptions {
            style: DecompStyle::BoundedMinPower,
            model: TransitionModel::StaticCmos,
            pi_probs: None,
            required_time: None,
            use_correlations: false,
        };
        let d = decompose_network(&net, &opts);
        let prov = Provenance::from_decomposed(&d);
        for (name, root, balanced) in &d.node_heights {
            assert_eq!(prov.height(name), Some((*root, *balanced)));
        }
        for (name, b) in &d.applied_bounds {
            assert_eq!(prov.bound(name), Some(*b));
        }
    }
}
