//! The ledger itself: fixed-point metrics, per-stage snapshots, and the
//! waterfall / JSONL renderings.

use obs::json::Json;

/// Convert a floating quantity to fixed-point milli-units (round half away
/// from zero, the default of `f64::round`).
pub fn milli(x: f64) -> i64 {
    (x * 1000.0).round() as i64
}

/// Render a milli-unit fixed-point value as a decimal string with exactly
/// three fractional digits (`-1234` → `"-1.234"`).
pub fn fmt_milli(v: i64) -> String {
    let sign = if v < 0 { "-" } else { "" };
    let a = v.unsigned_abs();
    format!("{sign}{}.{:03}", a / 1000, a % 1000)
}

/// One QoR measurement in fixed-point integer units.
///
/// Integer units are the point: consecutive-snapshot deltas telescope, so
/// per-stage attribution sums to the end-to-end change *exactly* — no
/// float accumulation error, and byte-identical renderings everywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Metrics {
    /// Average power in milli-µW. For unmapped networks this is the
    /// activity proxy (total switching at unit load); for mapped netlists
    /// it is the zero-delay estimate with real pin loads.
    pub power_muw: i64,
    /// Area in milli-units: `1000 ×` SOP literals (unmapped) or cell area
    /// (mapped).
    pub area_milli: i64,
    /// Delay in picoseconds: unit-delay depth `× 1000` (unmapped) or the
    /// library-model critical path (mapped).
    pub delay_ps: i64,
    /// Logic-node count (unmapped) or gate-instance count (mapped).
    pub nodes: i64,
    /// SOP literal count (unmapped) or total gate input pins (mapped).
    pub literals: i64,
}

impl Metrics {
    /// The all-zero metrics (also the delta of two identical snapshots).
    pub const ZERO: Metrics = Metrics {
        power_muw: 0,
        area_milli: 0,
        delay_ps: 0,
        nodes: 0,
        literals: 0,
    };

    /// Element-wise difference `self − other`.
    pub fn delta(&self, other: &Metrics) -> Metrics {
        Metrics {
            power_muw: self.power_muw - other.power_muw,
            area_milli: self.area_milli - other.area_milli,
            delay_ps: self.delay_ps - other.delay_ps,
            nodes: self.nodes - other.nodes,
            literals: self.literals - other.literals,
        }
    }

    /// Element-wise sum `self + other`.
    pub fn plus(&self, other: &Metrics) -> Metrics {
        Metrics {
            power_muw: self.power_muw + other.power_muw,
            area_milli: self.area_milli + other.area_milli,
            delay_ps: self.delay_ps + other.delay_ps,
            nodes: self.nodes + other.nodes,
            literals: self.literals + other.literals,
        }
    }

    /// `(name, value)` pairs in canonical order, for serialization.
    pub fn fields(&self) -> [(&'static str, i64); 5] {
        [
            ("power_muw", self.power_muw),
            ("area_milli", self.area_milli),
            ("delay_ps", self.delay_ps),
            ("nodes", self.nodes),
            ("literals", self.literals),
        ]
    }

    /// As a JSON object in canonical field order.
    pub fn to_json(&self) -> Json {
        Json::Obj(
            self.fields()
                .iter()
                .map(|(k, v)| (k.to_string(), Json::Num(v.to_string())))
                .collect(),
        )
    }

    /// Parse from a JSON object carrying the five canonical fields.
    pub fn from_json(j: &Json) -> Result<Metrics, String> {
        let int = |key: &str| -> Result<i64, String> {
            match j.get(key) {
                Some(Json::Num(raw)) => raw
                    .parse::<i64>()
                    .map_err(|_| format!("`{key}` is not an integer: {raw}")),
                Some(_) => Err(format!("`{key}` is not a number")),
                None => Err(format!("missing `{key}`")),
            }
        };
        Ok(Metrics {
            power_muw: int("power_muw")?,
            area_milli: int("area_milli")?,
            delay_ps: int("delay_ps")?,
            nodes: int("nodes")?,
            literals: int("literals")?,
        })
    }
}

/// What kind of artifact a snapshot measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapKind {
    /// An unmapped logic network (optimization / decomposition stages).
    Network,
    /// A mapped netlist.
    Mapped,
}

impl SnapKind {
    /// Serialization name.
    pub fn as_str(self) -> &'static str {
        match self {
            SnapKind::Network => "network",
            SnapKind::Mapped => "mapped",
        }
    }
}

/// One ledger entry: the QoR of the flow state right after `stage` ran.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Stage label, e.g. `"initial"`, `"optimize.1.sweep"`, `"decompose"`,
    /// `"map"`.
    pub stage: String,
    /// Artifact kind measured.
    pub kind: SnapKind,
    /// The measurement.
    pub metrics: Metrics,
}

impl Snapshot {
    /// Render as one strict-JSON ledger line (`"type": "qor"`).
    pub fn render_json(&self, circuit: &str, method: &str) -> String {
        let mut members = vec![
            ("type".to_string(), Json::Str("qor".to_string())),
            ("circuit".to_string(), Json::Str(circuit.to_string())),
            ("method".to_string(), Json::Str(method.to_string())),
            ("stage".to_string(), Json::Str(self.stage.clone())),
            (
                "kind".to_string(),
                Json::Str(self.kind.as_str().to_string()),
            ),
        ];
        for (k, v) in self.metrics.fields() {
            members.push((k.to_string(), Json::Num(v.to_string())));
        }
        Json::Obj(members).render()
    }
}

/// The finished ledger of one `circuit × method` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerReport {
    /// Circuit name.
    pub circuit: String,
    /// Method label (e.g. `"V"`).
    pub method: String,
    /// Snapshots in recording order.
    pub snapshots: Vec<Snapshot>,
}

impl LedgerReport {
    /// Per-stage deltas: for each snapshot after the first, `(stage,
    /// metrics − previous metrics)`. Deltas telescope by construction, so
    /// their sum equals [`LedgerReport::end_to_end`] exactly.
    pub fn deltas(&self) -> Vec<(String, Metrics)> {
        self.snapshots
            .windows(2)
            .map(|w| (w[1].stage.clone(), w[1].metrics.delta(&w[0].metrics)))
            .collect()
    }

    /// `last − first`, or `None` with fewer than two snapshots.
    pub fn end_to_end(&self) -> Option<Metrics> {
        match (self.snapshots.first(), self.snapshots.last()) {
            (Some(f), Some(l)) if self.snapshots.len() >= 2 => Some(l.metrics.delta(&f.metrics)),
            _ => None,
        }
    }

    /// The final snapshot's metrics, if any.
    pub fn final_metrics(&self) -> Option<Metrics> {
        self.snapshots.last().map(|s| s.metrics)
    }

    /// Render the per-stage waterfall as an aligned text table. Power and
    /// area print in whole units (three decimals), delay in ns; Δ columns
    /// show each stage's attribution.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "QoR ledger: {} method {}", self.circuit, self.method);
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>7} {:>7}",
            "stage", "power", "Δpower", "area", "Δarea", "delay", "Δdelay", "nodes", "lits"
        );
        let mut prev: Option<Metrics> = None;
        for s in &self.snapshots {
            let d = prev.map(|p| s.metrics.delta(&p));
            let dcol = |f: fn(&Metrics) -> i64| {
                d.as_ref()
                    .map(|d| fmt_milli(f(d)))
                    .unwrap_or_else(|| "-".to_string())
            };
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>7} {:>7}",
                s.stage,
                fmt_milli(s.metrics.power_muw),
                dcol(|m| m.power_muw),
                fmt_milli(s.metrics.area_milli),
                dcol(|m| m.area_milli),
                fmt_milli(s.metrics.delay_ps),
                dcol(|m| m.delay_ps),
                s.metrics.nodes,
                s.metrics.literals,
            );
            prev = Some(s.metrics);
        }
        if let Some(e) = self.end_to_end() {
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>12} {:>12} {:>12} {:>10} {:>10} {:>7} {:>7}",
                "end-to-end",
                "",
                fmt_milli(e.power_muw),
                "",
                fmt_milli(e.area_milli),
                "",
                fmt_milli(e.delay_ps),
                e.nodes,
                e.literals,
            );
        }
        out
    }

    /// Render as strict JSONL: one `"qor"` line per snapshot, then one
    /// `"qor_summary"` line with the stage count, first/last metrics, and
    /// the end-to-end delta. [`crate::check::check_jsonl`] validates this
    /// format (including the telescoping identity).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.snapshots {
            out.push_str(&s.render_json(&self.circuit, &self.method));
            out.push('\n');
        }
        let mut members = vec![
            ("type".to_string(), Json::Str("qor_summary".to_string())),
            ("circuit".to_string(), Json::Str(self.circuit.clone())),
            ("method".to_string(), Json::Str(self.method.clone())),
            (
                "stages".to_string(),
                Json::Num(self.snapshots.len().to_string()),
            ),
        ];
        if let (Some(f), Some(l)) = (self.snapshots.first(), self.snapshots.last()) {
            members.push(("first".to_string(), f.metrics.to_json()));
            members.push(("last".to_string(), l.metrics.to_json()));
            members.push(("delta".to_string(), l.metrics.delta(&f.metrics).to_json()));
        }
        out.push_str(&Json::Obj(members).render());
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(p: i64, a: i64, d: i64, n: i64, l: i64) -> Metrics {
        Metrics {
            power_muw: p,
            area_milli: a,
            delay_ps: d,
            nodes: n,
            literals: l,
        }
    }

    fn report() -> LedgerReport {
        LedgerReport {
            circuit: "c".to_string(),
            method: "V".to_string(),
            snapshots: vec![
                Snapshot {
                    stage: "initial".to_string(),
                    kind: SnapKind::Network,
                    metrics: m(1000, 9000, 3000, 9, 9),
                },
                Snapshot {
                    stage: "optimize".to_string(),
                    kind: SnapKind::Network,
                    metrics: m(800, 7000, 3000, 7, 7),
                },
                Snapshot {
                    stage: "map".to_string(),
                    kind: SnapKind::Mapped,
                    metrics: m(650, 12000, 2500, 5, 11),
                },
            ],
        }
    }

    #[test]
    fn deltas_telescope_exactly() {
        let r = report();
        let sum = r
            .deltas()
            .iter()
            .fold(Metrics::ZERO, |acc, (_, d)| acc.plus(d));
        assert_eq!(sum, r.end_to_end().unwrap());
    }

    #[test]
    fn fmt_milli_handles_signs_and_padding() {
        assert_eq!(fmt_milli(0), "0.000");
        assert_eq!(fmt_milli(1), "0.001");
        assert_eq!(fmt_milli(-1), "-0.001");
        assert_eq!(fmt_milli(1234), "1.234");
        assert_eq!(fmt_milli(-12045), "-12.045");
    }

    #[test]
    fn milli_rounds_to_nearest() {
        assert_eq!(milli(1.2344), 1234);
        assert_eq!(milli(1.2345), 1235); // round half away from zero
        assert_eq!(milli(-0.0005), -1);
    }

    #[test]
    fn metrics_json_round_trips() {
        let v = m(-5, 0, 123, 7, 9);
        let parsed = Metrics::from_json(&v.to_json()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn jsonl_lines_parse_and_check() {
        let text = report().render_jsonl();
        let stats = crate::check::check_jsonl(&text).unwrap();
        assert_eq!(stats.snapshot_lines, 3);
        assert_eq!(stats.runs, 1);
    }

    #[test]
    fn render_text_mentions_every_stage() {
        let t = report().render_text();
        for stage in ["initial", "optimize", "map", "end-to-end"] {
            assert!(t.contains(stage), "missing {stage} in\n{t}");
        }
    }
}
