//! QoR ledger: per-stage power/delay attribution, node provenance, and
//! baseline regression gating for the synthesis flow.
//!
//! Three concerns, one crate:
//!
//! * **Ledger** ([`Session`], [`LedgerReport`]) — a thread-local recording
//!   session mirroring `obs::Session`. While a session is live, every call
//!   to [`snapshot_network`] / [`snapshot_decomposed`] / [`snapshot_mapped`]
//!   appends one deterministic [`Snapshot`] of quality-of-results metrics,
//!   so each optimization pass, the decomposition, and the mapping get
//!   their QoR delta attributed by name. All metrics are **fixed-point
//!   integers** ([`Metrics`]): per-stage deltas are consecutive integer
//!   differences, so they telescope — the sum of all deltas equals
//!   `final − initial` *exactly*, and reports render byte-identically on
//!   every run and thread count.
//! * **Provenance** ([`Provenance`]) — resolves every mapped gate instance
//!   back to the node of the optimized source network whose decomposition
//!   produced it, and attributes per-gate power shares to those origins.
//! * **Baselines** ([`Baseline`], [`baseline::diff`]) — canonical QoR
//!   snapshots per `circuit × method`, serialized as strict JSON, diffed
//!   with per-metric relative tolerances so CI can fail on QoR drift.
//!
//! When an `obs` session is also live, every snapshot rides the obs JSONL
//! sink as a silent note event ([`obs::note_event`]), so one trace file
//! carries both timing spans and QoR waterfalls.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod check;
pub mod ledger;
pub mod provenance;

pub use baseline::{Baseline, BaselineEntry, Diff, DiffLine, Tolerance};
pub use ledger::{fmt_milli, milli, LedgerReport, Metrics, SnapKind, Snapshot};
pub use provenance::{cone_powers, GateShare, Provenance};

use genlib::Library;
use lowpower_core::decomp::DecomposedNetwork;
use lowpower_core::map::MappedNetwork;
use lowpower_core::power::evaluate;
use netlist::Network;
use std::cell::RefCell;
use std::marker::PhantomData;

use activity::{PowerEnv, TransitionModel};

/// Measurement context: everything a QoR snapshot needs besides the
/// artifact itself. Matches the flow configuration so ledger numbers agree
/// exactly with the flow's own evaluation.
#[derive(Debug, Clone)]
pub struct Ctx {
    /// `P(pi = 1)` per primary input; `None` (or a length mismatch with
    /// the measured network, e.g. after a pass dropped dead inputs) falls
    /// back to 0.5 everywhere.
    pub pi_probs: Option<Vec<f64>>,
    /// Transition model for switching-activity estimation.
    pub model: TransitionModel,
    /// Electrical environment (voltage/frequency) for power numbers.
    pub env: PowerEnv,
    /// Capacitive load on every primary output of a mapped netlist.
    pub po_load: f64,
}

impl Default for Ctx {
    fn default() -> Self {
        Ctx {
            pi_probs: None,
            model: TransitionModel::StaticCmos,
            env: PowerEnv::new(),
            po_load: 1.0,
        }
    }
}

impl Ctx {
    fn probs_for(&self, n_pi: usize) -> Vec<f64> {
        match &self.pi_probs {
            Some(p) if p.len() == n_pi => p.clone(),
            _ => vec![0.5; n_pi],
        }
    }
}

/// Measure an unmapped logic network.
///
/// Power is the activity-weighted proxy of eqs. 5–11: total switching of
/// all logic nodes under `ctx`, each node charged one unit of capacitance
/// (before mapping there are no real gate loads yet). Area is the
/// SOP literal count, delay the unit-delay depth. Everything lands in
/// fixed-point [`Metrics`] units.
pub fn measure_network(net: &Network, ctx: &Ctx) -> Metrics {
    let probs = ctx.probs_for(net.inputs().len());
    let act = activity::analyze(net, &probs, ctx.model);
    let total_switching = act.total_switching(net.logic_ids());
    Metrics {
        power_muw: milli(ctx.env.average_power_uw(1.0, total_switching)),
        area_milli: net.literal_count() as i64 * 1000,
        delay_ps: netlist::traversal::depth(net) * 1000,
        nodes: net.logic_count() as i64,
        literals: net.literal_count() as i64,
    }
}

/// Measure a mapped netlist: the numbers of
/// [`evaluate`](lowpower_core::power::evaluate) (zero-delay power, cell
/// area, library-model delay, gate count) in fixed-point [`Metrics`]
/// units; `literals` counts total gate input pins.
pub fn measure_mapped(m: &MappedNetwork, lib: &Library, ctx: &Ctx) -> Metrics {
    let rep = evaluate(m, lib, &ctx.env, ctx.model, ctx.po_load);
    Metrics {
        power_muw: milli(rep.power_uw),
        area_milli: milli(rep.area),
        delay_ps: milli(rep.delay),
        nodes: rep.gate_count as i64,
        literals: m.instances.iter().map(|i| i.inputs.len() as i64).sum(),
    }
}

struct State {
    ctx: Ctx,
    circuit: String,
    method: String,
    snapshots: Vec<Snapshot>,
}

thread_local! {
    static LEDGER: RefCell<Option<State>> = const { RefCell::new(None) };
}

/// `true` while a [`Session`] is recording on this thread.
pub fn active() -> bool {
    LEDGER.with(|l| l.borrow().is_some())
}

/// A live QoR recording session (thread-local, like `obs::Session`).
///
/// Snapshot calls are no-ops unless a session is live, so library code can
/// emit snapshots unconditionally; whoever starts the session owns the
/// resulting [`LedgerReport`].
pub struct Session {
    _not_send: PhantomData<*const ()>,
}

impl Session {
    /// Start recording for one `circuit × method` run.
    ///
    /// # Panics
    /// Panics if a session is already recording on this thread — nested
    /// ledgers would silently interleave unrelated runs.
    pub fn start(circuit: &str, method: &str, ctx: Ctx) -> Session {
        LEDGER.with(|l| {
            let mut slot = l.borrow_mut();
            assert!(
                slot.is_none(),
                "qor: a ledger session is already recording on this thread"
            );
            *slot = Some(State {
                ctx,
                circuit: circuit.to_string(),
                method: method.to_string(),
                snapshots: Vec::new(),
            });
        });
        Session {
            _not_send: PhantomData,
        }
    }

    /// Stop recording and return the ledger.
    pub fn finish(self) -> LedgerReport {
        let state = LEDGER
            .with(|l| l.borrow_mut().take())
            .expect("qor session state");
        std::mem::forget(self);
        LedgerReport {
            circuit: state.circuit,
            method: state.method,
            snapshots: state.snapshots,
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        LEDGER.with(|l| l.borrow_mut().take());
    }
}

fn record(stage: &str, kind: SnapKind, measure: impl FnOnce(&Ctx) -> Metrics) {
    LEDGER.with(|l| {
        let mut slot = l.borrow_mut();
        let Some(state) = slot.as_mut() else { return };
        let snap = Snapshot {
            stage: stage.to_string(),
            kind,
            metrics: measure(&state.ctx),
        };
        obs::counter!("qor.snapshots");
        obs::note_event!("{}", snap.render_json(&state.circuit, &state.method));
        state.snapshots.push(snap);
    });
}

/// Record a snapshot of an unmapped network ([`measure_network`]) under
/// `stage`. No-op when no session is live.
pub fn snapshot_network(stage: &str, net: &Network) {
    record(stage, SnapKind::Network, |ctx| measure_network(net, ctx));
}

/// Record a snapshot of a decomposition result (its network, via
/// [`measure_network`]). No-op when no session is live.
pub fn snapshot_decomposed(stage: &str, d: &DecomposedNetwork) {
    record(stage, SnapKind::Network, |ctx| {
        measure_network(&d.network, ctx)
    });
}

/// Record a snapshot of a mapped netlist ([`measure_mapped`]) under
/// `stage`. No-op when no session is live.
pub fn snapshot_mapped(stage: &str, m: &MappedNetwork, lib: &Library) {
    record(stage, SnapKind::Mapped, |ctx| measure_mapped(m, lib, ctx));
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::parse_blif;

    const SAMPLE: &str = ".model t\n.inputs a b c\n.outputs f\n.names a b x\n11 1\n\
                          .names x c f\n1- 1\n-1 1\n.end\n";

    #[test]
    fn snapshots_are_noops_without_a_session() {
        let net = parse_blif(SAMPLE).unwrap().network;
        assert!(!active());
        snapshot_network("nowhere", &net); // must not panic or record
        assert!(!active());
    }

    #[test]
    fn session_collects_snapshots_in_order() {
        let net = parse_blif(SAMPLE).unwrap().network;
        let s = Session::start("t", "V", Ctx::default());
        assert!(active());
        snapshot_network("initial", &net);
        snapshot_network("after", &net);
        let report = s.finish();
        assert!(!active());
        assert_eq!(report.circuit, "t");
        assert_eq!(report.method, "V");
        assert_eq!(report.snapshots.len(), 2);
        assert_eq!(report.snapshots[0].stage, "initial");
        // identical network => zero delta
        let e2e = report.end_to_end().unwrap();
        assert_eq!(e2e, Metrics::ZERO);
    }

    #[test]
    fn dropped_session_clears_state() {
        let s = Session::start("t", "I", Ctx::default());
        drop(s);
        assert!(!active());
    }

    #[test]
    #[should_panic(expected = "already recording")]
    fn nested_sessions_panic() {
        let _a = Session::start("t", "I", Ctx::default());
        let _b = Session::start("t", "II", Ctx::default());
    }

    #[test]
    fn measure_network_is_deterministic() {
        let net = parse_blif(SAMPLE).unwrap().network;
        let ctx = Ctx::default();
        assert_eq!(measure_network(&net, &ctx), measure_network(&net, &ctx));
    }

    #[test]
    fn pi_prob_length_mismatch_falls_back() {
        let net = parse_blif(SAMPLE).unwrap().network;
        let bad = Ctx {
            pi_probs: Some(vec![0.9]), // 3 PIs in SAMPLE
            ..Ctx::default()
        };
        let a = measure_network(&net, &bad);
        let b = measure_network(&net, &Ctx::default());
        assert_eq!(a, b);
    }
}
