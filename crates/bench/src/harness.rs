//! Table 2/3 harness: run all six methods per circuit, compute summaries.

use genlib::Library;
use lowpower::flow::{optimize, run_method, FlowConfig, Method};
use netlist::Network;

/// The six (area, delay, power) triples of one circuit, in method order.
#[derive(Debug, Clone)]
pub struct SuiteRow {
    /// Circuit name.
    pub name: String,
    /// Per-method `(gate area, delay ns, average power µW)`.
    pub methods: Vec<(f64, f64, f64)>,
}

/// Run all six methods (or a subset) on one circuit.
///
/// # Panics
/// Panics when a method fails end-to-end — the suite circuits are
/// guaranteed mappable.
pub fn run_suite_row(
    net: &Network,
    lib: &Library,
    cfg: &FlowConfig,
    methods: &[Method],
) -> SuiteRow {
    let optimized = optimize(net);
    // Common timing target for every method: the delay achieved by the
    // conventional ad-map flow (method I) when pushed to its fastest — the
    // paper's "no performance degradation" comparison point.
    let cfg = match cfg.required_time {
        Some(_) => cfg.clone(),
        None => {
            let probe = run_method(&optimized, lib, Method::I, cfg)
                .unwrap_or_else(|e| panic!("method I failed on {}: {e}", net.name()));
            // 10 % slack over the conventional flow's fastest estimate gives
            // every method room to trade speed for area/power, like the
            // paper's "given timing constraints".
            let target = probe.mapped.estimated_fastest * 1.10;
            FlowConfig {
                required_time: Some(target),
                ..cfg.clone()
            }
        }
    };
    let mut rows = Vec::with_capacity(methods.len());
    for &m in methods {
        let r = run_method(&optimized, lib, m, &cfg)
            .unwrap_or_else(|e| panic!("method {m} failed on {}: {e}", net.name()));
        rows.push((r.report.area, r.report.delay, r.glitch_power_uw));
    }
    SuiteRow {
        name: net.name().to_string(),
        methods: rows,
    }
}

/// The Section 4 summary claims, as geometric-mean ratios in percent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Power change of minpower decomp vs conventional (II/I and V/IV
    /// averaged), percent (negative = improvement). Paper: ≈ −3.7 %.
    pub minpower_decomp_power_pct: f64,
    /// Power change of bounded-height vs minpower decomp (III/II, VI/V),
    /// percent. Paper: ≈ −1.6 %.
    pub bounded_power_pct: f64,
    /// Delay change of bounded-height vs minpower decomp, percent.
    /// Paper: ≈ −1.6 %.
    pub bounded_delay_pct: f64,
    /// Power change of pd-map vs ad-map (IV–VI vs I–III), percent.
    /// Paper: ≈ −22 %.
    pub pdmap_power_pct: f64,
    /// Area change of pd-map vs ad-map, percent. Paper: ≈ +12.4 %.
    pub pdmap_area_pct: f64,
    /// Delay change of pd-map vs ad-map, percent. Paper: ≈ −1.1 %.
    pub pdmap_delay_pct: f64,
}

fn geo_mean_ratio_pct(pairs: &[(f64, f64)]) -> f64 {
    let pairs: Vec<&(f64, f64)> = pairs
        .iter()
        .filter(|(num, den)| *num > 0.0 && *den > 0.0)
        .collect();
    if pairs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = pairs.iter().map(|(num, den)| (num / den).ln()).sum();
    ((log_sum / pairs.len() as f64).exp() - 1.0) * 100.0
}

/// Compute the Section 4 summary from full six-method rows.
///
/// # Panics
/// Panics if any row has fewer than six method entries.
pub fn summarize(rows: &[SuiteRow]) -> Summary {
    let get = |r: &SuiteRow, m: usize| r.methods[m];
    let mut mp_power = Vec::new();
    let mut bh_power = Vec::new();
    let mut bh_delay = Vec::new();
    let mut pd_power = Vec::new();
    let mut pd_area = Vec::new();
    let mut pd_delay = Vec::new();
    for r in rows {
        assert!(r.methods.len() >= 6, "need all six methods");
        let (a1, d1, p1) = get(r, 0);
        let (a2, d2, p2) = get(r, 1);
        let (_a3, d3, p3) = get(r, 2);
        let (a4, d4, p4) = get(r, 3);
        let (a5, d5, p5) = get(r, 4);
        let (a6, d6, p6) = get(r, 5);
        // minpower decomp effect: II vs I, V vs IV
        mp_power.push((p2, p1));
        mp_power.push((p5, p4));
        // bounded-height effect: III vs II, VI vs V
        bh_power.push((p3, p2));
        bh_power.push((p6, p5));
        bh_delay.push((d3, d2));
        bh_delay.push((d6, d5));
        // pd-map effect: IV vs I, V vs II, VI vs III
        pd_power.push((p4, p1));
        pd_power.push((p5, p2));
        pd_power.push((p6, p3));
        pd_area.push((a4, a1));
        pd_area.push((a5, a2));
        pd_area.push((a6, get(r, 2).0));
        pd_delay.push((d4, d1));
        pd_delay.push((d5, d2));
        pd_delay.push((d6, d3));
        let _ = (a2, a5, a6, d1, d4);
    }
    Summary {
        minpower_decomp_power_pct: geo_mean_ratio_pct(&mp_power),
        bounded_power_pct: geo_mean_ratio_pct(&bh_power),
        bounded_delay_pct: geo_mean_ratio_pct(&bh_delay),
        pdmap_power_pct: geo_mean_ratio_pct(&pd_power),
        pdmap_area_pct: geo_mean_ratio_pct(&pd_area),
        pdmap_delay_pct: geo_mean_ratio_pct(&pd_delay),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use genlib::builtin::lib2_like;

    #[test]
    fn one_small_circuit_all_methods() {
        let net = benchgen::suite_circuit("cm42a");
        let lib = lib2_like();
        let cfg = FlowConfig::default();
        let row = run_suite_row(&net, &lib, &cfg, &Method::ALL);
        assert_eq!(row.methods.len(), 6);
        for &(a, d, p) in &row.methods {
            assert!(a > 0.0 && d > 0.0 && p > 0.0);
        }
        // pd-map (IV) must not dissipate meaningfully more power than
        // ad-map (I); the glitch simulation is stochastic, so allow a 10 %
        // band (cm42a's covers are nearly identical under both objectives).
        assert!(
            row.methods[3].2 <= row.methods[0].2 * 1.10,
            "pd-map power {} vs ad-map {}",
            row.methods[3].2,
            row.methods[0].2
        );
    }

    #[test]
    fn summary_math() {
        let rows = vec![SuiteRow {
            name: "x".into(),
            methods: vec![
                (100.0, 10.0, 100.0),
                (100.0, 10.0, 96.0),
                (100.0, 10.0, 95.0),
                (112.0, 10.0, 78.0),
                (112.0, 10.0, 75.0),
                (112.0, 10.0, 74.0),
            ],
        }];
        let s = summarize(&rows);
        assert!(s.minpower_decomp_power_pct < 0.0);
        assert!(s.pdmap_power_pct < -20.0);
        assert!(s.pdmap_area_pct > 10.0);
    }
}
