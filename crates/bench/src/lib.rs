//! Shared harness for regenerating the paper's tables and figures.
//!
//! Binaries:
//! * `table1`   — Modified Huffman optimality percentages (paper Table 1).
//! * `tables23` — methods I–VI over the benchmark suite (paper Tables 2–3)
//!   plus the summary claims of Section 4.
//! * `figure1`  — the worked 4-input AND example of Figure 1.
//!
//! Criterion benches (in `benches/`) measure runtime scaling of the
//! decomposition algorithms, the BDD probability engine and the mapper.

pub mod harness;

pub use harness::{run_suite_row, summarize, SuiteRow, Summary};
