//! Regenerates **Tables 2 and 3** of the paper: gate area, delay and
//! average power of the six method combinations over the benchmark suite,
//! plus the Section 4 summary claims.
//!
//! Methods:
//!   I/II/III — area-delay mapping with conventional / MINPOWER /
//!              bounded-height MINPOWER decomposition,
//!   IV/V/VI  — the same decompositions with power-delay mapping.
//!
//! Usage:
//!   cargo run --release -p lowpower-bench --bin tables23 [-- options]
//! Options:
//!   --circuits a,b,c     subset of suite circuits
//!   --power-method 2     use Method 2 bookkeeping (ablation, §3.1)
//!   --no-fanout-division disable the §3.3 DAG heuristic (ablation)
//!   --threads N          worker threads for the (circuit × method) cells
//!                        (default: PAR_THREADS or the machine's cores);
//!                        the output is byte-identical at any setting

use benchgen::{paper_suite, suite_circuit};
use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_method, FlowConfig, Method};
use lowpower_bench::{summarize, SuiteRow};
use lowpower_core::map::PowerMethod;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut circuits: Option<Vec<String>> = None;
    let mut power_method = PowerMethod::InputLoads;
    let mut fanout_division = true;
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--circuits" => {
                i += 1;
                circuits = Some(args[i].split(',').map(str::to_string).collect());
            }
            "--threads" => {
                i += 1;
                threads = Some(args[i].parse().expect("--threads takes a number"));
            }
            "--power-method" => {
                i += 1;
                if args[i] == "2" {
                    power_method = PowerMethod::OutputLoad;
                }
            }
            "--no-fanout-division" => fanout_division = false,
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let lib = lib2_like();
    let cfg = FlowConfig::default();
    let threads = par::thread_count(threads);
    let selected: Vec<&str> = match &circuits {
        Some(list) => list.iter().map(String::as_str).collect(),
        None => paper_suite().iter().map(|e| e.name).collect(),
    };

    // Stage 1: the optimized network is shared by all six methods of a
    // circuit, so optimize each circuit once, concurrently.
    let nets: Vec<netlist::Network> = selected.iter().map(|n| suite_circuit(n)).collect();
    let optimized: Vec<netlist::Network> = par::scope_map(threads, &nets, |_, net| optimize(net));

    // Stage 2: every (circuit, method) cell is independent; fan the flat
    // cell list over the workers and reassemble rows in order, so the
    // tables are byte-identical at any thread count.
    let cells: Vec<(usize, Method)> = (0..selected.len())
        .flat_map(|ci| Method::ALL.into_iter().map(move |m| (ci, m)))
        .collect();
    let results: Vec<(f64, f64, f64)> = par::scope_map(threads, &cells, |_, &(ci, m)| {
        let name = selected[ci];
        let mut r = run_method(&optimized[ci], &lib, m, &cfg)
            .unwrap_or_else(|e| panic!("method {m} failed on {name}: {e}"));
        // apply ablation switches by re-running with modified options
        if power_method == PowerMethod::OutputLoad || !fanout_division {
            r = rerun_with(&optimized[ci], &lib, m, &cfg, power_method, fanout_division);
        }
        (r.report.area, r.report.delay, r.glitch_power_uw)
    });
    let rows: Vec<SuiteRow> = selected
        .iter()
        .enumerate()
        .map(|(ci, name)| {
            obs::note!("done: {name}");
            SuiteRow {
                name: name.to_string(),
                methods: results[ci * Method::ALL.len()..(ci + 1) * Method::ALL.len()].to_vec(),
            }
        })
        .collect();

    print_table(
        "Table 2: area-delay mapping (ad-map)",
        &rows,
        &[(0, "I conv"), (1, "II minpower"), (2, "III bh-minpower")],
    );
    print_table(
        "Table 3: power-delay mapping (pd-map)",
        &rows,
        &[(3, "IV conv"), (4, "V minpower"), (5, "VI bh-minpower")],
    );

    let s = summarize(&rows);
    println!("\nSection 4 summary (geometric-mean changes)        measured   paper");
    println!(
        "  minpower decomp power (II/I, V/IV):            {:>7.1} %   -3.7 %",
        s.minpower_decomp_power_pct
    );
    println!(
        "  bounded-height power (III/II, VI/V):           {:>7.1} %   -1.6 %",
        s.bounded_power_pct
    );
    println!(
        "  bounded-height delay (III/II, VI/V):           {:>7.1} %   -1.6 %",
        s.bounded_delay_pct
    );
    println!(
        "  pd-map power (IV-VI vs I-III):                 {:>7.1} %  -22   %",
        s.pdmap_power_pct
    );
    println!(
        "  pd-map area  (IV-VI vs I-III):                 {:>7.1} %  +12.4 %",
        s.pdmap_area_pct
    );
    println!(
        "  pd-map delay (IV-VI vs I-III):                 {:>7.1} %   -1.1 %",
        s.pdmap_delay_pct
    );
}

fn rerun_with(
    optimized: &netlist::Network,
    lib: &genlib::Library,
    method: Method,
    cfg: &FlowConfig,
    power_method: PowerMethod,
    fanout_division: bool,
) -> lowpower::flow::MethodResult {
    use activity::analyze;
    use lowpower_core::decomp::{decompose_network, DecompOptions};
    use lowpower_core::map::{map_network, MapOptions, SubjectAig};
    use lowpower_core::power::evaluate;
    let pi_probs = vec![0.5; optimized.inputs().len()];
    let dopts = DecompOptions {
        style: method.decomp_style(),
        model: cfg.model,
        pi_probs: Some(pi_probs.clone()),
        required_time: None,
        use_correlations: false,
    };
    let d = decompose_network(optimized, &dopts);
    let act = analyze(&d.network, &pi_probs, cfg.model);
    let sw = act.total_switching(d.network.logic_ids());
    let aig = SubjectAig::from_network(&d.network, &act).expect("subject");
    let mopts = MapOptions {
        objective: method.map_objective(),
        power_method,
        dag_fanout_division: fanout_division,
        epsilon: cfg.epsilon,
        model: cfg.model,
        env: cfg.env,
        po_load: cfg.po_load,
        required_time: None,
    };
    let mapped = map_network(&aig, lib, &mopts).expect("map");
    let report = evaluate(&mapped, lib, &cfg.env, cfg.model, cfg.po_load);
    let glitch = lowpower_core::power::simulate_glitch_power(
        &mapped,
        lib,
        &cfg.env,
        &pi_probs,
        cfg.sim_vectors,
        cfg.sim_seed,
        cfg.po_load,
        cfg.sim_threads,
    );
    let provenance = qor::Provenance::from_decomposed(&d);
    lowpower::flow::MethodResult {
        report,
        glitch_power_uw: glitch.power_uw,
        decomp_depth: d.depth,
        decomp_switching: sw,
        mapped,
        lint_findings: Vec::new(),
        obs: None,
        qor: None,
        provenance,
    }
}

fn print_table(title: &str, rows: &[SuiteRow], cols: &[(usize, &str)]) {
    println!("\n{title}");
    print!("{:<8}", "circuit");
    for (_, label) in cols {
        print!(" | {:^26}", label);
    }
    println!();
    print!("{:-<8}", "");
    for _ in cols {
        print!("-+-{:-<26}", "");
    }
    println!();
    print!("{:<8}", "");
    for _ in cols {
        print!(" | {:>8} {:>8} {:>8}", "area", "delay", "power");
    }
    println!();
    for r in rows {
        print!("{:<8}", r.name);
        for &(m, _) in cols {
            let (a, d, p) = r.methods[m];
            print!(" | {a:>8.1} {d:>8.2} {p:>8.1}");
        }
        println!();
    }
}
