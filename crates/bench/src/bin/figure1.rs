//! Regenerates **Figure 1** of the paper: the effect of technology
//! decomposition on total switching activity for a 4-input AND gate with
//! `P(a)=0.3, P(b)=0.4, P(c)=0.7, P(d)=0.5` under p-type domino logic.
//!
//! Paper values: SR(A) = 2.146 (chain ((a·b)·c)·d), SR(B) = 2.412
//! (balanced (a·b)·(c·d)). Huffman's optimum is better than both.
//!
//! Usage: `cargo run -p lowpower-bench --bin figure1 [--threads N]`
//!
//! The three configurations are independent and run concurrently; the
//! output is identical at any thread count.

use activity::TransitionModel;
use lowpower_core::decomp::{minpower_tree, DecompObjective, DecompTree, GateKind};

fn main() {
    let threads = std::env::args()
        .skip(1)
        .skip_while(|a| a != "--threads")
        .nth(1)
        .map(|a| a.parse().expect("--threads takes a number"));
    let threads = par::thread_count(threads);
    let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
    let p = [0.3, 0.4, 0.7, 0.5];

    let configs: Vec<usize> = vec![0, 1, 2];
    let mut trees = par::scope_map(threads, &configs, |_, &which| match which {
        // Configuration A: ((a·b)·c)·d
        0 => {
            let ab = DecompTree::merge(DecompTree::leaf(0, p[0]), DecompTree::leaf(1, p[1]), obj);
            let abc = DecompTree::merge(ab, DecompTree::leaf(2, p[2]), obj);
            DecompTree::merge(abc, DecompTree::leaf(3, p[3]), obj)
        }
        // Configuration B: (a·b)·(c·d)
        1 => {
            let ab = DecompTree::merge(DecompTree::leaf(0, p[0]), DecompTree::leaf(1, p[1]), obj);
            let cd = DecompTree::merge(DecompTree::leaf(2, p[2]), DecompTree::leaf(3, p[3]), obj);
            DecompTree::merge(ab, cd, obj)
        }
        // MINPOWER (Huffman, optimal for domino + uncorrelated — Theorem 2.2)
        _ => minpower_tree(&p, obj),
    });
    let h = trees.pop().expect("three configs");
    let b = trees.pop().expect("three configs");
    let a = trees.pop().expect("three configs");

    println!("Figure 1: 4-input AND, P = (0.3, 0.4, 0.7, 0.5), p-type domino\n");
    println!(
        "{:<34} {:>8} {:>8} {:>8}",
        "configuration", "SR", "internal", "paper SR"
    );
    println!("{:-<34} {:-<8} {:-<8} {:-<8}", "", "", "", "");
    println!(
        "{:<34} {:>8.3} {:>8.3} {:>8}",
        "A: chain ((a*b)*c)*d",
        a.total_cost(obj),
        a.internal_cost(obj),
        "2.146"
    );
    println!(
        "{:<34} {:>8.3} {:>8.3} {:>8}",
        "B: balanced (a*b)*(c*d)",
        b.total_cost(obj),
        b.internal_cost(obj),
        "2.412"
    );
    println!(
        "{:<34} {:>8.3} {:>8.3} {:>8}",
        format!("Huffman optimum {}", h.canonical_string()),
        h.total_cost(obj),
        h.internal_cost(obj),
        "-"
    );
}
