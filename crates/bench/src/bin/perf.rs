//! Per-stage perf-trajectory harness.
//!
//! Times every stage of the flow — optimize, decompose, activity
//! (bit-parallel seeded simulation), map, glitch (event-driven power
//! simulation) and verify (random-sim equivalence) — per circuit, once
//! serially and once at N worker threads, and records the trajectory to a
//! JSON file so successive commits can be compared.
//!
//! Usage:
//!   cargo run --release -p lowpower-bench --bin perf [-- options]
//! Options:
//!   --circuits a,b,c  subset of suite circuits (default: a small/medium mix)
//!   --threads N       parallel thread count to compare against serial
//!                     (default: PAR_THREADS or the machine's cores)
//!   --out FILE        output JSON path (default: BENCH_pr5.json)
//!   --check           also assert that the parallel kernels produce
//!                     results identical to serial, exit 1 on divergence
//!
//! JSON schema: an array of
//!   `{"circuit", "method", "stage", "wall_ms", "threads", "speedup",
//!     "counters", "qor"}`
//! where `speedup` is serial wall time over this entry's wall time
//! (1.0 for the serial entries themselves). Stages that take no thread
//! parameter (optimize, decompose, map) are recorded once with
//! `"threads": 1`. `counters` is the stage's deterministic obs counter
//! snapshot (one clean run, so work metrics ride alongside the wall
//! times). `qor` is the stage's fixed-point QoR snapshot (power/area/
//! delay/nodes/literals, see the `qor` crate) for the artifact-producing
//! stages and `null` for the measurement kernels; the PR 3/4 fields are
//! unchanged.

use activity::{analyze, sim::simulate_activity_seeded, TransitionModel};
use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, strip_constant_outputs, FlowConfig, Method};
use lowpower::verify::{check_equiv, OutputPolicy, Verdict, VerifyLevel, VerifyOptions};
use lowpower_core::decomp::{decompose_network, DecompOptions};
use lowpower_core::map::{map_network, MapOptions, SubjectAig};
use lowpower_core::power::simulate_glitch_power;
use std::time::Instant;

/// Vectors for the timed activity / glitch simulations — large enough for
/// the chunked kernels to show their scaling.
const SIM_VECTORS: usize = 4096;
const SIM_WORDS: usize = 256;
const SEED: u64 = 0xC0FFEE;

const DEFAULT_CIRCUITS: &[&str] = &["cm42a", "x2", "s208", "s344", "s510"];

struct Entry {
    circuit: String,
    method: String,
    stage: &'static str,
    wall_ms: f64,
    threads: usize,
    speedup: f64,
    /// Deterministic obs counter snapshot for one run of this stage,
    /// rendered as a JSON object (thread-count invariant by contract).
    counters: String,
    /// Fixed-point QoR snapshot of the stage's artifact as a JSON object
    /// (`qor::Metrics::to_json`), or `"null"` for measurement kernels
    /// that produce no artifact.
    qor: String,
}

/// Wall time of `f` in milliseconds, best of two runs (the second run sees
/// warm caches; the minimum is the stable trajectory signal).
fn time_ms<R>(mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..2 {
        let t = Instant::now();
        std::hint::black_box(f());
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Counter snapshot of exactly one run of `f`, as a JSON object string.
/// Kept separate from [`time_ms`] so the counts cover a single clean run
/// (the timing loop would double them) and the timed runs stay free of
/// recording overhead.
fn stage_counters(mut f: impl FnMut()) -> String {
    let session = obs::Session::start();
    f();
    session.finish().counters_json()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut circuits: Option<Vec<String>> = None;
    let mut threads: Option<usize> = None;
    let mut out = "BENCH_pr5.json".to_string();
    let mut check = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--circuits" => {
                i += 1;
                circuits = Some(args[i].split(',').map(str::to_string).collect());
            }
            "--threads" => {
                i += 1;
                threads = Some(args[i].parse().expect("--threads takes a number"));
            }
            "--out" => {
                i += 1;
                out = args[i].clone();
            }
            "--check" => check = true,
            other => {
                eprintln!("unknown option `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let par_threads = par::thread_count(threads).max(1);
    let selected: Vec<String> =
        circuits.unwrap_or_else(|| DEFAULT_CIRCUITS.iter().map(|s| s.to_string()).collect());

    let lib = lib2_like();
    let cfg = FlowConfig::default();
    let method = Method::V; // representative power flow for the staged path
    let mut entries: Vec<Entry> = Vec::new();
    let mut diverged = false;

    for name in &selected {
        let net = benchgen::suite_circuit(name);
        let mut push = |stage, wall_ms, threads, speedup, counters: &str, qor: &str| {
            entries.push(Entry {
                circuit: name.clone(),
                method: method.to_string(),
                stage,
                wall_ms,
                threads,
                speedup,
                counters: counters.to_string(),
                qor: qor.to_string(),
            });
        };
        let qctx = qor::Ctx::default();

        // Serial stages: timed once.
        let optimized = optimize(&net);
        let optimize_counters = stage_counters(|| {
            optimize(&net);
        });
        let optimize_qor = qor::measure_network(&optimized, &qctx).to_json().render();
        push(
            "optimize",
            time_ms(|| optimize(&net)),
            1,
            1.0,
            &optimize_counters,
            &optimize_qor,
        );

        let dopts = DecompOptions {
            style: method.decomp_style(),
            model: cfg.model,
            pi_probs: None,
            required_time: None,
            use_correlations: false,
        };
        let decomposed = decompose_network(&optimized, &dopts);
        let decompose_counters = stage_counters(|| {
            decompose_network(&optimized, &dopts);
        });
        let decompose_qor = qor::measure_network(&decomposed.network, &qctx)
            .to_json()
            .render();
        push(
            "decompose",
            time_ms(|| decompose_network(&optimized, &dopts)),
            1,
            1.0,
            &decompose_counters,
            &decompose_qor,
        );

        let (mappable, _) = strip_constant_outputs(&decomposed.network);
        let probs = vec![0.5; mappable.inputs().len()];
        let act = analyze(&mappable, &probs, TransitionModel::StaticCmos);
        let aig = SubjectAig::from_network(&mappable, &act).expect("subject");
        let mopts = MapOptions {
            objective: method.map_objective(),
            ..MapOptions::power()
        };
        let mapped = map_network(&aig, &lib, &mopts).expect("maps");
        let map_counters = stage_counters(|| {
            map_network(&aig, &lib, &mopts).expect("maps");
        });
        let map_qor = qor::measure_mapped(&mapped, &lib, &qctx).to_json().render();
        push(
            "map",
            time_ms(|| map_network(&aig, &lib, &mopts).expect("maps")),
            1,
            1.0,
            &map_counters,
            &map_qor,
        );

        // Threaded kernels: timed at 1 and at `par_threads`.
        let mapped_view = mapped.to_network(&lib, mappable.name());
        let vopts = |t: usize| {
            VerifyOptions {
                sim_words: SIM_WORDS,
                ..VerifyOptions::at_level(VerifyLevel::Sim)
            }
            .with_outputs(OutputPolicy::Exact)
            .with_threads(t)
        };
        type Kernel<'a> = Box<dyn FnMut(usize) + 'a>;
        let kernels: [(&'static str, Kernel); 3] = [
            (
                "activity",
                Box::new(|t| {
                    simulate_activity_seeded(&mappable, &probs, SIM_VECTORS, SEED, t);
                }),
            ),
            (
                "glitch",
                Box::new(|t| {
                    simulate_glitch_power(
                        &mapped,
                        &lib,
                        &cfg.env,
                        &probs,
                        SIM_VECTORS,
                        SEED,
                        cfg.po_load,
                        t,
                    );
                }),
            ),
            (
                "verify",
                Box::new(|t| {
                    let v = check_equiv(&mappable, &mapped_view, &vopts(t)).expect("comparable");
                    assert!(v.is_ok(), "mapping broke {name}");
                }),
            ),
        ];
        for (stage, mut kernel) in kernels {
            // One counter capture covers serial and parallel entries: the
            // snapshot is thread-count invariant (the determinism
            // contract, pinned by tests/obs_determinism.rs).
            let counters = stage_counters(|| kernel(1));
            let serial_ms = time_ms(|| kernel(1));
            push(stage, serial_ms, 1, 1.0, &counters, "null");
            if par_threads > 1 {
                let par_ms = time_ms(|| kernel(par_threads));
                push(
                    stage,
                    par_ms,
                    par_threads,
                    serial_ms / par_ms.max(1e-9),
                    &counters,
                    "null",
                );
            }
        }

        if check {
            let a1 = simulate_activity_seeded(&mappable, &probs, SIM_VECTORS, SEED, 1);
            let an =
                simulate_activity_seeded(&mappable, &probs, SIM_VECTORS, SEED, par_threads.max(2));
            let g1 = simulate_glitch_power(
                &mapped,
                &lib,
                &cfg.env,
                &probs,
                SIM_VECTORS,
                SEED,
                cfg.po_load,
                1,
            );
            let gn = simulate_glitch_power(
                &mapped,
                &lib,
                &cfg.env,
                &probs,
                SIM_VECTORS,
                SEED,
                cfg.po_load,
                par_threads.max(2),
            );
            let v1 = check_equiv(&mappable, &mapped_view, &vopts(1)).expect("comparable");
            let vn = check_equiv(&mappable, &mapped_view, &vopts(par_threads.max(2)))
                .expect("comparable");
            let act_same = a1 == an;
            let glitch_same = g1 == gn;
            let verify_same =
                matches!((&v1, &vn), (Verdict::Equivalent(_), Verdict::Equivalent(_)));
            if !(act_same && glitch_same && verify_same) {
                eprintln!(
                    "DIVERGENCE on {name}: activity={act_same} glitch={glitch_same} verify={verify_same}"
                );
                diverged = true;
            }
        }
        obs::note!("done: {name}");
    }

    let json = render_json(&entries);
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    print_summary(&entries, par_threads);
    println!("\nwrote {} entries to {out}", entries.len());
    if check {
        if diverged {
            eprintln!("FAIL: parallel kernels diverged from serial");
            std::process::exit(1);
        }
        println!("check: parallel results identical to serial");
    }
}

fn render_json(entries: &[Entry]) -> String {
    let mut s = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        s.push_str(&format!(
            "  {{\"circuit\": \"{}\", \"method\": \"{}\", \"stage\": \"{}\", \
             \"wall_ms\": {:.3}, \"threads\": {}, \"speedup\": {:.3}, \
             \"counters\": {}, \"qor\": {}}}{}\n",
            e.circuit,
            e.method,
            e.stage,
            e.wall_ms,
            e.threads,
            e.speedup,
            e.counters,
            e.qor,
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n");
    s
}

fn print_summary(entries: &[Entry], par_threads: usize) {
    println!(
        "\n{:<8} {:<10} {:>12} {:>12} {:>8}",
        "circuit", "stage", "serial ms", "par ms", "speedup"
    );
    let circuits: Vec<&str> = {
        let mut seen = Vec::new();
        for e in entries {
            if !seen.contains(&e.circuit.as_str()) {
                seen.push(&e.circuit);
            }
        }
        seen
    };
    for circuit in circuits {
        for stage in [
            "optimize",
            "decompose",
            "map",
            "activity",
            "glitch",
            "verify",
        ] {
            let serial = entries
                .iter()
                .find(|e| e.circuit == circuit && e.stage == stage && e.threads == 1);
            let par = entries
                .iter()
                .find(|e| e.circuit == circuit && e.stage == stage && e.threads > 1);
            let Some(serial) = serial else { continue };
            match par {
                Some(p) => println!(
                    "{:<8} {:<10} {:>12.3} {:>12.3} {:>7.2}x",
                    circuit, stage, serial.wall_ms, p.wall_ms, p.speedup
                ),
                None => println!(
                    "{:<8} {:<10} {:>12.3} {:>12} {:>8}",
                    circuit, stage, serial.wall_ms, "-", "-"
                ),
            }
        }
    }
    if par_threads == 1 {
        println!("(single-core host: parallel columns omitted — rerun with --threads N)");
    }
}
