//! Regenerates **Table 1** of the paper: percentage of trials in which the
//! Modified Huffman algorithm finds the true minimum-power static-CMOS AND
//! decomposition, against exhaustive enumeration of all merge histories.
//!
//! Paper protocol (§4): for each input count `n ∈ {3,4,5,6}`, 500 random
//! probability patterns; all possible AND decompositions enumerated to find
//! the optimum. Paper result: 100 / 96 / 93 / 88 %.
//!
//! Usage: `cargo run --release -p lowpower-bench --bin table1 [trials]`

use activity::TransitionModel;
use lowpower_core::decomp::{
    exhaustive_minpower, modified_huffman_tree, DecompObjective, GateKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let trials: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(500);
    let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
    println!("Table 1: Modified Huffman optimality (static CMOS AND decomposition)");
    println!("{trials} random input patterns per row, exhaustive oracle\n");
    println!(
        "{:>17} | {:>28} | {:>6}",
        "numbers of input", "% of getting optimal result", "paper"
    );
    println!("{:-<17}-+-{:-<28}-+-{:-<6}", "", "", "");
    let paper = [100, 96, 93, 88];
    for (row, n) in (3..=6).enumerate() {
        let mut rng = StdRng::seed_from_u64(0xF00D + n as u64);
        let mut optimal = 0usize;
        for _ in 0..trials {
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..0.99)).collect();
            let greedy = modified_huffman_tree(&probs, obj).internal_cost(obj);
            let (best, _) = exhaustive_minpower(&probs, obj);
            if greedy <= best + 1e-9 {
                optimal += 1;
            }
        }
        let pct = 100.0 * optimal as f64 / trials as f64;
        println!("{n:>17} | {pct:>28.1} | {:>6}", paper[row]);
    }
}
