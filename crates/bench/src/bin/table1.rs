//! Regenerates **Table 1** of the paper: percentage of trials in which the
//! Modified Huffman algorithm finds the true minimum-power static-CMOS AND
//! decomposition, against exhaustive enumeration of all merge histories.
//!
//! Paper protocol (§4): for each input count `n ∈ {3,4,5,6}`, 500 random
//! probability patterns; all possible AND decompositions enumerated to find
//! the optimum. Paper result: 100 / 96 / 93 / 88 %.
//!
//! Usage:
//!   `cargo run --release -p lowpower-bench --bin table1 [trials] [--threads N]`
//!
//! Each row (input count) draws from its own seeded stream, so the rows
//! run concurrently and the table is identical at any thread count.

use activity::TransitionModel;
use lowpower_core::decomp::{
    exhaustive_minpower, modified_huffman_tree, DecompObjective, GateKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut trials: usize = 500;
    let mut threads: Option<usize> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = Some(args[i].parse().expect("--threads takes a number"));
            }
            other => trials = other.parse().expect("trials must be a number"),
        }
        i += 1;
    }
    let threads = par::thread_count(threads);
    let obj = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
    println!("Table 1: Modified Huffman optimality (static CMOS AND decomposition)");
    println!("{trials} random input patterns per row, exhaustive oracle\n");
    println!(
        "{:>17} | {:>28} | {:>6}",
        "numbers of input", "% of getting optimal result", "paper"
    );
    println!("{:-<17}-+-{:-<28}-+-{:-<6}", "", "", "");
    let paper = [100, 96, 93, 88];
    let ns: Vec<usize> = (3..=6).collect();
    // Each row owns an independent seeded stream — fan the rows out.
    let pcts: Vec<f64> = par::scope_map(threads, &ns, |_, &n| {
        let mut rng = StdRng::seed_from_u64(0xF00D + n as u64);
        let mut optimal = 0usize;
        for _ in 0..trials {
            let probs: Vec<f64> = (0..n).map(|_| rng.gen_range(0.01..0.99)).collect();
            let greedy = modified_huffman_tree(&probs, obj).internal_cost(obj);
            let (best, _) = exhaustive_minpower(&probs, obj);
            if greedy <= best + 1e-9 {
                optimal += 1;
            }
        }
        100.0 * optimal as f64 / trials as f64
    });
    for (row, (&n, pct)) in ns.iter().zip(pcts).enumerate() {
        println!("{n:>17} | {pct:>28.1} | {:>6}", paper[row]);
    }
}
