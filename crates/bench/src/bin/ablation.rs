//! Ablation studies for the design choices the paper argues for:
//!
//! 1. **Method 1 vs Method 2** power bookkeeping during mapping (§3.1):
//!    the paper adopts Method 1 because the unknown-load term of Method 2
//!    distorts the DAG fanout heuristic.
//! 2. **Fanout-count cost division** during DAG mapping (§3.3): dividing a
//!    multi-fanout input's accumulated cost by its fanout count favours
//!    solutions that preserve shared nodes.
//! 3. **ε-pruning** of the power-delay curves (§3.1): coarser ε trades
//!    mapping quality for runtime.
//!
//! Usage:
//!   `cargo run --release -p lowpower-bench --bin ablation [circuits] [--threads N]`
//!
//! Circuits are independent and fan out over the workers; each circuit's
//! block is rendered to a buffer and printed in order, so everything but
//! the per-variant wall times is identical at any thread count.

use activity::analyze;
use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_method, FlowConfig, Method};
use lowpower_core::decomp::{decompose_network, DecompOptions};
use lowpower_core::map::{map_network, MapOptions, PowerMethod, SubjectAig};
use lowpower_core::power::{evaluate, simulate_glitch_power};
use std::fmt::Write;
use std::time::Instant;

struct Variant {
    label: &'static str,
    power_method: PowerMethod,
    fanout_division: bool,
    epsilon: f64,
}

const VARIANTS: &[Variant] = &[
    Variant {
        label: "method1 +fanout-div eps=0.05 (paper)",
        power_method: PowerMethod::InputLoads,
        fanout_division: true,
        epsilon: 0.05,
    },
    Variant {
        label: "method2 +fanout-div eps=0.05",
        power_method: PowerMethod::OutputLoad,
        fanout_division: true,
        epsilon: 0.05,
    },
    Variant {
        label: "method1 -fanout-div eps=0.05",
        power_method: PowerMethod::InputLoads,
        fanout_division: false,
        epsilon: 0.05,
    },
    Variant {
        label: "method1 +fanout-div eps=0.5",
        power_method: PowerMethod::InputLoads,
        fanout_division: true,
        epsilon: 0.5,
    },
    Variant {
        label: "method1 +fanout-div eps=0.0",
        power_method: PowerMethod::InputLoads,
        fanout_division: true,
        epsilon: 0.0,
    },
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut circuits: Vec<String> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                i += 1;
                threads = Some(args[i].parse().expect("--threads takes a number"));
            }
            other => circuits.push(other.to_string()),
        }
        i += 1;
    }
    if circuits.is_empty() {
        circuits = ["x2", "s344", "s510", "alu2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    let threads = par::thread_count(threads);
    let lib = lib2_like();

    let blocks = par::scope_map(threads, &circuits, |_, name| run_circuit(name, &lib));
    for block in blocks {
        print!("{block}");
    }
}

fn run_circuit(name: &str, lib: &genlib::Library) -> String {
    let net = benchgen::suite_circuit(name);
    let optimized = optimize(&net);
    let cfg = FlowConfig::default();
    let probe = run_method(&optimized, lib, Method::I, &cfg).expect("probe");
    let required = probe.mapped.estimated_fastest * 1.10;

    let pi_probs = vec![0.5; optimized.inputs().len()];
    let d = decompose_network(
        &optimized,
        &DecompOptions {
            style: Method::V.decomp_style(),
            model: cfg.model,
            pi_probs: Some(pi_probs.clone()),
            required_time: None,
            use_correlations: false,
        },
    );
    let (mappable, _) = lowpower::flow::strip_constant_outputs(&d.network);
    let act = analyze(&mappable, &pi_probs, cfg.model);
    let aig = SubjectAig::from_network(&mappable, &act).expect("subject");

    let mut out = String::new();
    writeln!(out, "\n=== {name} (pd-map, minpower decomposition) ===").unwrap();
    writeln!(
        out,
        "{:<40} {:>8} {:>8} {:>9} {:>9} {:>9}",
        "variant", "area", "delay", "P0 µW", "Pg µW", "time"
    )
    .unwrap();
    for v in VARIANTS {
        let opts = MapOptions {
            power_method: v.power_method,
            dag_fanout_division: v.fanout_division,
            epsilon: v.epsilon,
            required_time: Some(required),
            ..MapOptions::power()
        };
        let t = Instant::now();
        // Coarse ε can prune the very points that meet the timing target
        // (s510 at ε = 0.5): report the variant as infeasible, that IS the
        // ablation's finding.
        let mapped = match map_network(&aig, lib, &opts) {
            Ok(m) => m,
            Err(e) => {
                writeln!(out, "{:<40} infeasible at target: {e}", v.label).unwrap();
                continue;
            }
        };
        let elapsed = t.elapsed();
        let rep = evaluate(&mapped, lib, &cfg.env, cfg.model, cfg.po_load);
        let g = simulate_glitch_power(
            &mapped,
            lib,
            &cfg.env,
            &pi_probs,
            cfg.sim_vectors,
            cfg.sim_seed,
            cfg.po_load,
            cfg.sim_threads,
        );
        writeln!(
            out,
            "{:<40} {:>8.1} {:>8.2} {:>9.1} {:>9.1} {:>8.1?}",
            v.label, rep.area, rep.delay, rep.power_uw, g.power_uw, elapsed
        )
        .unwrap();
    }
    out
}
