//! Runtime of the BDD substrate: global-BDD construction and the
//! signal-probability traversal (eq. 2) on structured and random circuits.

use activity::{analyze, NetworkBdds, TransitionModel};
use benchgen::structured::ripple_adder;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_adder_bdds(c: &mut Criterion) {
    // Note: PI order is a0..an b0..bn, the *bad* order for adder BDDs —
    // sizes grow quickly with width, which is exactly what this group
    // demonstrates. Widths are kept small for that reason.
    let mut g = c.benchmark_group("network_bdds_adder");
    g.sample_size(20);
    for &bits in &[2usize, 4, 8] {
        let net = ripple_adder(bits);
        let probs = vec![0.5; net.inputs().len()];
        g.bench_with_input(BenchmarkId::from_parameter(bits), &net, |b, net| {
            b.iter(|| black_box(NetworkBdds::build(net, &probs)))
        });
    }
    g.finish();
}

fn bench_analyze_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("analyze_activity");
    for name in ["cm42a", "x2", "s344"] {
        let net = benchgen::suite_circuit(name);
        let probs = vec![0.5; net.inputs().len()];
        g.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, net| {
            b.iter(|| black_box(analyze(net, &probs, TransitionModel::StaticCmos)))
        });
    }
    g.finish();
}

fn bench_probability_traversal(c: &mut Criterion) {
    let net = ripple_adder(8);
    let probs = vec![0.5; net.inputs().len()];
    let bdds = NetworkBdds::build(&net, &probs);
    let cout = net.find("c8").expect("carry out exists");
    c.bench_function("probability_traversal_adder8_cout", |b| {
        b.iter(|| black_box(bdds.p_one(cout)))
    });
}

criterion_group!(
    benches,
    bench_adder_bdds,
    bench_analyze_suite,
    bench_probability_traversal
);
criterion_main!(benches);
