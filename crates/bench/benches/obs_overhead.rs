//! Overhead of the obs macros when no session is recording — the price
//! every instrumented hot loop pays on ordinary (non-`--obs`) runs. The
//! disabled macros must stay within noise of the bare loop; the enabled
//! variants quantify what `--obs` costs when it *is* on.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const ITERS: u64 = 10_000;

fn bench_disabled(c: &mut Criterion) {
    assert!(!obs::enabled(), "no session may be live in this group");
    let mut g = c.benchmark_group("obs_disabled_10k");
    g.bench_function("baseline_sum", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        })
    });
    g.bench_function("counter", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                obs::counter!("bench.obs.counter");
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        })
    });
    g.bench_function("hist", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                obs::hist!("bench.obs.hist", i);
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        })
    });
    g.bench_function("span", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..ITERS {
                let _s = obs::span!("bench.obs.span");
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_enabled(c: &mut Criterion) {
    let mut g = c.benchmark_group("obs_enabled_10k");
    g.bench_function("counter", |b| {
        b.iter(|| {
            let session = obs::Session::start();
            let mut acc = 0u64;
            for i in 0..ITERS {
                obs::counter!("bench.obs.counter");
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(session.finish());
            black_box(acc)
        })
    });
    g.bench_function("span", |b| {
        b.iter(|| {
            let session = obs::Session::start();
            let mut acc = 0u64;
            for i in 0..ITERS {
                let _s = obs::span!("bench.obs.span");
                acc = acc.wrapping_add(black_box(i));
            }
            black_box(session.finish());
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_disabled, bench_enabled);
criterion_main!(benches);
