//! Runtime of the technology-mapping pipeline (Section 3): pattern
//! compilation, subject-graph construction, and the full ad-map / pd-map
//! passes over benchmark circuits.

use activity::{analyze, TransitionModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use genlib::builtin::lib2_like;
use lowpower::flow::optimize;
use lowpower_core::decomp::{decompose_network, DecompOptions, DecompStyle};
use lowpower_core::map::{map_network, MapOptions, PatternSet, SubjectAig};
use std::hint::black_box;

fn bench_pattern_compilation(c: &mut Criterion) {
    let lib = lib2_like();
    c.bench_function("pattern_set_from_library", |b| {
        b.iter(|| black_box(PatternSet::from_library(&lib)))
    });
}

fn prepared(name: &str) -> SubjectAig {
    let net = optimize(&benchgen::suite_circuit(name));
    let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
    let (mappable, _) = lowpower::flow::strip_constant_outputs(&d.network);
    let probs = vec![0.5; mappable.inputs().len()];
    let act = analyze(&mappable, &probs, TransitionModel::StaticCmos);
    SubjectAig::from_network(&mappable, &act).expect("mappable")
}

fn bench_subject_construction(c: &mut Criterion) {
    let net = optimize(&benchgen::suite_circuit("s510"));
    let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
    let (mappable, _) = lowpower::flow::strip_constant_outputs(&d.network);
    let probs = vec![0.5; mappable.inputs().len()];
    let act = analyze(&mappable, &probs, TransitionModel::StaticCmos);
    c.bench_function("subject_aig_s510", |b| {
        b.iter(|| black_box(SubjectAig::from_network(&mappable, &act).expect("mappable")))
    });
}

fn bench_mapping(c: &mut Criterion) {
    let lib = lib2_like();
    let mut g = c.benchmark_group("map_network");
    g.sample_size(20);
    for name in ["x2", "s344", "s510"] {
        let aig = prepared(name);
        g.bench_with_input(BenchmarkId::new("ad_map", name), &aig, |b, aig| {
            b.iter(|| black_box(map_network(aig, &lib, &MapOptions::area()).expect("maps")))
        });
        g.bench_with_input(BenchmarkId::new("pd_map", name), &aig, |b, aig| {
            b.iter(|| black_box(map_network(aig, &lib, &MapOptions::power()).expect("maps")))
        });
    }
    g.finish();
}

fn bench_glitch_simulation(c: &mut Criterion) {
    use activity::PowerEnv;
    use lowpower_core::power::simulate_glitch_power;
    let lib = lib2_like();
    let aig = prepared("s344");
    let mapped = map_network(&aig, &lib, &MapOptions::power()).expect("maps");
    let probs = vec![0.5; mapped.pi_names.len()];
    let env = PowerEnv::new();
    c.bench_function("glitch_sim_s344_100v", |b| {
        b.iter(|| {
            black_box(simulate_glitch_power(
                &mapped, &lib, &env, &probs, 100, 1, 1.0, 1,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_pattern_compilation,
    bench_subject_construction,
    bench_mapping,
    bench_glitch_simulation
);
criterion_main!(benches);
