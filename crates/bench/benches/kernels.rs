//! Micro-benchmarks of the hot-path kernels the perf work targets:
//! seeded activity simulation (serial vs chunked), structural matching
//! with a reused scratch [`Matcher`], incremental curve
//! insertion + finalize, and technology decomposition.

use activity::sim::{simulate_activity, simulate_activity_seeded};
use activity::{analyze, TransitionModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowpower::flow::optimize;
use lowpower_core::decomp::{decompose_network, DecompOptions, DecompStyle};
use lowpower_core::map::{Curve, Matcher, PatternSet, Point, SubjectAig};
use rand::SeedableRng;
use std::hint::black_box;

fn decomposed(name: &str) -> netlist::Network {
    let net = optimize(&benchgen::suite_circuit(name));
    let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
    lowpower::flow::strip_constant_outputs(&d.network).0
}

fn bench_activity_sim(c: &mut Criterion) {
    let net = decomposed("s344");
    let probs = vec![0.5; net.inputs().len()];
    let mut g = c.benchmark_group("simulate_activity_s344_4096v");
    g.bench_function("rng_stream", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            black_box(simulate_activity(&net, &probs, 4096, &mut rng))
        })
    });
    for threads in [1usize, 2, 4] {
        g.bench_with_input(
            BenchmarkId::new("seeded", threads),
            &threads,
            |b, &threads| {
                b.iter(|| black_box(simulate_activity_seeded(&net, &probs, 4096, 7, threads)))
            },
        );
    }
    g.finish();
}

fn bench_matcher(c: &mut Criterion) {
    let lib = genlib::builtin::lib2_like();
    let ps = PatternSet::from_library(&lib);
    let net = decomposed("s510");
    let probs = vec![0.5; net.inputs().len()];
    let act = analyze(&net, &probs, TransitionModel::StaticCmos);
    let aig = SubjectAig::from_network(&net, &act).expect("mappable");
    c.bench_function("matches_at_s510_all_nodes/reused_scratch", |b| {
        b.iter(|| {
            let mut matcher = Matcher::new();
            let mut total = 0usize;
            for node in 0..aig.len() as u32 {
                total += matcher.matches_at(&aig, &ps, node).len();
            }
            black_box(total)
        })
    });
}

/// Deterministic pseudo-random point stream (no RNG state to carry).
fn point(i: u64) -> Point {
    let h = par::split_seed(0xC0FFEE, i);
    Point {
        arrival: (h & 0xFFFF) as f64 / 655.36,
        cost: (h >> 16 & 0xFFFF) as f64 / 655.36,
        drive: 1.0,
        gate: None,
        inputs: Vec::new(),
    }
}

fn bench_curve(c: &mut Criterion) {
    let mut g = c.benchmark_group("curve_push_finalize_1000pts");
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut curve = Curve::new();
            for i in 0..1000 {
                curve.push(point(i));
            }
            curve.finalize(0.05);
            black_box(curve.points().len())
        })
    });
    g.finish();
}

fn bench_decompose(c: &mut Criterion) {
    let net = optimize(&benchgen::suite_circuit("s344"));
    let mut g = c.benchmark_group("decompose_network_s344");
    for style in [DecompStyle::Conventional, DecompStyle::MinPower] {
        g.bench_with_input(
            BenchmarkId::new("style", format!("{style:?}")),
            &style,
            |b, &style| b.iter(|| black_box(decompose_network(&net, &DecompOptions::new(style)))),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_activity_sim,
    bench_matcher,
    bench_curve,
    bench_decompose
);
criterion_main!(benches);
