//! Runtime of the technology-independent optimizer (the rugged-like
//! script and its component passes) on suite circuits.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_rugged(c: &mut Criterion) {
    let mut g = c.benchmark_group("rugged_like");
    g.sample_size(10);
    for name in ["x2", "s344", "alu2"] {
        let net = benchgen::suite_circuit(name);
        g.bench_with_input(BenchmarkId::from_parameter(name), &net, |b, net| {
            b.iter(|| {
                let mut n = net.clone();
                logicopt::rugged_like(&mut n);
                black_box(n)
            })
        });
    }
    g.finish();
}

fn bench_passes(c: &mut Criterion) {
    let net = benchgen::suite_circuit("s344");
    let mut g = c.benchmark_group("logicopt_passes_s344");
    g.sample_size(20);
    g.bench_function("sweep", |b| {
        b.iter(|| {
            let mut n = net.clone();
            black_box(logicopt::sweep::sweep(&mut n))
        })
    });
    g.bench_function("simplify", |b| {
        b.iter(|| {
            let mut n = net.clone();
            black_box(logicopt::simplify::simplify_network(&mut n))
        })
    });
    g.bench_function("extract", |b| {
        b.iter(|| {
            let mut n = net.clone();
            black_box(logicopt::extract::extract(&mut n, 0))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_rugged, bench_passes);
criterion_main!(benches);
