//! Runtime scaling of the decomposition algorithms (Section 2):
//! Huffman (`O(n log n)`-class), Modified Huffman (`O(n² log n)`, Algorithm
//! 2.2), the feasibility-guarded bounded greedy, the Larmore–Hirschberg
//! package-merge, and the Figure-1-sized exhaustive oracle.

use activity::TransitionModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowpower_core::decomp::{
    bounded_minpower_tree, exhaustive_minpower, huffman_tree, modified_huffman_tree,
    package_merge_levels, DecompObjective, GateKind,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_probs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0.01..0.99)).collect()
}

fn bench_tree_builders(c: &mut Criterion) {
    let domino = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
    let stat = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
    let mut g = c.benchmark_group("tree_decomposition");
    for &n in &[8usize, 16, 32, 64] {
        let probs = random_probs(n, 42);
        g.bench_with_input(BenchmarkId::new("huffman_domino", n), &probs, |b, p| {
            b.iter(|| black_box(huffman_tree(p, domino)))
        });
        g.bench_with_input(
            BenchmarkId::new("modified_huffman_static", n),
            &probs,
            |b, p| b.iter(|| black_box(modified_huffman_tree(p, stat))),
        );
        let bound = (n as f64).log2().ceil() as usize + 1;
        g.bench_with_input(BenchmarkId::new("bounded_minpower", n), &probs, |b, p| {
            b.iter(|| black_box(bounded_minpower_tree(p, stat, bound)))
        });
        g.bench_with_input(BenchmarkId::new("package_merge", n), &probs, |b, p| {
            b.iter(|| black_box(package_merge_levels(p, bound)))
        });
    }
    g.finish();
}

fn bench_exhaustive_oracle(c: &mut Criterion) {
    let stat = DecompObjective::new(TransitionModel::StaticCmos, GateKind::And);
    let mut g = c.benchmark_group("exhaustive_oracle");
    for &n in &[4usize, 5, 6] {
        let probs = random_probs(n, 7);
        g.bench_with_input(BenchmarkId::from_parameter(n), &probs, |b, p| {
            b.iter(|| black_box(exhaustive_minpower(p, stat)))
        });
    }
    g.finish();
}

fn bench_network_decomposition(c: &mut Criterion) {
    use lowpower::flow::optimize;
    use lowpower_core::decomp::{decompose_network, DecompOptions, DecompStyle};
    let net = optimize(&benchgen::suite_circuit("s510"));
    let mut g = c.benchmark_group("network_decomposition_s510");
    for (label, style) in [
        ("conventional", DecompStyle::Conventional),
        ("minpower", DecompStyle::MinPower),
        ("bounded", DecompStyle::BoundedMinPower),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| black_box(decompose_network(&net, &DecompOptions::new(style))))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tree_builders,
    bench_exhaustive_oracle,
    bench_network_decomposition
);
criterion_main!(benches);
