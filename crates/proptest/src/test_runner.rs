//! Test-case execution support: configuration, failure type, and the
//! deterministic per-test RNG.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::fmt;

/// The RNG driving strategy generation.
pub type TestRng = SmallRng;

/// Runner configuration (only `cases` is honored by this shim).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Failure of a single test case (returned by `prop_assert!` and friends,
/// or propagated by `?` from helpers).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property does not hold; the payload is the failure message.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG for one named property: the seed is a hash of the
/// fully-qualified test name, so runs are reproducible without any state.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a, good enough to decorrelate sibling tests.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn per_test_rngs_are_stable_and_distinct() {
        let mut a1 = rng_for_test("mod::a");
        let mut a2 = rng_for_test("mod::a");
        let mut b = rng_for_test("mod::b");
        let x1 = a1.next_u64();
        assert_eq!(x1, a2.next_u64());
        assert_ne!(x1, b.next_u64());
    }
}
