//! Workspace-local stand-in for `proptest`.
//!
//! Offline dependency resolution rules out the real crate, so this shim
//! implements the subset the workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_recursive`, range,
//! tuple and [`strategy::Just`] strategies, [`collection::vec`], the
//! [`prop_oneof!`] union, and the [`proptest!`] / [`prop_assert!`] /
//! [`prop_assert_eq!`] macros. Cases are generated from a per-test
//! deterministic seed; there is no shrinking — a failing case reports its
//! case number and message and the whole input is reproducible from the
//! test name.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-imported API, mirroring `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Union of strategies with a common value type, chosen uniformly.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Fallible assertion inside a property: fails the current case (rather
/// than panicking) by returning a [`test_runner::TestCaseError`].
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fallible equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?} == {:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Define property tests: each `fn name(pat in strategy, …) { … }` becomes
/// a `#[test]` that runs the body over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::test_runner::rng_for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
