//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Generates values of an associated type from a deterministic RNG.
///
/// Unlike the real proptest there is no value tree / shrinking: a strategy
/// is just a composable generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Apply a function to every generated value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Recursive strategy: at each of `depth` levels, choose between the
    /// leaf (`self`) and `recurse` applied to the previous level. The
    /// `_desired_size` / `_expected_branch` hints are accepted for API
    /// compatibility and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A reference-counted type-erased strategy (cloning shares the backing
/// strategy, as with the real proptest's `BoxedStrategy`).
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among strategies of a common value type (the engine
/// behind [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from at least one option.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn ranges_and_maps_compose() {
        let mut rng = rng_for_test("ranges_and_maps_compose");
        let s = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 20 && v % 2 == 0);
        }
    }

    #[test]
    fn union_draws_every_option() {
        let mut rng = rng_for_test("union_draws_every_option");
        let s = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }

    #[test]
    fn recursion_terminates_and_varies() {
        #[derive(Debug)]
        enum T {
            Leaf(#[allow(dead_code)] u8),
            Node(Box<T>, Box<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let s = (0u8..4)
            .prop_map(T::Leaf)
            .prop_recursive(4, 16, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| T::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = rng_for_test("recursion_terminates_and_varies");
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&s.generate(&mut rng)));
        }
        assert!((1..=4).contains(&max_depth), "max depth {max_depth}");
    }
}
