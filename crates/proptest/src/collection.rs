//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and a length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn vec_respects_size_specs() {
        let mut rng = rng_for_test("vec_respects_size_specs");
        for _ in 0..50 {
            assert_eq!(vec(0u8..5, 3usize..=3).generate(&mut rng).len(), 3);
            let open = vec(0u8..5, 1usize..4).generate(&mut rng);
            assert!((1..4).contains(&open.len()));
            let empty_ok = vec(0u8..5, 0usize..2).generate(&mut rng);
            assert!(empty_ok.len() < 2);
        }
    }
}
