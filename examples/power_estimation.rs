//! Power estimation three ways on a mapped circuit:
//!
//! 1. exact zero-delay analysis (global BDD signal probabilities, eq. 2),
//! 2. Monte-Carlo zero-delay logic simulation (cross-validation),
//! 3. event-driven glitch-aware simulation with the library delay model
//!    (the stand-in for the Ghosh et al. estimator the paper reports with).
//!
//! Run with: `cargo run --release --example power_estimation`

use activity::{analyze, simulate_activity, PowerEnv, TransitionModel};
use benchgen::structured::ripple_adder;
use genlib::builtin::lib2_like;
use lowpower::core::decomp::{decompose_network, DecompOptions, DecompStyle};
use lowpower::core::map::{map_network, MapOptions, SubjectAig};
use lowpower::core::power::{evaluate, simulate_glitch_power};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = ripple_adder(8);
    let pi_probs = vec![0.5; net.inputs().len()];

    // Zero-delay analytic vs Monte-Carlo on the unmapped network.
    let act = analyze(&net, &pi_probs, TransitionModel::StaticCmos);
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let sim = simulate_activity(&net, &pi_probs, 20_000, &mut rng);
    let mut worst = 0.0f64;
    for id in net.node_ids() {
        worst = worst.max((act.switching(id) - sim.switching(id)).abs());
    }
    println!("8-bit ripple adder, {} logic nodes", net.logic_count());
    println!("max |BDD − MonteCarlo| switching deviation: {worst:.4} (20k vectors)");

    // Map it and compare the three power numbers.
    let d = decompose_network(&net, &DecompOptions::new(DecompStyle::MinPower));
    let act_d = analyze(&d.network, &pi_probs, TransitionModel::StaticCmos);
    let aig = SubjectAig::from_network(&d.network, &act_d)?;
    let lib = lib2_like();
    let mapped = map_network(&aig, &lib, &MapOptions::power())?;
    let env = PowerEnv::new();
    let zero = evaluate(&mapped, &lib, &env, TransitionModel::StaticCmos, 1.0);
    let glitch = simulate_glitch_power(&mapped, &lib, &env, &pi_probs, 5_000, 7, 1.0, 1);

    println!(
        "\nmapped: {} gates, area {:.1}, delay {:.2} ns",
        zero.gate_count, zero.area, zero.delay
    );
    println!("zero-delay power:   {:>8.1} µW", zero.power_uw);
    println!(
        "glitch-aware power: {:>8.1} µW  ({:+.0} % — carry chains glitch)",
        glitch.power_uw,
        (glitch.power_uw / zero.power_uw - 1.0) * 100.0
    );
    Ok(())
}
