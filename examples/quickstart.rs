//! Quickstart: the paper's Figure 1 worked example, end to end.
//!
//! Decomposes a 4-input AND gate with `P = (0.3, 0.4, 0.7, 0.5)` under
//! p-type domino logic, comparing the two configurations of Figure 1 with
//! the Huffman optimum (Theorem 2.2), then runs the full flow — optimize →
//! decompose → map — on a small BLIF circuit.
//!
//! Run with: `cargo run --example quickstart`

use activity::TransitionModel;
use genlib::builtin::lib2_like;
use lowpower::core::decomp::{
    exhaustive_minpower, minpower_tree, DecompObjective, DecompTree, GateKind,
};
use lowpower::flow::{run_flow, FlowConfig, Method};
use netlist::parse_blif;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: Figure 1 -------------------------------------------
    let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);
    let p = [0.3, 0.4, 0.7, 0.5];

    let chain = {
        let ab = DecompTree::merge(DecompTree::leaf(0, p[0]), DecompTree::leaf(1, p[1]), obj);
        let abc = DecompTree::merge(ab, DecompTree::leaf(2, p[2]), obj);
        DecompTree::merge(abc, DecompTree::leaf(3, p[3]), obj)
    };
    let balanced = {
        let ab = DecompTree::merge(DecompTree::leaf(0, p[0]), DecompTree::leaf(1, p[1]), obj);
        let cd = DecompTree::merge(DecompTree::leaf(2, p[2]), DecompTree::leaf(3, p[3]), obj);
        DecompTree::merge(ab, cd, obj)
    };
    let huffman = minpower_tree(&p, obj);
    let (optimal, _) = exhaustive_minpower(&p, obj);

    println!("Figure 1 — 4-input AND, P(a..d) = (0.3, 0.4, 0.7, 0.5), domino p-type:");
    println!(
        "  configuration A (chain):    SR = {:.3}  (paper: 2.146)",
        chain.total_cost(obj)
    );
    println!(
        "  configuration B (balanced): SR = {:.3}  (paper: 2.412)",
        balanced.total_cost(obj)
    );
    println!(
        "  Huffman MINPOWER optimum:   SR = {:.3}  (internal {:.3}, exhaustive {:.3})",
        huffman.total_cost(obj),
        huffman.internal_cost(obj),
        optimal
    );
    assert!(
        (huffman.internal_cost(obj) - optimal).abs() < 1e-9,
        "Theorem 2.2"
    );

    // ---- Part 2: the full flow on a small circuit --------------------
    let blif = "\
.model demo
.inputs a b c d e
.outputs f g
.names a b x
11 1
.names c d y
1- 1
-1 1
.names x y z
10 1
01 1
.names z e f
11 1
.names x e g
1- 1
-1 1
.end
";
    let net = parse_blif(blif)?.network;
    let lib = lib2_like();
    let cfg = FlowConfig::default();
    println!(
        "\nFull flow on a 5-input demo circuit ({} nodes):",
        net.logic_count()
    );
    for method in [Method::I, Method::IV] {
        let r = run_flow(&net, &lib, method, &cfg)?;
        println!(
            "  method {:<3} ({}): area {:>5.1}  delay {:>5.2} ns  power {:>6.1} µW (glitch-aware {:>6.1} µW)",
            method.to_string(),
            if method == Method::I { "ad-map" } else { "pd-map" },
            r.report.area,
            r.report.delay,
            r.report.power_uw,
            r.glitch_power_uw,
        );
    }
    Ok(())
}
