//! Domino-logic decomposition, with and without input correlations.
//!
//! Shows the Section 2.1 machinery: Huffman's algorithm is *optimal* for
//! dynamic CMOS with uncorrelated inputs (Theorem 2.2), the p-type and
//! n-type blocks have opposite preferences, and correlated inputs are
//! handled by the Modified Huffman algorithm over a correlation matrix
//! (eqs. 7–9) — exploiting, e.g., anti-correlated signals whose AND never
//! switches.
//!
//! Run with: `cargo run --example domino_decomposition`

use activity::{CorrelationMatrix, TransitionModel};
use lowpower::core::decomp::{
    exhaustive_minpower, huffman_tree, modified_huffman_correlated, DecompObjective, GateKind,
};

fn main() {
    let probs = [0.2, 0.35, 0.6, 0.85, 0.45];

    // ---- p-type vs n-type dynamic blocks -----------------------------
    for (label, model) in [
        ("p-type", TransitionModel::DominoP),
        ("n-type", TransitionModel::DominoN),
    ] {
        let obj = DecompObjective::new(model, GateKind::And);
        let tree = huffman_tree(&probs, obj);
        let (opt, _) = exhaustive_minpower(&probs, obj);
        println!(
            "domino {label}: Huffman internal switching = {:.4} (exhaustive optimum {:.4}) shape {}",
            tree.internal_cost(obj),
            opt,
            tree.canonical_string()
        );
        assert!(
            (tree.internal_cost(obj) - opt).abs() < 1e-9,
            "Theorem 2.2 must hold"
        );
    }

    // ---- correlated inputs -------------------------------------------
    // Signals 0 and 1 are strongly anti-correlated (e.g. decoded states):
    // P(0 ∧ 1) ≈ 0, so merging them first makes the AND output nearly
    // silent. Independent-model decomposition cannot see this.
    let p = vec![0.5, 0.5, 0.7, 0.3];
    let mut joint = vec![
        vec![0.50, 0.02, 0.35, 0.15],
        vec![0.02, 0.50, 0.35, 0.15],
        vec![0.35, 0.35, 0.70, 0.21],
        vec![0.15, 0.15, 0.21, 0.30],
    ];
    // symmetrize diagonal convention: joint[i][i] = p[i]
    for i in 0..4 {
        joint[i][i] = p[i];
    }
    let matrix = CorrelationMatrix::new(p.clone(), joint);
    let obj = DecompObjective::new(TransitionModel::DominoP, GateKind::And);

    let independent = huffman_tree(&p, obj);
    let correlated = modified_huffman_correlated(&matrix, obj);
    println!("\ncorrelated inputs (P(s0 ∧ s1) = 0.02):");
    println!(
        "  independence-assuming Huffman: internal switching = {:.4}, shape {}",
        independent.internal_cost(obj),
        independent.canonical_string()
    );
    println!(
        "  correlation-aware greedy:      internal switching = {:.4}, shape {}",
        correlated.internal_cost(obj),
        correlated.canonical_string()
    );
    println!(
        "  (correlation-aware root probability {:.4} vs independent estimate {:.4})",
        correlated.p_root(),
        independent.p_root()
    );
}
