//! Run the six paper methods end-to-end on one benchmark circuit and show
//! the resulting gate mixes — the workload the paper's intro motivates
//! (synthesizing a battery-powered design under timing constraints).
//!
//! Usage: `cargo run --release --example map_benchmark [circuit]`
//! (default circuit: `alu2`; any name from the paper suite works.)

use genlib::builtin::lib2_like;
use lowpower::flow::{optimize, run_method, FlowConfig, Method};
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "alu2".to_string());
    let net = benchgen::suite_circuit(&name);
    let lib = lib2_like();
    println!(
        "{name}: {} inputs, {} outputs, {} nodes, {} literals",
        net.inputs().len(),
        net.outputs().len(),
        net.logic_count(),
        net.literal_count()
    );

    let optimized = optimize(&net);
    println!(
        "after rugged-like optimization: {} nodes, {} literals\n",
        optimized.logic_count(),
        optimized.literal_count()
    );

    // Common timing target (see the tables23 harness).
    let probe = run_method(&optimized, &lib, Method::I, &FlowConfig::default())?;
    let cfg = FlowConfig {
        required_time: Some(probe.mapped.estimated_fastest * 1.10),
        ..FlowConfig::default()
    };

    println!(
        "{:<7} {:>8} {:>8} {:>10} {:>12}   gate mix",
        "method", "area", "delay", "power µW", "decomp SR"
    );
    for m in Method::ALL {
        let r = run_method(&optimized, &lib, m, &cfg)?;
        let mut mix: BTreeMap<&str, usize> = BTreeMap::new();
        for inst in &r.mapped.instances {
            *mix.entry(lib.gates()[inst.gate].name()).or_insert(0) += 1;
        }
        let mix_str: Vec<String> = mix.iter().map(|(g, c)| format!("{g}×{c}")).collect();
        println!(
            "{:<7} {:>8.1} {:>8.2} {:>10.1} {:>12.2}   {}",
            m.to_string(),
            r.report.area,
            r.report.delay,
            r.glitch_power_uw,
            r.decomp_switching,
            mix_str.join(" ")
        );
    }
    Ok(())
}
