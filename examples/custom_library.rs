//! Bring your own cell library, and preview the §5 future-work extension:
//! power-aware common-divisor extraction in the technology-independent
//! phase.
//!
//! Run with: `cargo run --release --example custom_library`

use genlib::Library;
use lowpower::flow::{run_flow, FlowConfig, Method};
use lowpower::logicopt::{extract, extract_power_aware};
use netlist::parse_blif;

/// A minimal NAND2/INV library, as a user might supply it.
const TINY_GENLIB: &str = "\
GATE inv  1.0 O=!a;     PIN a INV 1.0 999 0.4 0.9 0.4 0.9
GATE nand 2.0 O=!(a*b); PIN * INV 1.0 999 0.6 1.0 0.6 1.0
GATE nor  2.0 O=!(a+b); PIN * INV 1.1 999 0.8 1.2 0.8 1.2
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- Part 1: map against a user library ---------------------------
    let lib = Library::parse(TINY_GENLIB)?;
    let net = benchgen::structured::ripple_adder(4);
    let r = run_flow(&net, &lib, Method::V, &FlowConfig::default())?;
    println!("4-bit adder on a NAND/NOR/INV-only library:");
    println!(
        "  {} gates, area {:.1}, delay {:.2} ns, power {:.1} µW",
        r.report.gate_count, r.report.area, r.report.delay, r.glitch_power_uw
    );
    for (cell, count) in r.mapped.gate_histogram(&lib) {
        println!("    {cell} × {count}");
    }

    // ---- Part 2: power-aware extraction (§5 future work) --------------
    // Common cube a·b over quiet signals (P = 0.95, shared 4×) vs cube
    // c·d over maximally active signals (P = 0.5, shared 3×): plain
    // extraction maximizes literal savings and picks a·b; the power-aware
    // pass picks c·d, unloading the active nets.
    let blif = ".model d\n.inputs a b c d e5 e6 e7 e8\n.outputs f1 f2 f3 f4 g1 g2 g3\n\
                .names a b e5 f1\n111 1\n.names a b e6 f2\n111 1\n.names a b e7 f3\n111 1\n.names a b e8 f4\n111 1\n\
                .names c d e5 g1\n111 1\n.names c d e6 g2\n111 1\n.names c d e7 g3\n111 1\n.end\n";
    let probs = vec![0.95, 0.95, 0.5, 0.5, 0.5, 0.5, 0.5, 0.5];
    let base = parse_blif(blif)?.network;

    // Switched-load estimate: Σ over literal occurrences of the loaded
    // signal's switching — the net-capacitance proxy the pass minimizes.
    let switched_load = |net: &netlist::Network| {
        let act = lowpower::activity::analyze(
            net,
            &probs,
            lowpower::activity::TransitionModel::StaticCmos,
        );
        let mut total = 0.0;
        for id in net.logic_ids() {
            let node = net.node(id);
            for c in node.sop().expect("logic").cubes() {
                for (i, _) in c.bound_lits() {
                    total += act.switching(node.fanins()[i]);
                }
            }
        }
        total
    };

    let mut plain = base.clone();
    extract(&mut plain, 1);
    let mut aware = base.clone();
    extract_power_aware(&mut aware, &probs, 1);

    println!("\npower-aware extraction (one divisor allowed):");
    println!(
        "  plain fast-extract:   {} literals, switched load {:.3}",
        plain.literal_count(),
        switched_load(&plain)
    );
    println!(
        "  power-aware extract:  {} literals, switched load {:.3}",
        aware.literal_count(),
        switched_load(&aware)
    );
    Ok(())
}
