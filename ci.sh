#!/usr/bin/env sh
# Continuous-integration gate: formatting, lints, build, tests.
# Everything runs offline against the vendored workspace (Cargo.lock is
# committed and all dependencies are path crates).
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> lint gate (examples/blif, --lint=deny)"
for f in examples/blif/*.blif; do
    echo "    lint $f"
    cargo run --release --quiet -- lint --blif "$f" --lint=deny
done

echo "CI OK"
