#!/usr/bin/env sh
# Continuous-integration gate: formatting, lints, build, tests.
# Everything runs offline against the vendored workspace (Cargo.lock is
# committed and all dependencies are path crates).
set -eu

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (workspace, all targets, warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test (tier-1: root package)"
cargo test -q

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> perf smoke (3 smallest circuits, serial vs 2 threads, divergence check)"
TMP="${TMPDIR:-/tmp}"
cargo run --release --quiet -p lowpower-bench --bin perf -- \
    --circuits cm42a,x2,s208 --threads 2 --check --out "$TMP/bench_smoke.json" \
    > /dev/null

echo "==> tables23 determinism (--threads 1 vs 2 must be byte-identical)"
cargo run --release --quiet -p lowpower-bench --bin tables23 -- \
    --circuits cm42a,x2 --threads 1 > "$TMP/t23_serial.txt" 2> /dev/null
cargo run --release --quiet -p lowpower-bench --bin tables23 -- \
    --circuits cm42a,x2 --threads 2 > "$TMP/t23_par.txt" 2> /dev/null
cmp "$TMP/t23_serial.txt" "$TMP/t23_par.txt"

echo "==> lint gate (examples/blif, --lint=deny)"
for f in examples/blif/*.blif; do
    echo "    lint $f"
    cargo run --release --quiet -- lint --blif "$f" --lint=deny
done

echo "==> obs gate (JSONL validity, stripped-snapshot determinism, chrome trace)"
cargo run --release --quiet -- synth --blif examples/blif/fulladd.blif \
    --obs=json --obs-out - 2> /dev/null > "$TMP/obs_a.jsonl"
cargo run --release --quiet -- synth --blif examples/blif/fulladd.blif \
    --obs=json --obs-out - 2> /dev/null > "$TMP/obs_b.jsonl"
cargo run --release --quiet -- obs-check --file "$TMP/obs_a.jsonl"
cargo run --release --quiet -- obs-check --file "$TMP/obs_a.jsonl" --strip \
    > "$TMP/obs_a.stripped"
cargo run --release --quiet -- obs-check --file "$TMP/obs_b.jsonl" --strip \
    > "$TMP/obs_b.stripped"
cmp "$TMP/obs_a.stripped" "$TMP/obs_b.stripped"
cargo run --release --quiet -- synth --blif examples/blif/fulladd.blif \
    --obs=chrome --obs-out "$TMP/obs.trace.json" > /dev/null
cargo run --release --quiet -- obs-check --file "$TMP/obs.trace.json" --chrome

echo "==> obs disabled-overhead smoke (criterion micro-bench)"
cargo bench --quiet -p lowpower-bench --bench obs_overhead > /dev/null

echo "==> qor gate (regenerate example-circuit QoR, zero-tolerance diff vs baseline)"
cargo run --release --quiet -- qor-baseline \
    --blif examples/blif/fulladd.blif --blif examples/blif/mux4.blif \
    --blif examples/blif/parity4.blif --out "$TMP/qor_examples.json" > /dev/null
cargo run --release --quiet -- qor-diff \
    --baseline results/qor_baseline.json --against "$TMP/qor_examples.json"

echo "==> qor ledger gate (JSONL validity + telescoping deltas, --qor=gate vs baseline)"
cargo run --release --quiet -- synth --blif examples/blif/mux4.blif --method V \
    --qor=json --qor-out "$TMP/qor.jsonl" > /dev/null 2>&1
cargo run --release --quiet -- qor-check --file "$TMP/qor.jsonl"
cargo run --release --quiet -- synth --blif examples/blif/parity4.blif --method V \
    --qor=gate --qor-baseline results/qor_baseline.json > /dev/null 2> /dev/null

echo "CI OK"
